"""Figure 13: CROW-ref speedup and DRAM energy across chip densities.

CROW-ref remaps the (pessimistically assumed three-per-subarray) weak rows
to strong copy rows so the whole chip refreshes every 128 ms instead of
64 ms. Each REF command blocks the rank for tRFC, which grows with
density, so the benefit rises from negligible at 8 Gbit to substantial at
the futuristic 64 Gbit node (paper: +7.1%/-17.2% single-core,
+11.9%/-7.8% four-core at 64 Gbit).
"""

import statistics

from repro import SystemConfig, build_mix, run_mix, run_workload

from _harness import MIX_INSTRUCTIONS, MIX_WARMUP, report

#: Single-core sample; refresh pain is broad, so a small sample suffices.
SAMPLE = ("mcf", "lbm", "omnetpp", "h264-dec", "sphinx3", "tpcc64")
DENSITIES = (8, 16, 32, 64)
#: Longer runs so each measurement spans many tREFI windows.
INSTR = MIX_INSTRUCTIONS * 4
WARM = MIX_WARMUP * 2


def _run():
    rows = []
    by_density = {}
    for density in DENSITIES:
        speedups, energies = [], []
        for name in SAMPLE:
            base = run_workload(
                name, SystemConfig(density_gbit=density),
                instructions=INSTR, warmup_instructions=WARM,
            )
            ref = run_workload(
                name,
                SystemConfig(
                    mechanism="crow-ref", density_gbit=density,
                    weak_rows_per_subarray=3,
                ),
                instructions=INSTR, warmup_instructions=WARM,
            )
            speedups.append(ref.speedup_over(base))
            energies.append(ref.energy_ratio(base))
        mix_speedups, mix_energies = [], []
        for seed in (1, 2):
            mix = build_mix("HHHH", seed=seed)
            mix_base = run_mix(
                mix, SystemConfig(cores=4, density_gbit=density), seed=seed,
                instructions=MIX_INSTRUCTIONS, warmup_instructions=MIX_WARMUP,
            )
            mix_ref = run_mix(
                mix,
                SystemConfig(
                    cores=4, mechanism="crow-ref", density_gbit=density,
                    weak_rows_per_subarray=3,
                ),
                seed=seed,
                instructions=MIX_INSTRUCTIONS, warmup_instructions=MIX_WARMUP,
            )
            mix_speedups.append(mix_ref.speedup_over(mix_base))
            mix_energies.append(mix_ref.energy_ratio(mix_base))
        entry = {
            "speedup_1c": statistics.mean(speedups),
            "energy_1c": statistics.mean(energies),
            "speedup_4c": statistics.mean(mix_speedups),
            "energy_4c": statistics.mean(mix_energies),
        }
        by_density[density] = entry
        rows.append([
            f"{density} Gbit",
            f"{entry['speedup_1c']:.3f}",
            f"{entry['energy_1c']:.3f}",
            f"{entry['speedup_4c']:.3f}",
            f"{entry['energy_4c']:.3f}",
        ])
    report(
        "fig13_crow_ref",
        "Figure 13 — CROW-ref vs. baseline across chip densities",
        ["density", "1-core speedup", "1-core energy",
         "4-core speedup (HHHH)", "4-core energy"],
        rows,
        notes=[
            "three weak rows per subarray (the paper's pessimistic "
            "assumption); refresh window 64 ms -> 128 ms",
            "paper at 64 Gbit: 1.071 / 0.828 (1-core), 1.119 / 0.922 "
            "(4-core)",
        ],
    )
    return by_density


def test_fig13_crow_ref(benchmark):
    by_density = benchmark.pedantic(_run, rounds=1, iterations=1)
    speed = [by_density[d]["speedup_1c"] for d in DENSITIES]
    energy = [by_density[d]["energy_1c"] for d in DENSITIES]
    # Benefit grows with density (allow per-step scheduling noise of ~1%,
    # but the end-to-end trend must be strict and large).
    for earlier, later in zip(speed, speed[1:]):
        assert later > earlier - 0.01
    for earlier, later in zip(energy, energy[1:]):
        assert later < earlier + 0.01
    assert speed[-1] > speed[0] + 0.03
    assert energy[-1] < energy[0] - 0.05
    # The benefit is substantial at 64 Gbit.
    assert by_density[64]["speedup_1c"] > 1.03
    assert by_density[64]["energy_1c"] < 0.92
    # Four-core speedup cells are dominated by scheduling noise and by a
    # real second-order effect (refresh stalls overlap with MLP while
    # refresh-forced precharges serendipitously pre-close rows), so only
    # the robust four-core signals are asserted: the energy trend with
    # density, and the absence of any catastrophic slowdown.
    assert by_density[64]["energy_4c"] < by_density[8]["energy_4c"] - 0.02
    assert by_density[64]["energy_4c"] < 0.95
    assert all(by_density[d]["speedup_4c"] > 0.9 for d in DENSITIES)
