"""Section 4.2.1: weak-row statistics (Equations 1 and 2).

The paper computes, from the published retention bit error rate
(4e-9 at a 256 ms refresh interval, uniform random placement), the
probability that any subarray of a chip holds more weak rows than CROW has
copy rows: 0.99 / 3.1e-1 / 3.3e-4 / 3.3e-11 for more than 1/2/4/8 weak
rows — the argument that eight copy rows per subarray suffice.
"""

import pytest

from repro.core import p_subarray_exceeds, p_weak_row

from _harness import report

BER = 4e-9
CELLS_PER_ROW = 8 * 1024 * 8
ROWS_PER_SUBARRAY = 512
SUBARRAYS_PER_CHIP = 1024
PAPER = {1: 0.99, 2: 3.1e-1, 4: 3.3e-4, 8: 3.3e-11}


def _chip_probability(n: int) -> float:
    p_row = p_weak_row(BER, CELLS_PER_ROW)
    per_subarray = p_subarray_exceeds(n, ROWS_PER_SUBARRAY, p_row)
    return 1.0 - (1.0 - per_subarray) ** SUBARRAYS_PER_CHIP


def _build_table():
    p_row = p_weak_row(BER, CELLS_PER_ROW)
    rows = [["P(row has a weak cell)", f"{p_row:.3e}", "-"]]
    for n, paper_value in PAPER.items():
        rows.append([
            f"P(any subarray has > {n} weak rows)",
            f"{_chip_probability(n):.2e}",
            f"{paper_value:.2e}",
        ])
    report(
        "sec4_weak_row_probability",
        "Section 4.2.1 — weak-row probabilities (Eqs. 1-2)",
        ["quantity", "computed", "paper"],
        rows,
        notes=[
            "BER 4e-9 at 256 ms refresh, 8 KiB rows, 512-row subarrays, "
            "1024 subarrays per chip",
        ],
    )
    return {n: _chip_probability(n) for n in PAPER}


def test_sec4_weak_row_probability(benchmark):
    computed = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    assert computed[1] == pytest.approx(PAPER[1], abs=0.35)
    assert computed[2] == pytest.approx(PAPER[2], rel=0.5)
    assert computed[4] == pytest.approx(PAPER[4], rel=0.6)
    assert computed[8] == pytest.approx(PAPER[8], rel=0.9)
    # Monotone: more copy rows always means lower residual risk.
    values = [computed[n] for n in (1, 2, 4, 8)]
    assert values == sorted(values, reverse=True)
