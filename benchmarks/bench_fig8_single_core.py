"""Figure 8: single-core CROW-cache speedup and CROW-table hit rate.

Runs the full workload suite under the baseline and CROW-cache with 1, 8
and 256 copy rows per subarray, plus the Ideal (100% hit rate) bound, and
prints per-application speedup + hit rate, suite averages, and the
Section 8.1.1 eviction-restore statistic.

Paper anchors: average speedup 5.5% / 7.1% / 7.8% for CROW-1/8/256 with
hit rates 68.8% / 85.3% / 91.1%; no application slows down; restores are
<= 0.6% of activations for CROW-1.
"""

import statistics

from repro import SystemConfig, WORKLOADS
from repro.exec import TaskSpec

from _harness import INSTRUCTIONS, WARMUP, report, sweep

CONFIGS = {
    "crow-1": SystemConfig(mechanism="crow-cache", copy_rows=1),
    "crow-8": SystemConfig(mechanism="crow-cache", copy_rows=8),
    "crow-256": SystemConfig(mechanism="crow-cache", copy_rows=256),
    "ideal": SystemConfig(mechanism="ideal-crow-cache"),
}


def _run_suite():
    names = sorted(WORKLOADS)
    run = dict(instructions=INSTRUCTIONS, warmup_instructions=WARMUP)
    tasks = []
    for name in names:
        tasks.append(
            TaskSpec.workload(name, SystemConfig(mechanism="baseline"), **run)
        )
        for config in CONFIGS.values():
            tasks.append(TaskSpec.workload(name, config, **run))
    results = iter(sweep(tasks))

    table = []
    speedups = {key: [] for key in CONFIGS}
    hit_rates = {key: [] for key in CONFIGS if key != "ideal"}
    restore_fractions = []
    for name in names:
        base = next(results)
        row = [name, f"{base.core_mpki[0]:.1f}"]
        for key in CONFIGS:
            result = next(results)
            speedup = result.speedup_over(base)
            # Microbenchmarks are excluded from averages, as in the paper.
            if name not in ("random", "streaming"):
                speedups[key].append(speedup)
            cell = f"{speedup:.3f}"
            if key != "ideal" and result.crow_hit_rate is not None:
                cell += f"/{result.crow_hit_rate:.2f}"
                if name not in ("random", "streaming"):
                    hit_rates[key].append(result.crow_hit_rate)
            if key == "crow-1":
                restore_fractions.append(
                    result.mechanism_stats.get("crow_restore_fraction", 0.0)
                )
            row.append(cell)
        table.append(row)
    avg_row = ["AVERAGE", ""]
    for key in CONFIGS:
        cell = f"{statistics.mean(speedups[key]):.3f}"
        if key in hit_rates and hit_rates[key]:
            cell += f"/{statistics.mean(hit_rates[key]):.2f}"
        avg_row.append(cell)
    table.append(avg_row)
    report(
        "fig8_single_core",
        "Figure 8 — single-core CROW-cache speedup / CROW-table hit rate",
        ["workload", "MPKI", "crow-1", "crow-8", "crow-256", "ideal"],
        table,
        notes=[
            "cells are speedup/hit-rate vs. the conventional baseline",
            "paper averages: 1.055/0.69 (crow-1), 1.071/0.85 (crow-8), "
            "1.078/0.91 (crow-256)",
            f"max crow-1 restore fraction: {max(restore_fractions):.4f} "
            "(paper: 0.006)",
        ],
    )
    return speedups, hit_rates, restore_fractions


def test_fig8_single_core(benchmark):
    speedups, hit_rates, restores = benchmark.pedantic(
        _run_suite, rounds=1, iterations=1
    )
    mean = {key: statistics.mean(values) for key, values in speedups.items()}
    # Shape: more copy rows help monotonically, ideal bounds everything.
    assert 1.0 < mean["crow-1"] <= mean["crow-8"] + 0.01
    assert mean["crow-8"] <= mean["crow-256"] + 0.01
    assert mean["crow-256"] <= mean["ideal"] + 0.02
    # Hit rates ordered as in the paper (CROW-256 may tie CROW-8: the
    # synthetic traces' row-reuse distances rarely exceed eight rows per
    # subarray, so extra ways go unused).
    assert statistics.mean(hit_rates["crow-1"]) < statistics.mean(
        hit_rates["crow-8"]
    )
    assert statistics.mean(hit_rates["crow-8"]) <= statistics.mean(
        hit_rates["crow-256"]
    ) + 1e-9
    # No application slows down (paper Section 8.1.1).
    assert min(speedups["crow-8"]) > 0.99
    # Eviction restores stay a small fraction of activations.
    assert max(restores) < 0.05
