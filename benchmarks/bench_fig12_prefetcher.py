"""Figure 12: CROW-cache composed with a stride prefetcher.

Four configurations per workload: baseline, RPT stride prefetcher alone,
CROW-cache alone, and prefetcher + CROW-cache. The paper finds CROW-cache
serves both demand and prefetch requests with low latency, adding an
average 5.7% on top of the prefetcher.
"""

import statistics

from repro import SystemConfig, run_workload

from _harness import INSTRUCTIONS, WARMUP, report

#: Sampled to span prefetcher effectiveness, as the paper does: streaming
#: and strided workloads prefetch well, random/pointer ones do not.
SAMPLE = ("libq", "lbm", "gems", "tpch6", "h264-dec", "mcf")

CONFIGS = {
    "prefetcher": SystemConfig(prefetcher=True),
    "crow": SystemConfig(mechanism="crow-cache"),
    "prefetcher+crow": SystemConfig(mechanism="crow-cache", prefetcher=True),
}


def _run():
    rows = []
    speedups = {key: [] for key in CONFIGS}
    for name in SAMPLE:
        base = run_workload(
            name, SystemConfig(),
            instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        cells = [name]
        for key, config in CONFIGS.items():
            result = run_workload(
                name, config,
                instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
            )
            speedup = result.speedup_over(base)
            speedups[key].append(speedup)
            cells.append(f"{speedup:.3f}")
        rows.append(cells)
    rows.append([
        "AVERAGE",
        *(f"{statistics.mean(speedups[key]):.3f}" for key in CONFIGS),
    ])
    report(
        "fig12_prefetcher",
        "Figure 12 — CROW-cache and stride prefetching (speedup vs. baseline)",
        ["workload", *CONFIGS],
        rows,
        notes=[
            "paper: CROW-cache adds +5.7% on average over the prefetcher "
            "alone; the combination is the best configuration",
        ],
    )
    return speedups


def test_fig12_prefetcher(benchmark):
    speedups = benchmark.pedantic(_run, rounds=1, iterations=1)
    pf = statistics.mean(speedups["prefetcher"])
    both = statistics.mean(speedups["prefetcher+crow"])
    crow = statistics.mean(speedups["crow"])
    # Prefetching helps this (stream-heavy) sample.
    assert pf > 1.01
    # CROW-cache composes with prefetching: the combination wins.
    assert both > pf
    assert both >= crow
