"""Figure 7: MRA power overhead and copy-row decoder area overhead.

Left panel: activation power vs. simultaneously-activated rows (+5.8% for
the two-row ACT-t/ACT-c commands). Right panel: the extra copy-row decoder
is tiny — 9.6 um^2 for eight copy rows against 200.9 um^2 for the 512-row
local decoder, i.e. 4.8% more decoder area and 0.48% of the whole chip.

Both panels are served through the :mod:`repro.estimate` arbiter; the
test asserts the arbitrated values equal the direct paper-calibrated
models bit for bit (the framework's byte-identity guarantee).
"""

import pytest

from repro.circuit import DecoderAreaModel, activation_power_overhead
from repro.estimate.runtime import (
    activation_power,
    crow_overheads,
    decoder_area_um2,
)

from _harness import report


def _build_table():
    power_rows = [
        [str(n), f"{activation_power(n):.3f}"]
        for n in range(1, 10)
    ]
    report(
        "fig7_power",
        "Figure 7 (left) — activation power vs. simultaneously-activated rows",
        ["rows", "normalized power"],
        power_rows,
        notes=["paper anchor: 1.058 at two rows"],
    )
    area_rows = []
    overheads_by_rows = {}
    for copy_rows in (1, 2, 4, 8, 16, 32, 64, 128, 256):
        overheads = crow_overheads(copy_rows)
        overheads_by_rows[copy_rows] = overheads
        area_rows.append([
            str(copy_rows),
            f"{overheads['decoder_area_um2']:.1f} um2",
            f"{overheads['decoder_overhead'] * 100:.2f}%",
            f"{overheads['chip_overhead'] * 100:.3f}%",
            f"{overheads['capacity_overhead'] * 100:.2f}%",
        ])
    report(
        "fig7_area",
        "Figure 7 (right) — copy-row decoder area overhead",
        ["copy rows", "decoder area", "decoder ovh", "chip ovh", "capacity"],
        area_rows,
        notes=[
            "paper anchors at 8 copy rows: 9.6 um2, 4.8% decoder, "
            "0.48% chip, 1.6% capacity",
        ],
    )
    return overheads_by_rows


def test_fig7_power_area(benchmark):
    overheads_by_rows = benchmark.pedantic(
        _build_table, rounds=1, iterations=1
    )
    at8 = overheads_by_rows[8]
    assert activation_power(2) == pytest.approx(1.058)
    assert at8["decoder_area_um2"] == pytest.approx(9.6, rel=0.01)
    assert at8["chip_overhead"] == pytest.approx(0.0048, abs=2e-4)
    assert at8["capacity_overhead"] == pytest.approx(0.0154, abs=1e-3)
    # Byte-identity of the framework port: arbitrated values equal the
    # direct paper-calibrated models exactly, not approximately.
    area = DecoderAreaModel()
    assert activation_power(2) == activation_power_overhead(2)
    assert at8["decoder_area_um2"] == area.decoder_area_um2(8)
    assert at8["chip_overhead"] == area.crow_chip_overhead(8)
    assert at8["capacity_overhead"] == area.crow_capacity_overhead(8)
    assert decoder_area_um2(512) == area.decoder_area_um2(512)
