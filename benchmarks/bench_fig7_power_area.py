"""Figure 7: MRA power overhead and copy-row decoder area overhead.

Left panel: activation power vs. simultaneously-activated rows (+5.8% for
the two-row ACT-t/ACT-c commands). Right panel: the extra copy-row decoder
is tiny — 9.6 um^2 for eight copy rows against 200.9 um^2 for the 512-row
local decoder, i.e. 4.8% more decoder area and 0.48% of the whole chip.
"""

import pytest

from repro.circuit import DecoderAreaModel, activation_power_overhead

from _harness import report


def _build_table():
    area = DecoderAreaModel()
    power_rows = [
        [str(n), f"{activation_power_overhead(n):.3f}"]
        for n in range(1, 10)
    ]
    report(
        "fig7_power",
        "Figure 7 (left) — activation power vs. simultaneously-activated rows",
        ["rows", "normalized power"],
        power_rows,
        notes=["paper anchor: 1.058 at two rows"],
    )
    area_rows = []
    for copy_rows in (1, 2, 4, 8, 16, 32, 64, 128, 256):
        area_rows.append([
            str(copy_rows),
            f"{area.decoder_area_um2(copy_rows):.1f} um2",
            f"{area.copy_decoder_overhead(copy_rows) * 100:.2f}%",
            f"{area.crow_chip_overhead(copy_rows) * 100:.3f}%",
            f"{area.crow_capacity_overhead(copy_rows) * 100:.2f}%",
        ])
    report(
        "fig7_area",
        "Figure 7 (right) — copy-row decoder area overhead",
        ["copy rows", "decoder area", "decoder ovh", "chip ovh", "capacity"],
        area_rows,
        notes=[
            "paper anchors at 8 copy rows: 9.6 um2, 4.8% decoder, "
            "0.48% chip, 1.6% capacity",
        ],
    )
    return area


def test_fig7_power_area(benchmark):
    area = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    assert activation_power_overhead(2) == pytest.approx(1.058)
    assert area.decoder_area_um2(8) == pytest.approx(9.6, rel=0.01)
    assert area.crow_chip_overhead(8) == pytest.approx(0.0048, abs=2e-4)
    assert area.crow_capacity_overhead(8) == pytest.approx(0.0154, abs=1e-3)
