"""Figure 14: CROW-cache + CROW-ref combined, across LLC capacities.

Four-core HHHH mixes on a futuristic 64 Gbit chip, sweeping the LLC from
1 MiB to 32 MiB, under: CROW-cache alone, CROW-ref alone, both combined
(sharing one copy-row pool), and the ideal bound (100% hit rate, no
refresh).

Paper anchors (8 MiB LLC): combined +20.0% speedup and -22.3% DRAM
energy, more than either mechanism alone, and close to the ideal bound;
benefits hold across all LLC capacities.
"""

import statistics

from repro import SystemConfig, build_mix
from repro.dram.timing import TimingParameters
from repro.energy import EnergyModel, IddCurrents
from repro.estimate.runtime import channel_coefficients
from repro.exec import TaskSpec
from repro.units import MIB

from _harness import MIX_INSTRUCTIONS, MIX_WARMUP, report, sweep

LLC_SIZES = (1 * MIB, 8 * MIB, 32 * MIB)
MIX_SEEDS = (1, 2, 3)
MECHANISMS = ("crow-cache", "crow-ref", "crow-combined", "ideal")


def _config(mechanism: str, llc: int) -> SystemConfig:
    return SystemConfig(
        cores=4,
        mechanism=mechanism,
        density_gbit=64,
        llc_size_bytes=llc,
        weak_rows_per_subarray=3,
    )


def _run():
    run_kwargs = dict(
        instructions=MIX_INSTRUCTIONS, warmup_instructions=MIX_WARMUP
    )
    mix_names = {
        seed: [w.name for w in build_mix("HHHH", seed=seed)]
        for seed in MIX_SEEDS
    }
    tasks = []
    for llc in LLC_SIZES:
        for seed in MIX_SEEDS:
            tasks.append(TaskSpec.mix(
                mix_names[seed], _config("baseline", llc), seed=seed,
                **run_kwargs,
            ))
            for mechanism in MECHANISMS:
                tasks.append(TaskSpec.mix(
                    mix_names[seed], _config(mechanism, llc), seed=seed,
                    **run_kwargs,
                ))
    task_results = iter(sweep(tasks))

    rows = []
    results: dict[tuple[int, str], dict[str, float]] = {}
    for llc in LLC_SIZES:
        speedups = {m: [] for m in MECHANISMS}
        energies = {m: [] for m in MECHANISMS}
        for seed in MIX_SEEDS:
            base = next(task_results)
            for mechanism in MECHANISMS:
                result = next(task_results)
                speedups[mechanism].append(result.speedup_over(base))
                energies[mechanism].append(result.energy_ratio(base))
        for mechanism in MECHANISMS:
            entry = {
                "speedup": statistics.mean(speedups[mechanism]),
                "energy": statistics.mean(energies[mechanism]),
            }
            results[(llc, mechanism)] = entry
            rows.append([
                f"{llc // MIB} MiB",
                mechanism,
                f"{entry['speedup']:.3f}",
                f"{entry['energy']:.3f}",
            ])
    report(
        "fig14_combined",
        "Figure 14 — CROW-cache + CROW-ref vs. LLC capacity "
        "(4-core HHHH, 64 Gbit)",
        ["LLC", "mechanism", "speedup", "energy"],
        rows,
        notes=[
            "paper at 8 MiB: combined 1.200 speedup / 0.777 energy; "
            "combined > max(cache, ref) at every LLC capacity; the ideal "
            "bound is 100%-hit CROW-cache with refresh disabled",
        ],
    )
    return results


def test_fig14_combined(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for llc in LLC_SIZES:
        cache = results[(llc, "crow-cache")]["speedup"]
        ref = results[(llc, "crow-ref")]["speedup"]
        combined = results[(llc, "crow-combined")]["speedup"]
        ideal = results[(llc, "ideal")]["speedup"]
        # Combined beats either mechanism alone (within noise)...
        assert combined >= max(cache, ref) - 0.01, llc
        # ...improves on the baseline clearly...
        assert combined > 1.04
        # ...and stays at or below the ideal bound (within mix noise).
        assert combined <= ideal + 0.04
        # Combined energy beats the baseline and the cache-only config.
        # (The paper also finds combined < ref-alone; with this suite's
        # lower hit rates the MRA power premium can leave ref-alone the
        # energy minimum — see EXPERIMENTS.md.)
        assert results[(llc, "crow-combined")]["energy"] < 1.0
        assert (
            results[(llc, "crow-combined")]["energy"]
            <= results[(llc, "crow-cache")]["energy"] + 0.01
        )
    # The 64 Gbit energy ratios above were computed from estimator-
    # arbitrated coefficients; they must match the direct IDD model
    # bit for bit (reference backend wins arbitration).
    timing = TimingParameters.lpddr4(density_gbit=64)
    currents = IddCurrents.lpddr4(64)
    assert (
        channel_coefficients(timing, currents)
        == EnergyModel(timing, currents).coefficients()
    )
