"""Shared benchmark harness.

Every benchmark file regenerates one table or figure of the paper: it runs
the relevant configuration sweep, prints a paper-style table (bypassing
pytest's capture so the rows land in the console / tee'd log), and stores
the same rows under ``benchmarks/results/`` for EXPERIMENTS.md.

Run lengths are scaled for a pure-Python cycle simulator (the paper uses
200M-instruction SimPoints on a C++ simulator); set the environment
variable ``REPRO_BENCH_SCALE`` to a float to lengthen or shorten every run
(e.g. ``REPRO_BENCH_SCALE=4`` for higher-fidelity overnight runs).

Sweeps are embarrassingly parallel: set ``REPRO_BENCH_JOBS=N`` to fan the
figure scripts' simulations out over N worker processes via
:mod:`repro.exec` (``1``, the default, runs serially in-process). Set
``REPRO_BENCH_CACHE=<dir>`` to reuse a persistent result cache across
benchmark invocations, and ``REPRO_BENCH_JOURNAL=<file>`` to append a
JSONL execution journal. ``REPRO_BENCH_TELEMETRY=1`` turns on the
telemetry registry for every swept task (per-task digests land in the
journal; note telemetry is part of the cache key, so telemetry-on and
telemetry-off sweeps cache separately). ``REPRO_BENCH_ENGINE=batch``
runs every swept task on the batch engine — results (and cache keys)
are engine-invariant, so this is purely a wall-clock knob.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import tempfile
from pathlib import Path

__all__ = [
    "SCALE",
    "JOBS",
    "TELEMETRY",
    "ENGINE",
    "INSTRUCTIONS",
    "WARMUP",
    "MIX_INSTRUCTIONS",
    "MIX_WARMUP",
    "SINGLE_CORE_SAMPLE",
    "report",
    "fmt",
    "sweep",
]

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Worker processes for figure sweeps (1 = serial, no subprocesses).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")

#: Collect telemetry for every swept task (0/1).
TELEMETRY = os.environ.get("REPRO_BENCH_TELEMETRY", "") not in ("", "0")

#: Simulation engine for every swept task ('' keeps each task's default).
ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "")

#: Single-core measured / warm-up instruction counts.
INSTRUCTIONS = int(40_000 * SCALE)
WARMUP = int(15_000 * SCALE)
#: Four-core counts (per core). Multiprogrammed runs need several tREFI
#: windows per measurement or refresh phase becomes visible as noise.
MIX_INSTRUCTIONS = int(30_000 * SCALE)
MIX_WARMUP = int(10_000 * SCALE)

#: Representative single-core sample used by the heavier sweeps (chosen to
#: span L/M/H classes and all access structures).
SINGLE_CORE_SAMPLE = (
    "mcf", "lbm", "libq", "soplex", "sphinx3",       # H
    "h264-dec", "omnetpp", "tpcc64", "jp2-encode",   # M
    "bzip2", "namd",                                 # L
)

RESULTS_DIR = Path(__file__).parent / "results"


def sweep(tasks, jobs: "int | None" = None) -> list:
    """Run a list of ``repro.exec.TaskSpec``, results in task order.

    ``jobs`` defaults to ``REPRO_BENCH_JOBS``. The serial un-cached path
    (``jobs=1`` and no ``REPRO_BENCH_CACHE``) executes each task inline —
    byte-identical to calling ``run_workload``/``run_mix`` directly.
    Parallel runs go through ``ParallelCampaign``: worker-process fan-out
    with crash isolation and retries, backed by a disk cache
    (``REPRO_BENCH_CACHE`` or a fresh per-invocation temp dir, so stale
    results can never leak into a sweep unless explicitly requested).
    """
    tasks = list(tasks)
    if TELEMETRY:
        tasks = [
            dataclasses.replace(
                task, config=dataclasses.replace(task.config, telemetry=True)
            )
            for task in tasks
        ]
    if ENGINE:
        tasks = [
            dataclasses.replace(
                task, config=dataclasses.replace(task.config, engine=ENGINE)
            )
            for task in tasks
        ]
    jobs = JOBS if jobs is None else jobs
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    if jobs <= 1 and cache_dir is None:
        return [task.run() for task in tasks]

    from repro.exec import ParallelCampaign

    directory = cache_dir or tempfile.mkdtemp(prefix="repro-bench-cache-")
    stderr = getattr(sys, "__stderr__", None)
    with ParallelCampaign(
        directory,
        jobs=jobs,
        timeout_s=float(os.environ.get("REPRO_BENCH_TIMEOUT", "0") or 0)
        or None,
        journal=os.environ.get("REPRO_BENCH_JOURNAL"),
        progress=bool(stderr is not None and stderr.isatty()),
    ) as campaign:
        return campaign.results(tasks)


def fmt(value: float, kind: str = "x") -> str:
    """Compact cell formatting: 'x' ratios, '%' percents, 'f' floats."""
    if kind == "x":
        return f"{value:.3f}x"
    if kind == "%":
        return f"{value * 100:.1f}%"
    if kind == "f":
        return f"{value:.3f}"
    return str(value)


def report(
    name: str,
    title: str,
    headers: list[str],
    rows: list[list[str]],
    notes: list[str] | None = None,
) -> None:
    """Print a paper-style table (uncaptured) and persist it to disk."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ] if rows else [len(h) for h in headers]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    for note in notes or []:
        lines.append(f"  note: {note}")
    text = "\n".join(lines)

    # Bypass pytest capture so the table reaches the tee'd benchmark log.
    stream = getattr(sys, "__stdout__", sys.stdout) or sys.stdout
    stream.write("\n" + text + "\n")
    stream.flush()

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
