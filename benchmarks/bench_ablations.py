"""Design-choice ablations for the CROW-cache mechanism.

The paper motivates several design decisions qualitatively; this benchmark
quantifies each by toggling it:

* **partial restoration** (Section 4.1.3) — terminating restoration early
  trades tRAS/tWR savings for slower future activations,
* **reduced tWR** (Section 4.1.3) — early termination applied to writes,
* **eviction policy for partially-restored victims** (Section 4.1.4) —
  the paper's restore-before-evict protocol vs. this implementation's
  default bypass (serve conventionally, skip caching),
* **circuit-derived vs. published Table 1 timing factors** — the
  architecture results barely move, confirming the analytical circuit
  model is a faithful SPICE substitute,
* **CROW-table sharing across subarrays** (Section 6.1).
"""

import statistics

from repro import SystemConfig
from repro.exec import TaskSpec

from _harness import INSTRUCTIONS, WARMUP, report, sweep

SAMPLE = ("h264-dec", "soplex", "lbm", "omnetpp", "mcf")

ABLATIONS = {
    "default": SystemConfig(mechanism="crow-cache"),
    "no partial restore": SystemConfig(
        mechanism="crow-cache", allow_partial_restore=False
    ),
    "no reduced tWR": SystemConfig(mechanism="crow-cache", reduced_twr=False),
    "full-restore ACT-c": SystemConfig(
        mechanism="crow-cache", act_c_early_termination=False
    ),
    "restore-evict (paper 4.1.4)": SystemConfig(
        mechanism="crow-cache", evict_partial="restore"
    ),
    "derived circuit factors": SystemConfig(
        mechanism="crow-cache", use_derived_circuit_factors=True
    ),
    "table shared x4": SystemConfig(
        mechanism="crow-cache", subarray_group_size=4
    ),
}


def _run():
    run = dict(instructions=INSTRUCTIONS, warmup_instructions=WARMUP)
    tasks = [TaskSpec.workload(name, SystemConfig(), **run) for name in SAMPLE]
    for config in ABLATIONS.values():
        tasks.extend(
            TaskSpec.workload(name, config, **run) for name in SAMPLE
        )
    results = iter(sweep(tasks))
    baselines = {name: next(results) for name in SAMPLE}
    rows = []
    means = {}
    for label in ABLATIONS:
        speedups = []
        for name in SAMPLE:
            result = next(results)
            speedups.append(result.speedup_over(baselines[name]))
        means[label] = statistics.mean(speedups)
        rows.append([label, f"{means[label]:.3f}",
                     f"{min(speedups):.3f}", f"{max(speedups):.3f}"])
    report(
        "ablations",
        "CROW-cache design-choice ablations "
        f"(mean over {len(SAMPLE)} workloads)",
        ["configuration", "mean speedup", "min", "max"],
        rows,
        notes=[
            "'default' = partial restore + reduced tWR + early ACT-c + "
            "bypass eviction + published Table 1 factors",
        ],
    )
    return means


def test_ablations(benchmark):
    means = benchmark.pedantic(_run, rounds=1, iterations=1)
    # Every variant keeps a positive mean benefit.
    assert all(value > 1.0 for value in means.values())
    # Partial restoration is load-bearing: disabling it costs speedup.
    assert means["default"] >= means["no partial restore"] - 0.002
    # The derived circuit factors land close to the published ones.
    assert abs(means["derived circuit factors"] - means["default"]) < 0.03
    # Table sharing keeps most of the benefit (Section 6.1).
    assert means["table shared x4"] > 1.0 + 0.5 * (means["default"] - 1.0)
