"""Figure 5: DRAM latency change vs. number of simultaneously-activated rows.

(a) tRCD falls with every additional activated row (-38% at two rows) with
diminishing returns; (b) restoration time and tWR always grow, so tRAS
dips for small row counts and rises again for many rows.
"""

from repro.circuit import MraModel, activation_power_overhead

from _harness import report


def _build_table():
    model = MraModel()
    rows = []
    for n in range(1, 10):
        rows.append([
            str(n),
            f"{model.trcd_factor(n):.3f}",
            f"{model.tras_factor(n):.3f}",
            f"{model.restoration_factor(n):.3f}",
            f"{model.twr_factor(n):.3f}",
            f"{activation_power_overhead(n):.3f}",
        ])
    report(
        "fig5_mra_latency",
        "Figure 5 — normalized latency vs. simultaneously-activated rows",
        ["rows", "tRCD", "tRAS", "restoration", "tWR", "act power"],
        rows,
        notes=[
            "paper anchors: tRCD 0.62 at 2 rows; restoration/tWR strictly "
            "increasing; tRAS dips then rises (crossover by ~9 rows)",
        ],
    )
    return model


def test_fig5_mra_latency(benchmark):
    model = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    assert abs(model.trcd_factor(2) - 0.62) < 0.03          # Fig 5a anchor
    assert model.tras_factor(2) < 1.0 < model.tras_factor(9)  # Fig 5b shape
    gains = [
        model.trcd_factor(n) - model.trcd_factor(n + 1) for n in range(1, 9)
    ]
    assert gains == sorted(gains, reverse=True)     # diminishing returns
