"""Figure 9: four-core weighted speedup of CROW-cache by mix group.

Runs multiprogrammed mixes from each intensity-class group (LLLL ...
HHHH) under the baseline and CROW-cache configurations and reports the
weighted-speedup improvement per group.

Paper anchors: speedup grows with the group's memory intensity (HHHH:
+7.4% for CROW-8 vs. +0.4% for LLLL), and CROW-8 clearly beats CROW-1 in
four-core runs because co-running workloads contend for each subarray's
copy rows.
"""

import statistics

from repro import SystemConfig, build_mix, derive_trace_seed
from repro.exec import TaskSpec

from _harness import MIX_INSTRUCTIONS, MIX_WARMUP, report, sweep

#: Groups (subset of the paper's eight) and mixes per group, sized for a
#: Python-speed run; REPRO_BENCH_SCALE lengthens the runs themselves.
GROUPS = ("LLLL", "LLHH", "MMHH", "HHHH")
MIXES_PER_GROUP = 3

CONFIGS = {
    "crow-1": SystemConfig(cores=4, mechanism="crow-cache", copy_rows=1),
    "crow-8": SystemConfig(cores=4, mechanism="crow-cache", copy_rows=8),
    "ideal": SystemConfig(cores=4, mechanism="ideal-crow-cache"),
}


def _run_groups():
    run_kwargs = dict(
        instructions=MIX_INSTRUCTIONS, warmup_instructions=MIX_WARMUP
    )
    # Enumerate every simulation up front so the whole figure is one sweep.
    mixes = {
        (group, index): [w.name for w in build_mix(group, seed=index + 1)]
        for group in GROUPS
        for index in range(MIXES_PER_GROUP)
    }
    alone_names = sorted({name for names in mixes.values() for name in names})
    # alone_ipcs([name], seed=0) derives the per-core trace seed for core 0.
    alone_tasks = [
        TaskSpec.workload(
            name, SystemConfig(), seed=derive_trace_seed(0, 0), **run_kwargs
        )
        for name in alone_names
    ]
    mix_tasks = []
    for (group, index), names in mixes.items():
        mix_tasks.append(
            TaskSpec.mix(names, SystemConfig(cores=4), seed=index,
                         **run_kwargs)
        )
        for config in CONFIGS.values():
            mix_tasks.append(
                TaskSpec.mix(names, config, seed=index, **run_kwargs)
            )
    results = sweep(alone_tasks + mix_tasks)

    alone_cache = {
        name: result.ipc
        for name, result in zip(alone_names, results[:len(alone_names)])
    }
    mix_results = iter(results[len(alone_names):])
    rows = []
    group_speedups: dict[str, dict[str, list[float]]] = {}
    for group in GROUPS:
        speedups = {key: [] for key in CONFIGS}
        for index in range(MIXES_PER_GROUP):
            names = mixes[(group, index)]
            alone = [alone_cache[name] for name in names]
            base = next(mix_results)
            ws_base = base.weighted_speedup(alone)
            for key in CONFIGS:
                result = next(mix_results)
                speedups[key].append(result.weighted_speedup(alone) / ws_base)
        group_speedups[group] = speedups
        rows.append([
            group,
            *(f"{statistics.mean(speedups[key]):.3f}" for key in CONFIGS),
        ])
    report(
        "fig9_four_core",
        "Figure 9 — four-core weighted speedup over baseline, by mix group",
        ["group", *CONFIGS],
        rows,
        notes=[
            f"{MIXES_PER_GROUP} mixes per group; weighted speedup uses "
            "baseline-configuration alone-IPCs for every configuration",
            "paper anchors: HHHH +7.4% (crow-8) vs LLLL +0.4%; crow-8 > "
            "crow-1 under four-core contention",
        ],
    )
    return group_speedups


def test_fig9_four_core(benchmark):
    groups = benchmark.pedantic(_run_groups, rounds=1, iterations=1)

    def mean(group, key):
        return statistics.mean(groups[group][key])

    # The paper's Figure 9 shape: benefit concentrates in the memory-
    # intensive groups. Multiprogrammed runs at Python-feasible lengths
    # carry scheduling/refresh-phase noise of a few percent per group, so
    # the assertions compare group aggregates rather than single cells.
    high = statistics.mean(
        [mean("MMHH", "crow-8"), mean("HHHH", "crow-8")]
    )
    low = statistics.mean(
        [mean("LLLL", "crow-8"), mean("LLHH", "crow-8")]
    )
    assert high > low - 0.005
    # Some memory-intensive group shows a win...
    assert max(mean("MMHH", "crow-8"), mean("HHHH", "crow-8")) > 1.0
    # ...while every group stays within the sane band (no disasters).
    for group in GROUPS:
        for key in CONFIGS:
            assert 0.85 < mean(group, key) < 1.40, (group, key)
