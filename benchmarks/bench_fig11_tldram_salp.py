"""Figure 11: CROW-cache vs. TL-DRAM and SALP.

Three panels: (a) single-core speedup, (b) DRAM chip area overhead,
(c) DRAM energy. The paper's conclusions, which this benchmark asserts:

* TL-DRAM-8 is *faster* than CROW-8 (its near segment cuts tRCD by 73%)
  but costs 6.9% chip area against CROW's 0.48%.
* SALP with the open-page policy can also beat CROW-cache in performance,
  but its many concurrently-open row buffers burn static energy, while
  CROW-cache *reduces* energy.
"""

import statistics

from repro import SystemConfig, run_workload
from repro.circuit import DecoderAreaModel

from _harness import INSTRUCTIONS, WARMUP, report

CONFIGS = {
    "crow-1": SystemConfig(mechanism="crow-cache", copy_rows=1),
    "crow-8": SystemConfig(mechanism="crow-cache", copy_rows=8),
    "tldram-8": SystemConfig(mechanism="tl-dram", tldram_near_rows=8),
    "salp-128-O": SystemConfig(
        mechanism="salp", salp_subarrays_per_bank=128, salp_open_page=True
    ),
    "salp-256-O": SystemConfig(
        mechanism="salp", salp_subarrays_per_bank=256, salp_open_page=True
    ),
}

#: High-locality sample where in-DRAM caching matters.
SAMPLE = ("h264-dec", "omnetpp", "soplex", "lbm", "sphinx3", "tpch6",
          "mcf", "libq")


def _area_overhead(key: str) -> float:
    area = DecoderAreaModel()
    if key.startswith("crow"):
        return area.crow_chip_overhead(int(key.split("-")[1]))
    if key.startswith("tldram"):
        return area.tldram_chip_overhead(int(key.split("-")[1]))
    return area.salp_chip_overhead(int(key.split("-")[1]))


def _run():
    speedups = {key: [] for key in CONFIGS}
    energies = {key: [] for key in CONFIGS}
    for name in SAMPLE:
        base = run_workload(
            name, SystemConfig(),
            instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        for key, config in CONFIGS.items():
            result = run_workload(
                name, config,
                instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
            )
            speedups[key].append(result.speedup_over(base))
            energies[key].append(result.energy_ratio(base))
    rows = []
    for key in CONFIGS:
        rows.append([
            key,
            f"{statistics.mean(speedups[key]):.3f}",
            f"{statistics.mean(energies[key]):.3f}",
            f"{_area_overhead(key) * 100:.2f}%",
        ])
    report(
        "fig11_tldram_salp",
        "Figure 11 — CROW-cache vs. TL-DRAM vs. SALP "
        f"({len(SAMPLE)}-workload sample)",
        ["mechanism", "speedup", "energy", "chip area overhead"],
        rows,
        notes=[
            "paper: TL-DRAM-8 1.138 speedup at 6.9% area; CROW-8 1.071 at "
            "0.48%; SALP-O saves latency but adds static energy "
            "(SALP-256-O: +58.4% energy, 28.9% area)",
        ],
    )
    return speedups, energies


def test_fig11_tldram_salp(benchmark):
    speedups, energies = benchmark.pedantic(_run, rounds=1, iterations=1)

    def mean(d, key):
        return statistics.mean(d[key])

    # (a) TL-DRAM-8 outperforms CROW-8.
    assert mean(speedups, "tldram-8") > mean(speedups, "crow-8")
    # (b) ...but at vastly higher area cost.
    assert _area_overhead("tldram-8") > 10 * _area_overhead("crow-8")
    assert _area_overhead("salp-256-O") > 50 * _area_overhead("crow-8")
    # (c) CROW-8 reduces energy; SALP's open buffers increase it.
    assert mean(energies, "crow-8") < 1.0
    assert mean(energies, "salp-256-O") > mean(energies, "crow-8")
    # CROW-8 beats CROW-1 or matches it.
    assert mean(speedups, "crow-8") >= mean(speedups, "crow-1") - 0.005
