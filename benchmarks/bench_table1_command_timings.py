"""Table 1: timing parameters of the new ACT-t / ACT-c DRAM commands.

Derives the command timing factor set from the analytical circuit model
(including the paper's 10^4-iteration Monte-Carlo worst-case methodology)
and prints it next to the published Table 1 values.
"""

from repro.circuit import MonteCarloAnalyzer, derive_crow_timing_factors
from repro.circuit.mra import CrowTimingFactors

from _harness import report


def _row(name, derived, paper):
    delta = f"{100 * (derived - 1):+.0f}%"
    paper_delta = f"{100 * (paper - 1):+.0f}%"
    return [name, f"{derived:.3f}", delta, paper_delta]


def _build_table():
    derived = derive_crow_timing_factors()
    paper = CrowTimingFactors.paper()
    mc = MonteCarloAnalyzer(iterations=10_000, seed=2019)
    worst = mc.worst_case_factors()
    rows = [
        _row("ACT-t tRCD (fully restored)", derived.act_t_full_trcd,
             paper.act_t_full_trcd),
        _row("ACT-t tRCD (partially restored)", derived.act_t_partial_trcd,
             paper.act_t_partial_trcd),
        _row("ACT-t tRAS (full restore)", derived.act_t_tras_full,
             paper.act_t_tras_full),
        _row("ACT-t tRAS (early termination)", derived.act_t_tras_early,
             paper.act_t_tras_early),
        _row("ACT-c tRCD", derived.act_c_trcd, paper.act_c_trcd),
        _row("ACT-c tRAS (full restore)", derived.act_c_tras_full,
             paper.act_c_tras_full),
        _row("ACT-c tRAS (early termination)", derived.act_c_tras_early,
             paper.act_c_tras_early),
        _row("MRA tWR (full restore)", derived.twr_full, paper.twr_full),
        _row("MRA tWR (early termination)", derived.twr_early,
             paper.twr_early),
        _row("ACT-t tRCD worst Monte-Carlo corner",
             worst.act_t_full_trcd, paper.act_t_full_trcd),
    ]
    report(
        "table1_command_timings",
        "Table 1 — CROW command timing factors (derived vs. paper)",
        ["quantity", "derived", "derived delta", "paper delta"],
        rows,
        notes=[
            "derived = analytical circuit model; worst corner from 10^4 "
            "Monte-Carlo iterations with 5% parameter margins",
            "the architecture benchmarks use the published Table 1 factors",
        ],
    )
    return derived


def test_table1_command_timings(benchmark):
    derived = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    paper = CrowTimingFactors.paper()
    assert abs(derived.act_t_full_trcd - paper.act_t_full_trcd) < 0.03
    assert abs(derived.act_t_tras_early - paper.act_t_tras_early) < 0.05
    assert abs(derived.twr_full - paper.twr_full) < 0.03
