"""Section 4.3: the CROW RowHammer mitigation (extension experiment).

The paper proposes, but leaves unevaluated ("we leave the evaluation ...
to future work"), a RowHammer defense that remaps the victim rows adjacent
to a detected aggressor onto copy rows. This benchmark supplies that
evaluation on the reproduction stack:

* **protection** — with the functional cell array injecting real
  disturbance flips, a hammered aggressor corrupts its neighbours' data in
  the unprotected system but not in the served data of the mitigated one;
* **overhead** — on benign workloads the detector never fires, so the
  mitigation's performance cost is ~zero.
"""

import numpy as np

from repro import SystemConfig, run_workload
from repro.controller import ChannelController, MemRequest, RequestType
from repro.core import RowHammerMitigation
from repro.dram import (
    AddressMapper,
    CellArray,
    DramChannel,
    DramGeometry,
    TimingParameters,
)
from repro.dram.address import DramAddress
from repro.dram.commands import RowId, RowKind

from _harness import INSTRUCTIONS, WARMUP, report

GEO = DramGeometry(rows_per_bank=4096, channels=1)
TIMING = TimingParameters.lpddr4()
MAPPER = AddressMapper(GEO)
PATTERN = 0xA5A5A5A5A5A5A5A5
AGGRESSOR, VICTIMS = 100, (99, 101)


def _attack(mitigated: bool):
    cells = CellArray(GEO, clock_mhz=TIMING.clock_mhz, hammer_threshold=40)
    channel = DramChannel(GEO, TIMING, cell_array=cells)
    mechanism = (
        RowHammerMitigation(GEO, TIMING, hammer_threshold=20)
        if mitigated else None
    )
    controller = ChannelController(channel, mechanism=mechanism,
                                   refresh_enabled=False)
    for victim in VICTIMS:
        cells.set_row_data(
            0, RowId.regular(victim, GEO.rows_per_subarray), PATTERN
        )
    address = MAPPER.encode(
        DramAddress(channel=0, rank=0, bank=0, row=AGGRESSOR, col=0)
    )
    now = 0
    for _ in range(120):
        controller.enqueue(
            MemRequest(RequestType.READ, address, MAPPER.decode(address)), now
        )
        while controller.pending_requests:
            now = max(controller.tick(now), now + 1)
        for _ in range(300):
            if not channel.banks[0].is_open:
                break
            now = max(controller.tick(now), now + 1)
    corrupted = 0
    for victim in VICTIMS:
        row = (
            controller.mechanism.service_row(0, victim)
            if mitigated
            else RowId.regular(victim, GEO.rows_per_subarray)
        )
        corrupted += int(
            np.count_nonzero(cells.row_data(0, row) != np.uint64(PATTERN)) > 0
        )
    return cells.disturbance_flips, corrupted


def _run():
    flips_plain, corrupted_plain = _attack(mitigated=False)
    flips_guarded, corrupted_guarded = _attack(mitigated=True)
    base = run_workload(
        "h264-dec", SystemConfig(),
        instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
    )
    guarded = run_workload(
        "h264-dec", SystemConfig(mechanism="crow-hammer",
                                 hammer_threshold=2000),
        instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
    )
    overhead = guarded.speedup_over(base)
    rows = [
        ["physical flips (attack, unprotected)", str(flips_plain)],
        ["victims serving corrupt data (unprotected)",
         f"{corrupted_plain}/2"],
        ["physical flips (attack, mitigated)", str(flips_guarded)],
        ["victims serving corrupt data (mitigated)",
         f"{corrupted_guarded}/2"],
        ["benign-workload speedup under mitigation", f"{overhead:.3f}"],
    ]
    report(
        "sec43_rowhammer",
        "Section 4.3 — CROW RowHammer mitigation (extension evaluation)",
        ["quantity", "value"],
        rows,
        notes=[
            "the paper proposes this mechanism but leaves its evaluation "
            "to future work; functional cell array injects disturbance "
            "flips after 40 activations in a refresh window",
        ],
    )
    return corrupted_plain, corrupted_guarded, overhead


def test_sec43_rowhammer(benchmark):
    corrupted_plain, corrupted_guarded, overhead = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    assert corrupted_plain == 2        # the attack works when unprotected
    assert corrupted_guarded == 0      # remapped victims stay intact
    assert 0.99 < overhead < 1.02      # ~free for benign workloads
