"""Figure 10: DRAM energy consumption with CROW-cache.

Average DRAM energy of CROW-cache runs normalized to the conventional
baseline, for single-core workloads and four-core mixes. The paper reports
-8.2% (single-core) and -6.9% (four-core): the ACT-t/ACT-c commands cost
5.8% more power each, but the execution-time reduction cuts background and
refresh energy by more.
"""

import statistics

from repro import SystemConfig, build_mix, run_mix, run_workload

from _harness import (
    INSTRUCTIONS,
    MIX_INSTRUCTIONS,
    MIX_WARMUP,
    SINGLE_CORE_SAMPLE,
    WARMUP,
    report,
)


def _run():
    rows = []
    single_ratios = []
    for name in SINGLE_CORE_SAMPLE:
        base = run_workload(
            name, SystemConfig(),
            instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        crow = run_workload(
            name, SystemConfig(mechanism="crow-cache"),
            instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        ratio = crow.energy_ratio(base)
        single_ratios.append(ratio)
        rows.append([name, "1-core", f"{ratio:.3f}",
                     f"{crow.speedup_over(base):.3f}"])
    mix_ratios = []
    for group, seed in (
        ("MMHH", 1), ("MMHH", 2), ("HHHH", 1), ("HHHH", 2), ("LLHH", 1),
    ):
        mix = build_mix(group, seed=seed)
        base = run_mix(
            mix, SystemConfig(cores=4),
            instructions=MIX_INSTRUCTIONS, warmup_instructions=MIX_WARMUP,
        )
        crow = run_mix(
            mix, SystemConfig(cores=4, mechanism="crow-cache"),
            instructions=MIX_INSTRUCTIONS, warmup_instructions=MIX_WARMUP,
        )
        ratio = crow.energy_ratio(base)
        mix_ratios.append(ratio)
        rows.append([f"{group}#{seed}", "4-core", f"{ratio:.3f}", "-"])
    rows.append(["AVERAGE 1-core", "",
                 f"{statistics.mean(single_ratios):.3f}", ""])
    rows.append(["AVERAGE 4-core", "",
                 f"{statistics.mean(mix_ratios):.3f}", ""])
    report(
        "fig10_energy",
        "Figure 10 — DRAM energy with CROW-cache (normalized to baseline)",
        ["workload", "cores", "energy ratio", "speedup"],
        rows,
        notes=["paper averages: 0.918 (1-core), 0.931 (4-core)"],
    )
    return single_ratios, mix_ratios


def test_fig10_energy(benchmark):
    single, mixes = benchmark.pedantic(_run, rounds=1, iterations=1)
    # The suite-average energy goes down.
    assert statistics.mean(single) < 1.0
    assert statistics.mean(mixes) < 1.02
    # High-locality workloads save clearly; nothing explodes.
    assert min(single) < 0.97
    assert max(single) < 1.05
