"""Figure 10: DRAM energy consumption with CROW-cache.

Average DRAM energy of CROW-cache runs normalized to the conventional
baseline, for single-core workloads and four-core mixes. The paper reports
-8.2% (single-core) and -6.9% (four-core): the ACT-t/ACT-c commands cost
5.8% more power each, but the execution-time reduction cuts background and
refresh energy by more.
"""

import statistics

from repro import SystemConfig, build_mix
from repro.dram.timing import TimingParameters
from repro.energy import EnergyModel, IddCurrents
from repro.estimate.runtime import channel_coefficients
from repro.exec import TaskSpec

from _harness import (
    INSTRUCTIONS,
    MIX_INSTRUCTIONS,
    MIX_WARMUP,
    SINGLE_CORE_SAMPLE,
    WARMUP,
    report,
    sweep,
)

MIX_CASES = (
    ("MMHH", 1), ("MMHH", 2), ("HHHH", 1), ("HHHH", 2), ("LLHH", 1),
)


def _run():
    single_run = dict(instructions=INSTRUCTIONS, warmup_instructions=WARMUP)
    mix_run = dict(
        instructions=MIX_INSTRUCTIONS, warmup_instructions=MIX_WARMUP
    )
    tasks = []
    for name in SINGLE_CORE_SAMPLE:
        tasks.append(TaskSpec.workload(name, SystemConfig(), **single_run))
        tasks.append(TaskSpec.workload(
            name, SystemConfig(mechanism="crow-cache"), **single_run
        ))
    for group, seed in MIX_CASES:
        names = [w.name for w in build_mix(group, seed=seed)]
        tasks.append(TaskSpec.mix(
            names, SystemConfig(cores=4), **mix_run
        ))
        tasks.append(TaskSpec.mix(
            names, SystemConfig(cores=4, mechanism="crow-cache"), **mix_run
        ))
    results = iter(sweep(tasks))

    rows = []
    single_ratios = []
    for name in SINGLE_CORE_SAMPLE:
        base = next(results)
        crow = next(results)
        ratio = crow.energy_ratio(base)
        single_ratios.append(ratio)
        rows.append([name, "1-core", f"{ratio:.3f}",
                     f"{crow.speedup_over(base):.3f}"])
    mix_ratios = []
    for group, seed in MIX_CASES:
        base = next(results)
        crow = next(results)
        ratio = crow.energy_ratio(base)
        mix_ratios.append(ratio)
        rows.append([f"{group}#{seed}", "4-core", f"{ratio:.3f}", "-"])
    rows.append(["AVERAGE 1-core", "",
                 f"{statistics.mean(single_ratios):.3f}", ""])
    rows.append(["AVERAGE 4-core", "",
                 f"{statistics.mean(mix_ratios):.3f}", ""])
    report(
        "fig10_energy",
        "Figure 10 — DRAM energy with CROW-cache (normalized to baseline)",
        ["workload", "cores", "energy ratio", "speedup"],
        rows,
        notes=["paper averages: 0.918 (1-core), 0.931 (4-core)"],
    )
    return single_ratios, mix_ratios


def test_fig10_energy(benchmark):
    single, mixes = benchmark.pedantic(_run, rounds=1, iterations=1)
    # The suite-average energy goes down.
    assert statistics.mean(single) < 1.0
    assert statistics.mean(mixes) < 1.02
    # High-locality workloads save clearly; nothing explodes.
    assert min(single) < 0.97
    assert max(single) < 1.05
    # Every run above computed its EnergyBreakdown from coefficients
    # served by the repro.estimate arbiter; the arbitrated set must be
    # bit-identical to the direct IDD model (the paper's methodology),
    # or the figure would silently drift from the pre-framework output.
    timing = TimingParameters.lpddr4(density_gbit=8)
    currents = IddCurrents.lpddr4(8)
    arbitrated = channel_coefficients(timing, currents)
    assert arbitrated == EnergyModel(timing, currents).coefficients()
