"""Benchmark-session plumbing.

pytest captures stdout during the run, so each benchmark's paper-style
table is persisted under ``benchmarks/results/`` and replayed into the
terminal report here, where capture no longer applies — the tables land in
``bench_output.txt`` when the session is tee'd.
"""

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RESULTS_DIR.is_dir():
        return
    files = sorted(RESULTS_DIR.glob("*.txt"))
    if not files:
        return
    terminalreporter.section("paper-figure reproduction tables")
    for file in files:
        terminalreporter.write("\n" + file.read_text())
