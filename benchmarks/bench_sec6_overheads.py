"""Section 6: hardware overheads of the CROW substrate.

* Eq. 3-4: the CROW-table costs ~11 KiB of controller storage per channel
  (512 regular rows -> 11-bit entries x 8 copy rows x 1024 subarrays).
* Sharing one entry set across 4 subarrays quarters the storage while
  keeping most of the speedup (the paper reports 7.1% -> 6.1%).
* The DRAM die pays 0.48% area and 1.6% capacity (Section 6.2).
"""

import pytest

from repro import SystemConfig, run_workload
from repro.circuit import DecoderAreaModel
from repro.core import crow_table_entry_bits, crow_table_storage_kib
from repro.estimate.runtime import crow_overheads

from _harness import INSTRUCTIONS, WARMUP, report


def _build_table():
    # Area rows via the estimator arbiter (circuit-reference backend):
    # byte-identical to the direct DecoderAreaModel, asserted below.
    overheads = crow_overheads(8)
    entry_bits = crow_table_entry_bits(512, special_bits=1)
    storage = crow_table_storage_kib()
    shared = crow_table_storage_kib(subarrays=256)

    base = run_workload(
        "h264-dec", SystemConfig(mechanism="baseline"),
        instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
    )
    dedicated = run_workload(
        "h264-dec", SystemConfig(mechanism="crow-cache"),
        instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
    )
    grouped = run_workload(
        "h264-dec",
        SystemConfig(mechanism="crow-cache", subarray_group_size=4),
        instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
    )
    rows = [
        ["CROW-table entry size", f"{entry_bits} bits", "11 bits"],
        ["CROW-table storage / channel", f"{storage:.1f} KiB", "11.3 KB"],
        ["  shared across 4 subarrays", f"{shared:.1f} KiB", "~1/4"],
        ["DRAM chip area overhead (8 copy rows)",
         f"{overheads['chip_overhead'] * 100:.2f}%", "0.48%"],
        ["DRAM capacity overhead",
         f"{overheads['capacity_overhead'] * 100:.2f}%", "1.6%"],
        ["CROW-cache speedup (dedicated table)",
         f"{100 * (dedicated.speedup_over(base) - 1):.1f}%", "7.1% avg"],
        ["CROW-cache speedup (4-subarray sharing)",
         f"{100 * (grouped.speedup_over(base) - 1):.1f}%", "6.1% avg"],
    ]
    report(
        "sec6_overheads",
        "Section 6 — CROW substrate hardware overheads",
        ["quantity", "measured", "paper"],
        rows,
        notes=[
            "speedup rows use the h264-dec workload (the paper values are "
            "suite averages); sharing must cost some speedup, not all",
        ],
    )
    return base, dedicated, grouped


def test_sec6_overheads(benchmark):
    base, dedicated, grouped = benchmark.pedantic(
        _build_table, rounds=1, iterations=1
    )
    assert crow_table_entry_bits(512) == 11
    assert crow_table_storage_kib() == pytest.approx(11.0, abs=0.1)
    # Byte-identity of the estimator port against the direct model.
    area = DecoderAreaModel()
    overheads = crow_overheads(8)
    assert overheads["chip_overhead"] == area.crow_chip_overhead(8)
    assert overheads["capacity_overhead"] == area.crow_capacity_overhead(8)
    # Sharing keeps most, but not all, of the benefit.
    full = dedicated.speedup_over(base)
    shared = grouped.speedup_over(base)
    assert 1.0 < shared <= full + 0.01
    assert shared > 1.0 + 0.5 * (full - 1.0)
