"""Figure 6: tRCD as a function of tRAS under early restoration termination.

For each multiple-row-activation row count, sweeping the restoration
termination point traces a frontier: shorter tRAS (earlier termination)
leaves less charge, so the *next* activation's tRCD grows. More rows push
the whole frontier down-left.
"""

from repro.circuit import MraModel

from _harness import report


def _build_table():
    model = MraModel()
    rows = []
    for n_rows in (2, 4, 8):
        for point in model.tradeoff_frontier(n_rows, n_points=6):
            rows.append([
                str(n_rows),
                f"{point.restore_fraction:.3f}",
                f"{point.tras_factor:.3f}",
                f"{point.next_trcd_factor:.3f}",
                f"{point.retention_ms:.1f}ms",
            ])
    report(
        "fig6_trcd_tras_tradeoff",
        "Figure 6 — tRCD vs. tRAS trade-off frontier per MRA row count",
        ["rows", "restore frac", "tRAS", "next tRCD", "retention"],
        rows,
        notes=[
            "paper's chosen 2-row operating point: tRAS 0.67, tRCD 0.79",
            "every point keeps retention >= the 64 ms refresh window",
        ],
    )
    return model


def test_fig6_tradeoff_frontier(benchmark):
    model = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    two = model.tradeoff_frontier(2, n_points=32)
    # The paper's operating point is achievable.
    assert any(
        p.tras_factor <= 0.67 and p.next_trcd_factor <= 0.80 for p in two
    )
    # More rows push the frontier down.
    four = model.tradeoff_frontier(4, n_points=32)
    assert min(p.next_trcd_factor for p in four) < min(
        p.next_trcd_factor for p in two
    )
    # All points meet the retention window.
    assert all(p.retention_ms >= 63.9 for p in two + four)
