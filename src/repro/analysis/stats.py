"""Summary statistics for experiment series."""

from __future__ import annotations

import math

from repro.errors import ConfigError

__all__ = ["geometric_mean", "normalize", "summarize_speedups"]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the conventional average for speedup ratios)."""
    if not values:
        raise ConfigError("geometric_mean of an empty series")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: list[float], baseline: float) -> list[float]:
    """Divide a series by a baseline value."""
    if baseline == 0:
        raise ConfigError("baseline must be non-zero")
    return [v / baseline for v in values]


def summarize_speedups(speedups: dict[str, float]) -> dict[str, float]:
    """Arithmetic/geometric mean, min and max of a named speedup series."""
    if not speedups:
        raise ConfigError("empty speedup series")
    values = list(speedups.values())
    return {
        "mean": sum(values) / len(values),
        "gmean": geometric_mean(values),
        "min": min(values),
        "max": max(values),
        "best": max(speedups, key=speedups.get),
        "worst": min(speedups, key=speedups.get),
    }
