"""Fixed-width text tables for experiment reports."""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["format_table", "TextTable"]


def format_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
    notes: list[str] | None = None,
) -> str:
    """Render a fixed-width table; every row must match the header arity."""
    for row in rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in notes or []:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


class TextTable:
    """Incrementally-built text table with typed cell formatting.

    >>> table = TextTable("demo", ["config", "speedup"])
    >>> table.add_row("crow-8", 1.0713)
    >>> print(table.render())   # doctest: +ELLIPSIS
    == demo ==
    ...
    """

    def __init__(self, title: str, headers: list[str]) -> None:
        if not headers:
            raise ConfigError("headers must be non-empty")
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []
        self.notes: list[str] = []

    @staticmethod
    def _format(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def add_row(self, *cells) -> "TextTable":
        """Append one formatted row; returns self for chaining."""
        if len(cells) != len(self.headers):
            raise ConfigError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([self._format(cell) for cell in cells])
        return self

    def add_note(self, note: str) -> "TextTable":
        """Append a footnote line; returns self for chaining."""
        self.notes.append(note)
        return self

    def render(self) -> str:
        """Render the table as fixed-width text."""
        return format_table(self.headers, self.rows, self.title, self.notes)
