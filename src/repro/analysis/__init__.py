"""Result analysis and reporting utilities.

Used by the benchmark harness and the examples to turn simulation results
into the paper-style tables and series: fixed-width text tables, summary
statistics (means, geometric means), normalized comparisons, and simple
ASCII bar series for terminal-friendly "figures".
"""

from repro.analysis.tables import TextTable, format_table
from repro.analysis.stats import geometric_mean, normalize, summarize_speedups
from repro.analysis.series import ascii_bars, ascii_timeseries

__all__ = [
    "TextTable",
    "format_table",
    "geometric_mean",
    "normalize",
    "summarize_speedups",
    "ascii_bars",
    "ascii_timeseries",
]
