"""Terminal-friendly data series rendering (ASCII bar "figures")."""

from __future__ import annotations

import math

from repro.errors import ConfigError

__all__ = ["ascii_bars", "ascii_timeseries"]


def ascii_bars(
    series: dict[str, float],
    width: int = 40,
    baseline: float | None = None,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart.

    With ``baseline``, bars are drawn relative to it and annotated with
    the percentage delta — handy for speedup/energy comparisons::

        crow-8   | ######################        1.071  (+7.1%)

    Raises :class:`ConfigError` on an empty series or on non-finite
    values (a single NaN/inf would otherwise poison the peak scaling).
    """
    if not series:
        raise ConfigError("empty series")
    if width < 8:
        raise ConfigError("width must be >= 8")
    for label, value in series.items():
        if not math.isfinite(value):
            raise ConfigError(f"non-finite value for {label!r}: {value!r}")
    label_width = max(len(label) for label in series)
    peak = max(abs(v) for v in series.values()) or 1.0
    lines = []
    for label, value in series.items():
        bar = "#" * max(1, round(abs(value) / peak * width))
        annotation = f"{value:.3f}{unit}"
        if baseline:
            delta = (value / baseline - 1.0) * 100.0
            annotation += f"  ({delta:+.1f}%)"
        lines.append(f"{label.ljust(label_width)} | {bar.ljust(width)} {annotation}")
    return "\n".join(lines)


def ascii_timeseries(
    values: "list[float | None]",
    width: int = 60,
    height: int = 8,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a sampled time series as a column chart.

    Built for telemetry epoch series: ``values[i]`` is the sample for
    epoch ``i``; ``None`` (or NaN/inf) samples render as gaps, which is
    how :class:`repro.telemetry.EpochSeries` encodes epochs where the
    quantity was undefined (e.g. hit rate with zero accesses).

    Samples are downsampled by averaging when there are more than
    ``width`` of them. The y-axis is annotated with the peak and zero,
    and the x-axis with the epoch index range.

    Raises :class:`ConfigError` when ``values`` is empty or every sample
    is a gap.
    """
    if not values:
        raise ConfigError("empty series")
    if width < 8 or height < 2:
        raise ConfigError("width must be >= 8 and height >= 2")

    def clean(v: "float | None") -> "float | None":
        if v is None:
            return None
        v = float(v)
        return v if math.isfinite(v) else None

    samples = [clean(v) for v in values]
    if all(v is None for v in samples):
        raise ConfigError("series has no finite samples")

    # Downsample to <= width columns by averaging each chunk's defined
    # samples (a chunk of only gaps stays a gap).
    if len(samples) > width:
        columns: "list[float | None]" = []
        for i in range(width):
            lo = i * len(samples) // width
            hi = max(lo + 1, (i + 1) * len(samples) // width)
            chunk = [v for v in samples[lo:hi] if v is not None]
            columns.append(sum(chunk) / len(chunk) if chunk else None)
    else:
        columns = samples

    defined = [v for v in columns if v is not None]
    peak = max(defined)
    floor = min(0.0, min(defined))
    span = (peak - floor) or 1.0
    grid = [[" "] * len(columns) for _ in range(height)]
    for x, value in enumerate(columns):
        if value is None:
            continue
        filled = max(1, round((value - floor) / span * height))
        for y in range(filled):
            grid[height - 1 - y][x] = "#"

    axis = f"{peak:.4g}{unit}"
    lines = []
    if title:
        lines.append(title)
    for y, row in enumerate(grid):
        prefix = axis if y == 0 else " " * len(axis)
        lines.append(f"{prefix} |{''.join(row)}")
    zero = f"{floor:.4g}{unit}".rjust(len(axis))
    lines.append(f"{zero} +{'-' * len(columns)}")
    lines.append(
        f"{' ' * len(axis)}  epoch 0..{len(values) - 1}"
        f" ({len(values)} samples)"
    )
    return "\n".join(lines)
