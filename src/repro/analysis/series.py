"""Terminal-friendly data series rendering (ASCII bar "figures")."""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["ascii_bars"]


def ascii_bars(
    series: dict[str, float],
    width: int = 40,
    baseline: float | None = None,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart.

    With ``baseline``, bars are drawn relative to it and annotated with
    the percentage delta — handy for speedup/energy comparisons::

        crow-8   | ######################        1.071  (+7.1%)
    """
    if not series:
        raise ConfigError("empty series")
    if width < 8:
        raise ConfigError("width must be >= 8")
    label_width = max(len(label) for label in series)
    peak = max(abs(v) for v in series.values()) or 1.0
    lines = []
    for label, value in series.items():
        bar = "#" * max(1, round(abs(value) / peak * width))
        annotation = f"{value:.3f}{unit}"
        if baseline:
            delta = (value / baseline - 1.0) * 100.0
            annotation += f"  ({delta:+.1f}%)"
        lines.append(f"{label.ljust(label_width)} | {bar.ljust(width)} {annotation}")
    return "\n".join(lines)
