"""Task specifications for the execution engine.

A :class:`TaskSpec` is the unit of work the engine schedules: one
deterministic simulation — a single-core workload run or a
multiprogrammed mix — fully described by value. Specs are frozen,
picklable (they cross process boundaries) and content-addressed: two
specs with equal fields share one :meth:`~TaskSpec.digest` in every
process, which is what lets the runner, the journal and the disk cache
all agree on task identity.
"""

from __future__ import annotations

import base64
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

from repro.errors import ConfigError, ReproError
from repro.sim.campaign import cache_filename, task_digest
from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.sweep import run_mix, run_workload

__all__ = ["TaskSpec", "execute_task"]

#: Task kinds, matching the Campaign cache-key prefixes.
KINDS = ("wl", "mix")


@dataclass(frozen=True)
class TaskSpec:
    """One deterministic simulation, described entirely by value."""

    #: Kinds this spec class accepts; subclasses (e.g. probe campaigns)
    #: narrow it to their own kind namespace.
    VALID_KINDS: ClassVar[tuple[str, ...]] = KINDS
    #: Result type tasks of this class produce; the campaign cache and
    #: the cluster store validate entries against it.
    result_type: ClassVar[type] = SimResult

    kind: str                      # 'wl' (single-core) or 'mix'
    names: tuple[str, ...]         # workload name(s); one per core for 'mix'
    config: SystemConfig = field(default_factory=SystemConfig)
    instructions: int = 60_000
    warmup_instructions: int = 30_000
    seed: int = 0
    # Snapshot plumbing. Deliberately excluded from digest()/the cache
    # key: a warm-forked or checkpoint-resumed run produces the same
    # SimResult bytes as a cold run of the same simulation inputs, so
    # these fields change *how* a task executes, never *what* it is.
    warm_image: "str | None" = None
    checkpoint_dir: "str | None" = None
    checkpoint_every: int = 50_000

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ConfigError(
                f"unknown task kind {self.kind!r}; one of {self.VALID_KINDS}"
            )
        if not self.names:
            raise ConfigError("a task needs at least one workload name")
        if self.kind == "wl" and len(self.names) != 1:
            raise ConfigError("'wl' tasks take exactly one workload name")
        object.__setattr__(self, "names", tuple(self.names))
        # Paths must be plain strings: specs are pickled across process
        # boundaries and compared by value.
        if self.warm_image is not None:
            object.__setattr__(self, "warm_image", str(self.warm_image))
        if self.checkpoint_dir is not None:
            object.__setattr__(
                self, "checkpoint_dir", str(self.checkpoint_dir)
            )
        if self.checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")

    # -- constructors ---------------------------------------------------

    @classmethod
    def workload(
        cls,
        name: str,
        config: SystemConfig | None = None,
        instructions: int = 60_000,
        warmup_instructions: int = 30_000,
        seed: int = 0,
        **snapshot_kwargs,
    ) -> "TaskSpec":
        """A single-core run (same semantics as sweep.run_workload)."""
        return cls(
            kind="wl",
            names=(name,),
            config=config if config is not None else SystemConfig(),
            instructions=instructions,
            warmup_instructions=warmup_instructions,
            seed=seed,
            **snapshot_kwargs,
        )

    @classmethod
    def mix(
        cls,
        names: "list[str] | tuple[str, ...]",
        config: SystemConfig | None = None,
        instructions: int = 40_000,
        warmup_instructions: int = 20_000,
        seed: int = 0,
        **snapshot_kwargs,
    ) -> "TaskSpec":
        """A multiprogrammed run (same semantics as sweep.run_mix)."""
        return cls(
            kind="mix",
            names=tuple(names),
            config=config if config is not None else SystemConfig(),
            instructions=instructions,
            warmup_instructions=warmup_instructions,
            seed=seed,
            **snapshot_kwargs,
        )

    # -- identity -------------------------------------------------------

    def digest(self) -> str:
        """Process-stable content digest (the Campaign cache key)."""
        return task_digest(
            self.kind, self.names, self.config, self.instructions,
            self.warmup_instructions, self.seed,
        )

    @property
    def label(self) -> str:
        """Short human-readable identity for logs and progress lines."""
        names = "+".join(self.names)
        return f"{self.kind}:{names}@{self.config.mechanism}#{self.seed}"

    def cache_filename(self) -> str:
        """The Campaign cache file name this task's result lives under."""
        return cache_filename(
            self.kind, self.names, self.config, self.instructions,
            self.warmup_instructions, self.seed,
        )

    def to_wire(self) -> dict:
        """JSON-safe wire form of this spec (cluster lease frames).

        The pickled spec rides base64-encoded next to its content
        digest; :meth:`from_wire` recomputes the digest on the far side,
        so a corrupted or tampered payload can never masquerade as a
        different task. Execution-plumbing fields (``warm_image``,
        ``checkpoint_dir``) travel too but are digest-exempt, exactly as
        they are locally.
        """
        return {
            "digest": self.digest(),
            "label": self.label,
            "spec": base64.b64encode(pickle.dumps(self)).decode("ascii"),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "TaskSpec":
        """Rebuild a spec from :meth:`to_wire`, verifying its digest."""
        try:
            spec = pickle.loads(base64.b64decode(wire["spec"]))
        except Exception as exc:
            raise ConfigError(f"undecodable task wire payload: {exc}")
        if not isinstance(spec, cls):
            raise ConfigError(
                f"task wire payload is a {type(spec).__name__}, "
                "not a TaskSpec"
            )
        if spec.digest() != wire.get("digest"):
            raise ConfigError(
                f"task wire digest mismatch: payload is "
                f"{spec.digest()}, frame claims {wire.get('digest')!r}"
            )
        return spec

    def checkpoint_path(self) -> "Path | None":
        """Where this task's periodic checkpoint lives (digest-named)."""
        if self.checkpoint_dir is None:
            return None
        return Path(self.checkpoint_dir) / f"{self.digest()}.ckpt"

    # -- execution ------------------------------------------------------

    def run(self) -> SimResult:
        """Execute the simulation this spec describes (deterministic).

        With a ``checkpoint_dir``, a checkpoint left behind by an earlier
        killed attempt is resumed instead of restarting from cycle 0;
        unreadable or incompatible checkpoints are discarded and the run
        starts over. Either way the result is byte-identical to an
        uninterrupted run.
        """
        checkpoint = self.checkpoint_path()
        if checkpoint is not None and checkpoint.is_file():
            from repro.sim.system import System

            try:
                # Resume at *this spec's* cadence so the continued run
                # keeps checkpointing (a second kill also resumes) and
                # removes the file once it completes.
                return System.resume(
                    checkpoint, checkpoint_every=self.checkpoint_every
                )
            except ReproError:
                checkpoint.unlink(missing_ok=True)
        kwargs: dict = {
            "config": self.config,
            "instructions": self.instructions,
            "warmup_instructions": self.warmup_instructions,
            "seed": self.seed,
            "warm_image": self.warm_image,
        }
        if checkpoint is not None:
            kwargs["checkpoint_path"] = checkpoint
            kwargs["checkpoint_every"] = self.checkpoint_every
        if self.kind == "wl":
            return run_workload(self.names[0], **kwargs)
        return run_mix(list(self.names), **kwargs)


def execute_task(spec: TaskSpec) -> SimResult:
    """Module-level task entry point (picklable for worker processes)."""
    return spec.run()
