"""Task specifications for the execution engine.

A :class:`TaskSpec` is the unit of work the engine schedules: one
deterministic simulation — a single-core workload run or a
multiprogrammed mix — fully described by value. Specs are frozen,
picklable (they cross process boundaries) and content-addressed: two
specs with equal fields share one :meth:`~TaskSpec.digest` in every
process, which is what lets the runner, the journal and the disk cache
all agree on task identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.sim.campaign import cache_filename, task_digest
from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.sweep import run_mix, run_workload

__all__ = ["TaskSpec", "execute_task"]

#: Task kinds, matching the Campaign cache-key prefixes.
KINDS = ("wl", "mix")


@dataclass(frozen=True)
class TaskSpec:
    """One deterministic simulation, described entirely by value."""

    kind: str                      # 'wl' (single-core) or 'mix'
    names: tuple[str, ...]         # workload name(s); one per core for 'mix'
    config: SystemConfig = field(default_factory=SystemConfig)
    instructions: int = 60_000
    warmup_instructions: int = 30_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown task kind {self.kind!r}; one of {KINDS}"
            )
        if not self.names:
            raise ConfigError("a task needs at least one workload name")
        if self.kind == "wl" and len(self.names) != 1:
            raise ConfigError("'wl' tasks take exactly one workload name")
        object.__setattr__(self, "names", tuple(self.names))

    # -- constructors ---------------------------------------------------

    @classmethod
    def workload(
        cls,
        name: str,
        config: SystemConfig | None = None,
        instructions: int = 60_000,
        warmup_instructions: int = 30_000,
        seed: int = 0,
    ) -> "TaskSpec":
        """A single-core run (same semantics as sweep.run_workload)."""
        return cls(
            kind="wl",
            names=(name,),
            config=config if config is not None else SystemConfig(),
            instructions=instructions,
            warmup_instructions=warmup_instructions,
            seed=seed,
        )

    @classmethod
    def mix(
        cls,
        names: "list[str] | tuple[str, ...]",
        config: SystemConfig | None = None,
        instructions: int = 40_000,
        warmup_instructions: int = 20_000,
        seed: int = 0,
    ) -> "TaskSpec":
        """A multiprogrammed run (same semantics as sweep.run_mix)."""
        return cls(
            kind="mix",
            names=tuple(names),
            config=config if config is not None else SystemConfig(),
            instructions=instructions,
            warmup_instructions=warmup_instructions,
            seed=seed,
        )

    # -- identity -------------------------------------------------------

    def digest(self) -> str:
        """Process-stable content digest (the Campaign cache key)."""
        return task_digest(
            self.kind, self.names, self.config, self.instructions,
            self.warmup_instructions, self.seed,
        )

    @property
    def label(self) -> str:
        """Short human-readable identity for logs and progress lines."""
        names = "+".join(self.names)
        return f"{self.kind}:{names}@{self.config.mechanism}#{self.seed}"

    def cache_filename(self) -> str:
        """The Campaign cache file name this task's result lives under."""
        return cache_filename(
            self.kind, self.names, self.config, self.instructions,
            self.warmup_instructions, self.seed,
        )

    # -- execution ------------------------------------------------------

    def run(self) -> SimResult:
        """Execute the simulation this spec describes (deterministic)."""
        if self.kind == "wl":
            return run_workload(
                self.names[0],
                self.config,
                instructions=self.instructions,
                warmup_instructions=self.warmup_instructions,
                seed=self.seed,
            )
        return run_mix(
            list(self.names),
            self.config,
            instructions=self.instructions,
            warmup_instructions=self.warmup_instructions,
            seed=self.seed,
        )


def execute_task(spec: TaskSpec) -> SimResult:
    """Module-level task entry point (picklable for worker processes)."""
    return spec.run()
