"""JSONL run journal.

Every noteworthy event in a campaign — task launched, finished, failed,
retried, served from cache — is appended as one JSON object per line.
The format is append-only and durable per event — by default each record
is flushed *and fsynced*, so a journal survives not just a killed
campaign process but a host power loss, and tells you exactly how far
the run got; it is also the machine-readable record later tooling
(dashboards, flaky-task triage, the cluster coordinator's replay)
consumes.

Two scale options relax the defaults for million-record campaigns, both
opt-in and both round-trippable through :func:`read_journal`:

* ``fsync_every=N`` batches the fsync to every Nth record (flushes still
  happen per record; a crash loses at most N-1 *fsynced* records, never
  tears the file);
* a path ending in ``.gz`` (e.g. ``run.jsonl.gz``) writes gzip-compressed
  records. Append re-opens produce concatenated gzip members, which
  :func:`read_journal` (and ``zcat``) decode transparently.
"""

from __future__ import annotations

import gzip
import json
import os
import time
from pathlib import Path

__all__ = ["RunJournal", "read_journal"]


class RunJournal:
    """Append-only JSONL event log for one campaign run.

    Usable both as an engine observer (it exposes the ``(event, fields)``
    callable protocol the runner emits to) and directly via
    :meth:`record`. Event payloads must be JSON-serializable.

    :param fsync: fsync records (the default). Campaign events are rare
        relative to simulation work, so the per-record fsync is noise in
        the profile but makes each line durable the moment
        :meth:`record` returns; pass ``False`` for throwaway journals.
    :param fsync_every: fsync cadence in records (default 1 = every
        record). Larger values amortize the syscall over huge campaigns;
        :meth:`close` always syncs whatever is outstanding. Ignored when
        ``fsync`` is ``False``.
    :param compress: gzip-compress the stream. ``None`` (default) infers
        from the path suffix — ``.gz`` enables compression.
    """

    def __init__(
        self,
        path: "str | Path",
        fsync: bool = True,
        fsync_every: int = 1,
        compress: "bool | None" = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if compress is None:
            compress = self.path.suffix == ".gz"
        self.compressed = compress
        if compress:
            self._handle = gzip.open(self.path, "at", encoding="utf-8")
        else:
            self._handle = self.path.open("a", encoding="utf-8")
        self._fsync = fsync
        self._fsync_every = max(1, fsync_every)
        self._unsynced = 0
        self._origin = time.monotonic()

    def record(self, event: str, **fields) -> None:
        """Append one event line; durable on disk per the fsync cadence."""
        entry = {
            "event": event,
            "t": round(time.monotonic() - self._origin, 6),
            **fields,
        }
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        if not self._fsync:
            return
        self._unsynced += 1
        if self._unsynced >= self._fsync_every:
            self._sync()

    def _sync(self) -> None:
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    def __call__(self, event: str, fields: dict) -> None:
        self.record(event, **fields)

    def close(self) -> None:
        if not self._handle.closed:
            if self._fsync and self._unsynced:
                self._handle.flush()
                self._sync()
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: "str | Path") -> list[dict]:
    """Parse a journal back into its event dicts (skipping torn lines).

    Handles both plain and gzip journals; compression is sniffed from
    the file's magic bytes, not its name, so renamed files still parse.
    """
    path = Path(path)
    raw = path.read_bytes()
    if raw[:2] == b"\x1f\x8b":
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError):
            # Torn final gzip member from a killed writer: decode what
            # streams cleanly, line by line.
            raw = _decompress_prefix(raw)
    text = raw.decode("utf-8", errors="replace")
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn final line from a killed writer
    return events


def _decompress_prefix(raw: bytes) -> bytes:
    """Best-effort decode of a gzip stream with a corrupt/torn tail.

    Walks the concatenated members one decompressobj at a time —
    ``GzipFile.read`` would discard an entire call's buffered output
    when the torn tail raises mid-read, losing intact members.
    """
    import zlib

    out = bytearray()
    view = raw
    while view[:2] == b"\x1f\x8b":
        member = zlib.decompressobj(wbits=16 + zlib.MAX_WBITS)
        try:
            out.extend(member.decompress(view))
        except zlib.error:
            break  # corrupt member: keep everything before it
        if not member.eof:
            break  # torn final member: its clean prefix is kept
        view = member.unused_data
    return bytes(out)
