"""JSONL run journal.

Every noteworthy event in a campaign — task launched, finished, failed,
retried, served from cache — is appended as one JSON object per line.
The format is append-only and durable per event — each record is flushed
*and fsynced*, so a journal survives not just a killed campaign process
but a host power loss, and tells you exactly how far the run got; it is
also the machine-readable record later tooling (dashboards, flaky-task
triage) consumes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["RunJournal", "read_journal"]


class RunJournal:
    """Append-only JSONL event log for one campaign run.

    Usable both as an engine observer (it exposes the ``(event, fields)``
    callable protocol the runner emits to) and directly via
    :meth:`record`. Event payloads must be JSON-serializable.

    :param fsync: fsync after every record (the default). Campaign events
        are rare relative to simulation work, so the per-record fsync is
        noise in the profile but makes each line durable the moment
        :meth:`record` returns; pass ``False`` for throwaway journals.
    """

    def __init__(self, path: "str | Path", fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._fsync = fsync
        self._origin = time.monotonic()

    def record(self, event: str, **fields) -> None:
        """Append one event line; durable on disk when this returns."""
        entry = {
            "event": event,
            "t": round(time.monotonic() - self._origin, 6),
            **fields,
        }
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def __call__(self, event: str, fields: dict) -> None:
        self.record(event, **fields)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: "str | Path") -> list[dict]:
    """Parse a journal back into its event dicts (skipping torn lines)."""
    events = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn final line from a killed writer
    return events
