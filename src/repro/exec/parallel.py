"""Cache-aware parallel campaigns.

:class:`ParallelCampaign` composes the :class:`~repro.sim.campaign.Campaign`
disk cache with the :class:`~repro.exec.runner.ProcessPoolRunner`:
completed tasks are served straight from cache, and only the misses are
fanned out to worker processes. Because tasks are content-addressed (see
:meth:`TaskSpec.digest`) and every simulation is a pure function of its
spec, a parallel campaign produces *exactly* the cache entries and
results a serial :class:`Campaign` would — scheduling changes wall-clock,
never values.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.errors import ConfigError
from repro.exec.journal import RunJournal
from repro.exec.progress import ProgressReporter
from repro.exec.runner import ProcessPoolRunner, TaskOutcome
from repro.exec.task import TaskSpec, execute_task
from repro.sim.campaign import Campaign
from repro.sim.metrics import SimResult

__all__ = ["ParallelCampaign"]


class ParallelCampaign:
    """Run a list of :class:`TaskSpec` through cache + worker pool.

    :param directory: Campaign cache directory (shared with, and
        byte-compatible with, the serial :class:`Campaign`).
    :param jobs: worker slots (``1`` = serial in-process fallback).
    :param timeout_s: per-attempt wall-clock budget (parallel runs only).
    :param retries: extra attempts per task after the first failure.
    :param journal: path of a JSONL run journal to append to, or ``None``.
    :param progress: attach a live terminal progress/ETA reporter.
    """

    def __init__(
        self,
        directory: "str | Path",
        jobs: "int | None" = None,
        timeout_s: "float | None" = None,
        retries: int = 2,
        backoff_s: float = 0.5,
        journal: "str | Path | None" = None,
        progress: bool = False,
        observers=(),
    ) -> None:
        self.campaign = Campaign(directory)
        self.observers = list(observers)
        self._journal: "RunJournal | None" = None
        if journal is not None:
            self._journal = RunJournal(journal)
            self.observers.append(self._journal)
        if progress:
            self.observers.append(ProgressReporter(jobs=jobs or 1))
        self.runner = ProcessPoolRunner(
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            observers=self.observers,
        )

    # -- cache bookkeeping ----------------------------------------------

    @property
    def hits(self) -> int:
        return self.campaign.hits

    @property
    def misses(self) -> int:
        return self.campaign.misses

    def _path(self, spec: TaskSpec) -> Path:
        # Spec classes own their cache-file naming (probe campaigns fold
        # extra identity fields into the digest); for plain TaskSpecs
        # this is byte-identical to Campaign.path_for.
        return self.campaign.directory / spec.cache_filename()

    @staticmethod
    def _result_type(spec: TaskSpec) -> type:
        return getattr(spec, "result_type", SimResult)

    def _emit(self, event: str, **fields) -> None:
        for observer in self.observers:
            observer(event, dict(fields))

    def _emit_telemetry(self, spec: TaskSpec, result, cached: bool) -> None:
        """Journal a per-task telemetry summary (digest + headline)."""
        from repro.telemetry.summary import headline_summary

        summary = headline_summary(result)
        if summary is None:
            return
        self._emit(
            "task_telemetry",
            task=spec.label,
            digest=spec.digest(),
            cached=cached,
            **summary,
        )

    # -- execution -------------------------------------------------------

    def run(self, specs, _fn=execute_task) -> "list[TaskOutcome]":
        """Execute every spec; outcomes are returned in spec order.

        Cached tasks never reach the pool. Failed tasks (retries
        exhausted, including worker crashes and timeouts) yield
        ``ok=False`` outcomes without aborting the rest of the campaign.
        """
        specs = list(specs)
        started = time.monotonic()
        self._emit(
            "campaign_start", total=len(specs), jobs=self.runner.jobs,
            directory=str(self.campaign.directory),
        )
        outcomes: "list[TaskOutcome | None]" = [None] * len(specs)
        misses: "list[tuple[int, TaskSpec]]" = []
        for index, spec in enumerate(specs):
            cached = self.campaign.load_cached(
                self._path(spec), self._result_type(spec)
            )
            if cached is not None:
                self.campaign.hits += 1
                outcomes[index] = TaskOutcome(
                    spec, cached, None, attempts=0, cached=True
                )
                self._emit(
                    "cache_hit", task=spec.label, digest=spec.digest(),
                    index=index,
                )
                self._emit_telemetry(spec, cached, cached=True)
            else:
                misses.append((index, spec))

        if misses:
            ran = self.runner.run([spec for _, spec in misses], _fn)
            for (index, spec), outcome in zip(misses, ran):
                outcomes[index] = outcome
                if outcome.ok:
                    expected = self._result_type(spec)
                    if not isinstance(outcome.result, expected):
                        raise ConfigError(
                            f"campaign tasks must produce "
                            f"{expected.__name__} values"
                        )
                    self.campaign.store(
                        self._path(spec), outcome.result, expected
                    )
                    self.campaign.misses += 1
                    self._emit_telemetry(spec, outcome.result, cached=False)

        done = sum(1 for o in outcomes if o is not None and o.ok)
        failed = len(specs) - done
        self._emit(
            "campaign_end", total=len(specs), done=done, failed=failed,
            cache_hits=self.hits, wall_s=round(time.monotonic() - started, 3),
        )
        return outcomes  # type: ignore[return-value]

    def run_forked(
        self,
        specs,
        warm_dir: "str | Path",
        prewarm_accesses: int = 200_000,
        _fn=execute_task,
    ) -> "list[TaskOutcome]":
        """Like :meth:`run`, but fork mechanism variants from warm images.

        Cache-miss specs are grouped by warm-compatibility key — the
        :func:`repro.snapshot.warmup_digest` of their config plus the
        trace identity (kind, workloads, seed). Each group's functional
        pre-warm runs **once** (serially, before the fan-out) and is
        persisted as a warm image in ``warm_dir``; every member then
        forks from that image instead of re-warming. A ``warm_fork``
        journal event records the image, the build wall-clock and the
        fork count. Groups of one spec with no pre-built image gain
        nothing from forking and run cold. Results are byte-identical to
        :meth:`run` either way.
        """
        import dataclasses

        from repro.snapshot.warm import build_warm_image, fork_groups

        specs = list(specs)
        warm_dir = Path(warm_dir)
        prepared: "list[TaskSpec]" = list(specs)
        miss_indices = [
            index for index, spec in enumerate(specs)
            if self.campaign.load_cached(
                self._path(spec), self._result_type(spec)
            ) is None
        ]  # cache hits are served by run(); no warm-up needed

        misses = [specs[i] for i in miss_indices]
        for group in fork_groups(misses, prewarm_accesses):
            image = warm_dir / group.filename
            members = [miss_indices[i] for i in group.indices]
            if not image.is_file() and len(members) < 2:
                continue  # nothing shared to amortize: run cold
            sample = specs[members[0]]
            warm_s = 0.0
            if not image.is_file():
                started = time.monotonic()
                build_warm_image(
                    image, sample.names, sample.config, seed=sample.seed,
                    kind=sample.kind, prewarm_accesses=prewarm_accesses,
                )
                warm_s = round(time.monotonic() - started, 3)
            self._emit(
                "warm_fork",
                warm_digest=group.warm_digest,
                image=str(image),
                forks=len(members),
                warm_s=warm_s,
                kind=sample.kind,
                workloads=list(sample.names),
                seed=sample.seed,
            )
            for index in members:
                prepared[index] = dataclasses.replace(
                    specs[index], warm_image=str(image)
                )
        return self.run(prepared, _fn)

    def results(self, specs, _fn=execute_task) -> "list[SimResult]":
        """Like :meth:`run`, but unwrap results and fail loudly.

        Raises :class:`ConfigError` listing every task that exhausted its
        retries; use :meth:`run` to handle partial completion yourself.
        """
        outcomes = self.run(specs, _fn)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            summary = "; ".join(
                f"{_spec_label(o.spec)}: {o.error}" for o in failures[:5]
            )
            raise ConfigError(
                f"{len(failures)} campaign task(s) failed after retries: "
                f"{summary}"
            )
        return [o.result for o in outcomes]

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "ParallelCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _spec_label(spec) -> str:
    return getattr(spec, "label", None) or repr(spec)
