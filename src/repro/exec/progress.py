"""Live progress and ETA reporting for campaign runs.

A :class:`ProgressReporter` is an engine observer: it consumes the same
``(event, fields)`` stream the journal records and keeps a one-line
status up to date on a terminal — tasks done/failed, cache hits, retries,
active workers and a wall-clock ETA extrapolated from the mean task
duration. It writes carriage-return-refreshed lines when attached to a
TTY and plain newline-terminated lines otherwise (CI logs).
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Render engine events as a live progress line with an ETA."""

    def __init__(
        self,
        total: int = 0,
        jobs: int = 1,
        stream=None,
        min_interval_s: float = 0.2,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.retries = 0
        self.active = 0
        self._durations: list[float] = []
        self._started = time.monotonic()
        self._last_render = 0.0
        self._line_open = False

    # -- observer protocol ---------------------------------------------

    def __call__(self, event: str, fields: dict) -> None:
        if event == "campaign_start":
            self.total = fields.get("total", self.total)
            self.jobs = max(1, fields.get("jobs", self.jobs))
            self._started = time.monotonic()
        elif event == "cache_hit":
            self.cache_hits += 1
        elif event == "task_start":
            self.active += 1
        elif event == "task_done":
            self.active = max(0, self.active - 1)
            self.done += 1
            duration = fields.get("duration_s")
            if duration is not None:
                self._durations.append(float(duration))
        elif event == "task_retry":
            self.active = max(0, self.active - 1)
            self.retries += 1
        elif event == "task_failed":
            self.active = max(0, self.active - 1)
            self.failed += 1
        self.render(final=(event == "campaign_end"))

    # -- rendering ------------------------------------------------------

    @property
    def completed(self) -> int:
        return self.done + self.failed + self.cache_hits

    def eta_s(self) -> "float | None":
        """Wall-clock estimate for the remaining tasks, if inferable."""
        remaining = self.total - self.completed
        if remaining <= 0 or not self._durations:
            return None
        mean = sum(self._durations) / len(self._durations)
        return remaining * mean / self.jobs

    def _format_line(self) -> str:
        parts = [
            f"[{self.completed}/{self.total}]",
            f"done={self.done}",
            f"failed={self.failed}",
            f"hits={self.cache_hits}",
        ]
        if self.retries:
            parts.append(f"retries={self.retries}")
        parts.append(f"workers={self.active}/{self.jobs}")
        if self._durations:
            mean = sum(self._durations) / len(self._durations)
            parts.append(f"avg={mean:.2f}s/task")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta={eta:.0f}s")
        return " ".join(parts)

    def render(self, final: bool = False) -> None:
        now = time.monotonic()
        if not final and now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        line = self._format_line()
        if final:
            wall = now - self._started
            line += f" wall={wall:.1f}s"
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write("\r\x1b[2K" + line)
            self._line_open = True
            if final:
                self.stream.write("\n")
                self._line_open = False
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
