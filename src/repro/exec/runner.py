"""Parallel, fault-tolerant task execution.

:class:`ProcessPoolRunner` fans :class:`~repro.exec.task.TaskSpec` work
out over ``multiprocessing`` workers — one process per task attempt, so a
worker that segfaults, calls ``os._exit`` or hangs past its deadline
takes down *only its own task*: the runner reaps the corpse, journals
what happened, applies bounded exponential-backoff retries, and keeps the
rest of the campaign flowing. With ``jobs=1`` everything runs in-process
(no subprocesses, trivially debuggable) and produces identical results:
tasks are pure functions of their spec, so scheduling cannot change
outputs, only wall-clock.

Observers (journal, progress reporter — any ``(event, fields)`` callable)
receive ``task_start`` / ``task_done`` / ``task_retry`` / ``task_failed``
events as they happen.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass

from repro.exec.task import execute_task

__all__ = ["ProcessPoolRunner", "TaskOutcome", "retry_backoff"]

#: Parent poll cadence while waiting on workers (seconds).
_POLL_INTERVAL_S = 0.02
#: Grace period for joining a worker that already reported (seconds).
_JOIN_GRACE_S = 5.0


@dataclass
class TaskOutcome:
    """What happened to one task across all of its attempts."""

    spec: object
    result: object = None
    error: "str | None" = None
    attempts: int = 1
    duration_s: float = 0.0        # wall-clock of the final attempt
    timed_out: bool = False
    crashed: bool = False
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _label(spec) -> str:
    return getattr(spec, "label", None) or repr(spec)


def _digest(spec) -> "str | None":
    digest = getattr(spec, "digest", None)
    return digest() if callable(digest) else None


def retry_backoff(spec, attempt: int, backoff_s: float) -> float:
    """Exponential backoff with decorrelated, *deterministic* jitter.

    The base schedule is ``backoff_s * 2**(attempt-1)``; the jitter
    multiplies it by a factor in ``[0.5, 1.0)`` derived by hashing the
    task's content digest together with the attempt number. Tasks retry
    on schedules that are decorrelated from one another — a batch of
    failures cannot stampede a shared store in lockstep — yet every
    journal records the exact same backoff for the same (task, attempt)
    on every run, so journals stay reproducible.
    """
    base = backoff_s * (2 ** (attempt - 1))
    key = _digest(spec) or _label(spec)
    draw = hashlib.blake2b(
        f"{key}:{attempt}".encode(), digest_size=8
    ).digest()
    fraction = int.from_bytes(draw, "big") / 2.0**64
    return base * (0.5 + 0.5 * fraction)


def _checkpoint_cycle(spec) -> "int | None":
    """Cycle of the spec's on-disk checkpoint, if a readable one exists.

    Used purely for observability (the ``task_resumed`` journal event);
    the actual resume decision lives in ``TaskSpec.run`` so it holds for
    any executor. Unreadable checkpoints report ``None`` — the run will
    discard them and start over.
    """
    path_fn = getattr(spec, "checkpoint_path", None)
    if not callable(path_fn):
        return None
    try:
        path = path_fn()
    except Exception:
        return None
    if path is None or not path.is_file():
        return None
    try:
        from repro.snapshot import read_header

        return read_header(path).get("cycle")
    except Exception:
        return None


def _worker_main(conn, fn, spec) -> None:
    """Child-process entry: run the task, ship the verdict, exit."""
    try:
        result = fn(spec)
    except BaseException as exc:
        message = ("error", f"{type(exc).__name__}: {exc}",
                   traceback.format_exc())
    else:
        message = ("ok", result, None)
    try:
        conn.send(message)
    except Exception:
        pass  # unpicklable result/exception: parent sees a silent death
    finally:
        conn.close()


@dataclass
class _Pending:
    index: int
    spec: object
    attempt: int
    not_before: float


@dataclass
class _Running:
    index: int
    spec: object
    attempt: int
    process: object
    conn: object
    started: float
    deadline: "float | None"


class ProcessPoolRunner:
    """Run tasks on a bounded worker pool with timeouts and retries.

    :param jobs: worker slots; ``1`` means serial in-process execution
        (no subprocesses — note per-task timeouts need worker processes
        and are not enforced serially). ``None`` uses the CPU count.
    :param timeout_s: per-attempt wall-clock budget; an overrunning
        worker is terminated and the attempt counts as a failure.
    :param retries: extra attempts after the first failure.
    :param backoff_s: base of the exponential retry backoff; the actual
        delay before attempt N+1 is :func:`retry_backoff` — the
        exponential schedule scaled by deterministic per-task jitter.
    :param observers: ``(event, fields)`` callables (journal, progress).
    """

    def __init__(
        self,
        jobs: "int | None" = None,
        timeout_s: "float | None" = None,
        retries: int = 2,
        backoff_s: float = 0.5,
        observers=(),
        start_method: "str | None" = None,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else os.cpu_count() or 1)
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.observers = list(observers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)

    # -- events ---------------------------------------------------------

    def _emit(self, event: str, **fields) -> None:
        for observer in self.observers:
            observer(event, dict(fields))

    def _task_fields(self, index: int, spec, attempt: int) -> dict:
        return {
            "task": _label(spec),
            "digest": _digest(spec),
            "index": index,
            "attempt": attempt,
        }

    # -- public entry ----------------------------------------------------

    def run(self, specs, fn=execute_task) -> "list[TaskOutcome]":
        """Execute every spec; outcomes are returned in spec order.

        A failed task (retries exhausted) yields an outcome with
        ``ok=False`` — it never aborts the remaining tasks.
        """
        specs = list(specs)
        if not specs:
            return []
        if self.jobs == 1:
            return [
                self._run_one_serial(i, spec, fn)
                for i, spec in enumerate(specs)
            ]
        return self._run_parallel(specs, fn)

    # -- serial path -----------------------------------------------------

    def _run_one_serial(self, index: int, spec, fn) -> TaskOutcome:
        max_attempts = self.retries + 1
        for attempt in range(1, max_attempts + 1):
            self._emit("task_start", **self._task_fields(index, spec, attempt))
            cycle = _checkpoint_cycle(spec)
            if cycle is not None:
                self._emit(
                    "task_resumed",
                    **self._task_fields(index, spec, attempt),
                    checkpoint_cycle=cycle,
                )
            started = time.monotonic()
            try:
                result = fn(spec)
            except Exception as exc:
                duration = time.monotonic() - started
                error = f"{type(exc).__name__}: {exc}"
                if attempt < max_attempts:
                    backoff = retry_backoff(spec, attempt, self.backoff_s)
                    self._emit(
                        "task_retry",
                        **self._task_fields(index, spec, attempt),
                        error=error, backoff_s=backoff,
                    )
                    time.sleep(backoff)
                    continue
                self._emit(
                    "task_failed",
                    **self._task_fields(index, spec, attempt),
                    error=error, duration_s=round(duration, 6),
                )
                return TaskOutcome(
                    spec, None, error, attempt, duration
                )
            duration = time.monotonic() - started
            self._emit(
                "task_done",
                **self._task_fields(index, spec, attempt),
                duration_s=round(duration, 6),
            )
            return TaskOutcome(spec, result, None, attempt, duration)
        raise AssertionError("unreachable")

    # -- parallel path ---------------------------------------------------

    def _run_parallel(self, specs, fn) -> "list[TaskOutcome]":
        outcomes: "list[TaskOutcome | None]" = [None] * len(specs)
        pending: "list[_Pending]" = [
            _Pending(i, spec, 1, 0.0) for i, spec in enumerate(specs)
        ]
        active: "list[_Running]" = []
        try:
            while pending or active:
                now = time.monotonic()
                progressed = self._launch_ready(pending, active, fn, now)
                progressed |= self._reap(pending, active, outcomes)
                if not progressed:
                    time.sleep(_POLL_INTERVAL_S)
        finally:
            for running in active:
                running.process.terminate()
                running.process.join(_JOIN_GRACE_S)
                running.conn.close()
        return outcomes  # type: ignore[return-value]

    def _launch_ready(self, pending, active, fn, now) -> bool:
        launched = False
        while len(active) < self.jobs:
            ready = next(
                (item for item in pending if item.not_before <= now), None
            )
            if ready is None:
                break
            pending.remove(ready)
            # Observe the checkpoint *before* the worker starts: the
            # worker consumes (and eventually deletes) it.
            cycle = _checkpoint_cycle(ready.spec)
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, fn, ready.spec),
                daemon=True,
            )
            process.start()
            child_conn.close()
            deadline = (
                now + self.timeout_s if self.timeout_s is not None else None
            )
            active.append(_Running(
                ready.index, ready.spec, ready.attempt, process,
                parent_conn, time.monotonic(), deadline,
            ))
            self._emit(
                "task_start",
                **self._task_fields(ready.index, ready.spec, ready.attempt),
                worker_pid=process.pid,
            )
            if cycle is not None:
                self._emit(
                    "task_resumed",
                    **self._task_fields(
                        ready.index, ready.spec, ready.attempt
                    ),
                    checkpoint_cycle=cycle,
                )
            launched = True
        return launched

    def _reap(self, pending, active, outcomes) -> bool:
        progressed = False
        for running in list(active):
            now = time.monotonic()
            message = self._poll_message(running)
            if message is not None:
                running.process.join(_JOIN_GRACE_S)
                self._retire(running, active)
                duration = now - running.started
                if message[0] == "ok":
                    self._succeed(running, message[1], duration, outcomes)
                else:
                    self._fail(
                        running, message[1], duration, pending, outcomes,
                        detail=message[2],
                    )
                progressed = True
            elif not running.process.is_alive():
                running.process.join(_JOIN_GRACE_S)
                # The message may have landed between the two checks.
                message = self._poll_message(running)
                self._retire(running, active)
                duration = now - running.started
                if message is not None and message[0] == "ok":
                    self._succeed(running, message[1], duration, outcomes)
                elif message is not None:
                    self._fail(
                        running, message[1], duration, pending, outcomes,
                        detail=message[2],
                    )
                else:
                    exitcode = running.process.exitcode
                    self._fail(
                        running,
                        f"worker died without reporting (exit code "
                        f"{exitcode})",
                        duration, pending, outcomes, crashed=True,
                    )
                progressed = True
            elif running.deadline is not None and now >= running.deadline:
                running.process.terminate()
                running.process.join(_JOIN_GRACE_S)
                if running.process.is_alive():
                    running.process.kill()
                    running.process.join(_JOIN_GRACE_S)
                self._retire(running, active)
                self._fail(
                    running,
                    f"timed out after {self.timeout_s:.1f}s",
                    now - running.started, pending, outcomes,
                    timed_out=True,
                )
                progressed = True
        return progressed

    @staticmethod
    def _poll_message(running):
        try:
            if running.conn.poll():
                return running.conn.recv()
        except (EOFError, OSError):
            pass
        return None

    @staticmethod
    def _retire(running, active) -> None:
        active.remove(running)
        try:
            running.conn.close()
        except OSError:
            pass

    def _succeed(self, running, result, duration, outcomes) -> None:
        self._emit(
            "task_done",
            **self._task_fields(running.index, running.spec, running.attempt),
            duration_s=round(duration, 6),
        )
        outcomes[running.index] = TaskOutcome(
            running.spec, result, None, running.attempt, duration
        )

    def _fail(
        self, running, error, duration, pending, outcomes,
        timed_out=False, crashed=False, detail=None,
    ) -> None:
        if running.attempt <= self.retries:
            backoff = retry_backoff(
                running.spec, running.attempt, self.backoff_s
            )
            self._emit(
                "task_retry",
                **self._task_fields(
                    running.index, running.spec, running.attempt
                ),
                error=error, backoff_s=backoff,
                timed_out=timed_out, crashed=crashed,
            )
            pending.append(_Pending(
                running.index, running.spec, running.attempt + 1,
                time.monotonic() + backoff,
            ))
            return
        self._emit(
            "task_failed",
            **self._task_fields(running.index, running.spec, running.attempt),
            error=error, duration_s=round(duration, 6),
            timed_out=timed_out, crashed=crashed, detail=detail,
        )
        outcomes[running.index] = TaskOutcome(
            running.spec, None, error, running.attempt, duration,
            timed_out=timed_out, crashed=crashed,
        )
