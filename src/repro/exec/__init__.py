"""Parallel, fault-tolerant experiment execution engine.

Every figure in the reproduction is a sweep of independent
(configuration, workload) simulations. This package turns such sweeps
into first-class campaigns:

* :class:`TaskSpec` — one deterministic simulation described by value,
  with a process-stable content digest (the cache key);
* :class:`ProcessPoolRunner` — bounded ``multiprocessing`` fan-out with
  per-task timeouts, bounded retries with exponential backoff, and crash
  isolation (a dying worker fails its task, not the campaign);
* :class:`RunJournal` / :class:`ProgressReporter` — an append-only JSONL
  event log and a live progress/ETA line, both fed by the same stream of
  engine events;
* :class:`ParallelCampaign` — the runner composed with the
  :class:`~repro.sim.campaign.Campaign` disk cache: hits are read back,
  only misses reach the pool, and results are byte-identical to a serial
  run.

Quickstart::

    from repro import SystemConfig
    from repro.exec import ParallelCampaign, TaskSpec

    tasks = [
        TaskSpec.workload(name, SystemConfig(mechanism=m))
        for name in ("libq", "mcf", "h264-dec")
        for m in ("baseline", "crow-cache")
    ]
    with ParallelCampaign("results/cache", jobs=4, progress=True) as pc:
        results = pc.results(tasks)
"""

from repro.exec.journal import RunJournal, read_journal
from repro.exec.parallel import ParallelCampaign
from repro.exec.progress import ProgressReporter
from repro.exec.runner import (
    ProcessPoolRunner,
    TaskOutcome,
    retry_backoff,
)
from repro.exec.task import TaskSpec, execute_task

__all__ = [
    "TaskSpec",
    "execute_task",
    "ProcessPoolRunner",
    "TaskOutcome",
    "retry_backoff",
    "ParallelCampaign",
    "RunJournal",
    "read_journal",
    "ProgressReporter",
]
