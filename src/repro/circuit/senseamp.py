"""Sense-amplifier development and charge-restoration dynamics.

Two phases of a DRAM activation are modelled:

1. **Development (sensing)** — the cross-coupled latch amplifies the
   charge-sharing perturbation ``delta_v`` to a full swing. The development
   time is inversely proportional to ``delta_v`` (first-order model of the
   pre-regeneration linear phase, where latch current is ``gm * delta_v``).
   This phase ends at the *ready-to-access* point, defining tRCD.

2. **Restoration** — the latch drives the bitline and all attached cell
   capacitors back to full rail. The exponential time constant grows with
   the attached capacitance ``C_bitline + N * C_cell``, which is why MRA
   *lengthens* restoration even as it shortens sensing (Figure 5b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.bitline import BitlineModel
from repro.circuit.constants import TechnologyParameters
from repro.errors import ConfigError

__all__ = ["SenseAmpModel"]


@dataclass(frozen=True)
class SenseAmpModel:
    """Analytical sense-amplifier timing for one subarray's row buffer."""

    tech: TechnologyParameters = TechnologyParameters()

    @property
    def bitline(self) -> BitlineModel:
        """Charge-sharing model using the same technology constants."""
        return BitlineModel(self.tech)

    def development_time_ns(self, delta_v: float) -> float:
        """Time for the latch to develop a readable swing from ``delta_v``."""
        if delta_v <= 0.0:
            raise ConfigError("delta_v must be positive for sensing")
        return self.tech.senseamp_gain_ns_v / delta_v

    def sensing_complete_ns(self, n_cells: int, cell_fraction: float = 1.0) -> float:
        """Wordline enable + charge sharing + development = tRCD.

        ``cell_fraction`` is the pre-activation charge of the cells; a
        partially-restored row senses more slowly because its perturbation
        is smaller (Table 1: -21% instead of -38% for ACT-t).
        """
        delta = self.bitline.delta_v(n_cells, cell_fraction)
        return self.tech.wordline_delay_ns + self.development_time_ns(delta)

    def restoration_tau_ns(self, n_cells: int) -> float:
        """Exponential restoration time constant with ``n_cells`` attached."""
        ratio = self.tech.capacitance_ratio
        return self.tech.restore_resistance_time_ns * (1.0 + n_cells * ratio)

    def restoration_time_ns(
        self,
        n_cells: int,
        target_fraction: float,
        start_fraction: float | None = None,
    ) -> float:
        """Time to drive the cells from ``start_fraction`` to ``target_fraction``.

        When ``start_fraction`` is None, restoration starts from the
        post-charge-sharing voltage of fully-charged cells. The exponential
        approach toward VDD gives ``t = tau * ln((VDD - V0) / (VDD - Vt))``.
        """
        tech = self.tech
        vdd = tech.vdd_volts
        if start_fraction is None:
            v_start = self.bitline.shared_voltage(n_cells, tech.full_restore_fraction)
        else:
            v_start = self.bitline.shared_voltage(n_cells, start_fraction)
        v_target = target_fraction * vdd
        if v_target >= vdd:
            raise ConfigError("target_fraction must be < 1.0 (asymptotic rail)")
        if v_target <= v_start:
            return 0.0
        tau = self.restoration_tau_ns(n_cells)
        return tau * math.log((vdd - v_start) / (vdd - v_target))

    def write_time_ns(self, n_cells: int, target_fraction: float) -> float:
        """Write-recovery time (tWR) when driving ``n_cells`` per bitline.

        A write flips the latch and restores the new value into the cells;
        the path is a fixed I/O + driver portion plus a dynamic portion that
        scales with the restoration RC and the restoration depth. The
        constants are anchored so a conventional single-cell full-restore
        write takes exactly ``tech.twr_ns``.
        """
        tech = self.tech
        if not 0.5 < target_fraction < 1.0:
            raise ConfigError("target_fraction must be in (0.5, 1.0)")
        depth = math.log(1.0 / (1.0 - target_fraction))
        depth_full = math.log(1.0 / (1.0 - tech.full_restore_fraction))
        tau_ratio = self.restoration_tau_ns(n_cells) / self.restoration_tau_ns(1)
        dynamic_full = tech.twr_ns - tech.write_fixed_ns
        return tech.write_fixed_ns + dynamic_full * tau_ratio * depth / depth_full
