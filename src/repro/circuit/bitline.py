"""Charge-sharing model of a DRAM bitline with *N* attached cells.

During activation, enabling a wordline connects a cell capacitor to the
precharged bitline (held at VDD/2) and the two share charge, perturbing the
bitline by a small voltage ``delta_v``. Multiple-row activation (MRA)
connects *N* cells holding the same data to the bitline at once, producing a
proportionally larger perturbation — the physical effect that lets ``ACT-t``
sense faster than a conventional ``ACT`` (paper Section 3.1, Figure 5a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.constants import TechnologyParameters
from repro.errors import ConfigError

__all__ = ["BitlineModel"]


@dataclass(frozen=True)
class BitlineModel:
    """Analytical charge-sharing behaviour of one bitline.

    Parameters
    ----------
    tech:
        Technology constants (capacitances, rails).
    """

    tech: TechnologyParameters = TechnologyParameters()

    def shared_voltage(self, n_cells: int, cell_fraction: float) -> float:
        """Bitline voltage after charge sharing with ``n_cells`` cells.

        ``cell_fraction`` is the per-cell stored voltage as a fraction of
        VDD (1.0 for a fully-restored '1'). All cells are assumed to hold
        the same data, as guaranteed by the CROW substrate.
        """
        self._check_cells(n_cells)
        tech = self.tech
        c_cell = tech.cell_capacitance_ff * n_cells
        c_bitline = tech.bitline_capacitance_ff
        v_precharge = tech.vdd_volts / 2.0
        v_cell = cell_fraction * tech.vdd_volts
        return (c_bitline * v_precharge + c_cell * v_cell) / (c_bitline + c_cell)

    def delta_v(self, n_cells: int, cell_fraction: float = 1.0) -> float:
        """Charge-sharing perturbation relative to the precharge level.

        Positive for a stored '1'; a stored '0' is symmetric, so callers
        work with the magnitude. Larger ``delta_v`` means faster sensing.
        """
        return self.shared_voltage(n_cells, cell_fraction) - self.tech.vdd_volts / 2.0

    def sensible(self, n_cells: int, cell_fraction: float) -> bool:
        """Whether the perturbation is large enough for reliable sensing."""
        return abs(self.delta_v(n_cells, cell_fraction)) >= self.tech.sense_threshold_v

    def minimum_cell_fraction(self, n_cells: int) -> float:
        """Smallest per-cell voltage fraction that still senses reliably.

        Inverts :meth:`delta_v` at the sense threshold. This is the charge
        floor below which data is lost — the quantity that bounds both
        partial restoration and retention time.
        """
        self._check_cells(n_cells)
        tech = self.tech
        c_cell = tech.cell_capacitance_ff * n_cells
        c_bitline = tech.bitline_capacitance_ff
        v_min = (
            tech.vdd_volts / 2.0
            + tech.sense_threshold_v * (c_bitline + c_cell) / c_cell
        )
        return v_min / tech.vdd_volts

    def retention_time_ms(self, n_cells: int, cell_fraction: float) -> float:
        """Worst-case retention of data stored in ``n_cells`` duplicate cells.

        Cell voltage decays exponentially toward ground with a leakage time
        constant calibrated so that a single fully-restored cell retains
        data for exactly ``tech.retention_base_ms`` (the standard refresh
        window with margin). Storing the same bit in more cells, or with
        more charge, extends retention — the effect CROW-cache relies on to
        terminate restoration early (paper Section 4.1.3).
        """
        import math

        tech = self.tech
        v_floor_single = self.minimum_cell_fraction(1) * tech.vdd_volts
        leak_tau_ms = tech.retention_base_ms / math.log(
            tech.full_restore_fraction * tech.vdd_volts / v_floor_single
        )
        v_start = cell_fraction * tech.vdd_volts
        v_floor = self.minimum_cell_fraction(n_cells) * tech.vdd_volts
        if v_start <= v_floor:
            return 0.0
        return leak_tau_ms * math.log(v_start / v_floor)

    @staticmethod
    def _check_cells(n_cells: int) -> None:
        if n_cells < 1:
            raise ConfigError(f"n_cells must be >= 1, got {n_cells}")
