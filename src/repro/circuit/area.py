"""Row-decoder and DRAM-chip area models (Figure 7 right, Figure 11b).

Calibrated to the area points the paper reports from its CACTI/layout
evaluation:

* a conventional 512-row local row decoder occupies 200.9 µm²,
* the extra copy-row decoder for 8 copy rows occupies 9.6 µm²
  (4.8% decoder overhead, 0.48% of the whole DRAM chip),
* TL-DRAM-8 costs 6.9% of chip area (per-bitline isolation transistors),
* SALP-256 costs 28.9% and SALP-512 84.5% (additional sense-amp stripes),
  while SALP-128 costs 0.6% (subarray-select logic only).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["DecoderAreaModel"]


@dataclass(frozen=True)
class DecoderAreaModel:
    """Area model for row decoders and in-DRAM-cache chip overheads.

    Attributes
    ----------
    fixed_area_um2:
        Predecode/enable logic cost of instantiating a decoder at all.
    per_row_area_um2:
        Wordline-driver cost per decoded row.
    decoder_chip_fraction:
        Fraction of total DRAM chip area occupied by row-decoder logic;
        converts decoder overhead into chip overhead.
    baseline_rows_per_subarray:
        Rows driven by the conventional local row decoder.
    """

    fixed_area_um2: float = 6.56
    per_row_area_um2: float = 0.3796
    decoder_chip_fraction: float = 0.10
    baseline_rows_per_subarray: int = 512
    #: Chip-area share of one full set of sense-amplifier stripes; SALP
    #: configurations that shrink subarrays add whole extra stripe sets.
    senseamp_stripe_share: float = 0.283
    #: Chip overhead of SALP's subarray-select logic alone.
    salp_logic_overhead: float = 0.006
    #: Chip overhead of TL-DRAM's per-bitline isolation transistors plus
    #: near-segment decode (calibrated to TL-DRAM-8 = 6.9%).
    tldram_base_overhead: float = 0.067
    tldram_per_near_row: float = 0.00025

    def decoder_area_um2(self, rows: int) -> float:
        """Area of a row decoder driving ``rows`` wordlines."""
        if rows < 1:
            raise ConfigError(f"rows must be >= 1, got {rows}")
        return self.fixed_area_um2 + self.per_row_area_um2 * rows

    def copy_decoder_overhead(self, copy_rows: int) -> float:
        """Figure 7 (right): copy-row decoder area over the local decoder."""
        baseline = self.decoder_area_um2(self.baseline_rows_per_subarray)
        return self.decoder_area_um2(copy_rows) / baseline

    def crow_chip_overhead(self, copy_rows: int) -> float:
        """DRAM chip area overhead of the CROW substrate.

        0.48% for the default eight copy rows per subarray.
        """
        return self.copy_decoder_overhead(copy_rows) * self.decoder_chip_fraction

    def crow_capacity_overhead(
        self, copy_rows: int, regular_rows: int | None = None
    ) -> float:
        """Fraction of DRAM storage reserved for copy rows (1.6% at 8/512)."""
        regular = (
            self.baseline_rows_per_subarray if regular_rows is None else regular_rows
        )
        if copy_rows < 0:
            raise ConfigError(
                f"copy_rows must be >= 0, got {copy_rows}"
            )
        if regular < 1:
            raise ConfigError(
                f"regular_rows must be >= 1, got {regular} "
                "(a subarray with no regular rows has no capacity to "
                "reserve copy rows from)"
            )
        return copy_rows / (regular + copy_rows)

    def tldram_chip_overhead(self, near_rows: int) -> float:
        """Chip overhead of TL-DRAM with a ``near_rows``-row near segment."""
        if near_rows < 1:
            raise ConfigError(f"near_rows must be >= 1, got {near_rows}")
        return self.tldram_base_overhead + self.tldram_per_near_row * near_rows

    def salp_chip_overhead(self, subarrays_per_bank: int) -> float:
        """Chip overhead of SALP with ``subarrays_per_bank`` subarrays.

        The baseline organization has 128 subarrays per bank; increasing
        the subarray count (to raise in-DRAM cache capacity) adds whole
        sense-amplifier stripe sets, which dominate the cost.
        """
        if subarrays_per_bank < 1:
            raise ConfigError(
                f"subarrays_per_bank must be >= 1, got {subarrays_per_bank}"
            )
        if not _is_power_of_two(subarrays_per_bank):
            raise ConfigError(
                f"subarrays_per_bank must be a power of two, got "
                f"{subarrays_per_bank} (subarray-select decode is binary)"
            )
        baseline = 128
        if subarrays_per_bank <= baseline:
            return self.salp_logic_overhead
        extra_stripes = subarrays_per_bank / baseline - 1.0
        return self.salp_logic_overhead + self.senseamp_stripe_share * extra_stripes


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0
