"""Circuit-level DRAM model (SPICE substitute).

The paper derives the timing parameters of the new ``ACT-t`` and ``ACT-c``
commands (Table 1, Figures 5 and 6) and the power/area overheads of
multiple-row activation (Figure 7) from SPICE simulations of a 22 nm DRAM
cell array with Monte-Carlo process variation. This package replaces SPICE
with an analytical RC model of the bitline/cell/sense-amplifier system:

* :mod:`repro.circuit.bitline` — charge sharing with *N* cells per bitline,
* :mod:`repro.circuit.senseamp` — sense-amplifier development and charge
  restoration dynamics,
* :mod:`repro.circuit.mra` — multiple-row-activation timing derivation,
  including the tRCD/tRAS trade-off frontier of Figure 6,
* :mod:`repro.circuit.montecarlo` — process-variation worst-case extraction,
* :mod:`repro.circuit.power` / :mod:`repro.circuit.area` — activation power
  and row-decoder area models.

The model is calibrated against the operating points the paper publishes
(e.g. a 38% tRCD reduction for two-row activation); see
:class:`repro.circuit.constants.TechnologyParameters`.
"""

from repro.circuit.constants import TechnologyParameters
from repro.circuit.bitline import BitlineModel
from repro.circuit.senseamp import SenseAmpModel
from repro.circuit.mra import (
    CrowTimingFactors,
    MraTimings,
    MraModel,
    TradeoffPoint,
    derive_crow_timing_factors,
)
from repro.circuit.montecarlo import MonteCarloAnalyzer, MonteCarloResult
from repro.circuit.power import activation_power_overhead
from repro.circuit.area import DecoderAreaModel

__all__ = [
    "TechnologyParameters",
    "BitlineModel",
    "SenseAmpModel",
    "CrowTimingFactors",
    "MraTimings",
    "MraModel",
    "TradeoffPoint",
    "derive_crow_timing_factors",
    "MonteCarloAnalyzer",
    "MonteCarloResult",
    "activation_power_overhead",
    "DecoderAreaModel",
]
