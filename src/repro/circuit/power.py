"""Activation power overhead of multiple-row activation (Figure 7, left).

Simultaneously activating N rows drives N wordlines and restores N cell
capacitors per bitline, but because all cells hold the same data the
restored *charge* largely overlaps; the paper's circuit simulations find a
5.8% activation-power overhead for two rows, dominated by the extra copy-row
decoder, growing roughly linearly with additional rows.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["activation_power_overhead", "TWO_ROW_OVERHEAD"]

#: Measured two-row activation power overhead from the paper (Section 6.2).
TWO_ROW_OVERHEAD = 0.058


def activation_power_overhead(
    n_rows: int, per_row_overhead: float = TWO_ROW_OVERHEAD
) -> float:
    """Activation power of ``n_rows``-row MRA relative to a single ACT.

    Returns a multiplier (1.0 for conventional activation, 1.058 for the
    two-row ``ACT-t`` / ``ACT-c`` commands with the default calibration).
    """
    if n_rows < 1:
        raise ConfigError(f"n_rows must be >= 1, got {n_rows}")
    if per_row_overhead < 0.0:
        raise ConfigError("per_row_overhead must be non-negative")
    return 1.0 + per_row_overhead * (n_rows - 1)
