"""Technology constants for the analytical circuit model.

The values model a 22 nm DRAM process, obtained (as in the paper) by scaling
a 55 nm reference technology. Absolute component values are representative
rather than foundry-exact; the model is *calibrated* so that its derived
timing deltas reproduce the paper's published SPICE operating points:

* two-row activation of fully-restored rows reduces tRCD by 38%,
* two-row activation increases full-restoration time such that tRAS changes
  by only -7% (the tRCD reduction outweighs the restoration increase),
* ``ACT-c`` (connecting the copy row after sensing) increases tRAS by 18%.

Baseline LPDDR4 timing anchors come from Table 2 of the paper:
tRCD = 18 ns, tRAS = 42 ns, tWR = 18 ns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["TechnologyParameters"]


@dataclass(frozen=True)
class TechnologyParameters:
    """Electrical and timing constants of the modelled DRAM process.

    Attributes
    ----------
    vdd_volts:
        Core array voltage (LPDDR4 uses a 1.1 V core rail).
    cell_capacitance_ff:
        Storage-cell capacitance in femtofarads.
    bitline_capacitance_ff:
        Parasitic bitline capacitance in femtofarads. The ratio
        ``cell/bitline`` (~0.22 here) controls the charge-sharing voltage
        swing, the quantity that two-row activation improves.
    wordline_delay_ns:
        Fixed wordline-enable plus charge-equalisation delay that precedes
        sensing and does not scale with the number of activated rows.
    senseamp_gain_ns_v:
        Sense-amplifier development constant: the time for the latch to
        develop a full swing is ``senseamp_gain_ns_v / delta_v`` where
        ``delta_v`` is the charge-sharing perturbation in volts.
    restore_resistance_time_ns:
        ``R_sa * C_bitline`` product governing the exponential charge
        restoration of the bitline plus attached cells.
    full_restore_fraction:
        Cell-voltage fraction of VDD considered "fully restored".
    ready_to_access_fraction:
        Bitline swing fraction at which read/write commands may proceed
        (defines the end of tRCD).
    copy_row_connect_penalty_ns:
        Extra settling time when ``ACT-c`` connects the copy-row wordline
        in the middle of restoration (wordline rise + re-equalisation).
    retention_base_ms:
        Data-retention time of a single fully-restored cell at worst-case
        temperature; the standard refresh window (64 ms) with margin.
    sense_threshold_v:
        Minimum charge-sharing swing the sense amplifier can resolve
        reliably; retention expires when the achievable swing of a decayed
        cell falls below this threshold.
    """

    vdd_volts: float = 1.1
    cell_capacitance_ff: float = 22.0
    bitline_capacitance_ff: float = 100.0
    wordline_delay_ns: float = 1.5
    senseamp_gain_ns_v: float = 1.634
    restore_resistance_time_ns: float = 6.56
    full_restore_fraction: float = 0.975
    ready_to_access_fraction: float = 0.90
    copy_row_connect_penalty_ns: float = 4.8
    retention_base_ms: float = 64.0
    sense_threshold_v: float = 0.04
    # Baseline LPDDR4 timing anchors (paper Table 2), in nanoseconds.
    trcd_ns: float = 18.0
    tras_ns: float = 42.0
    twr_ns: float = 18.0
    # Fixed (I/O + driver turn-on) portion of the write-recovery path; the
    # remaining ``twr_ns - write_fixed_ns`` scales with the restoration RC.
    write_fixed_ns: float = 4.0

    def __post_init__(self) -> None:
        positive_fields = (
            "vdd_volts",
            "cell_capacitance_ff",
            "bitline_capacitance_ff",
            "senseamp_gain_ns_v",
            "restore_resistance_time_ns",
            "trcd_ns",
            "tras_ns",
            "twr_ns",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0.0:
                raise ConfigError(f"{name} must be positive")
        for name in ("full_restore_fraction", "ready_to_access_fraction"):
            value = getattr(self, name)
            if not 0.5 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0.5, 1.0], got {value}")
        if self.wordline_delay_ns < 0.0:
            raise ConfigError("wordline_delay_ns must be non-negative")

    @property
    def capacitance_ratio(self) -> float:
        """Cell-to-bitline capacitance ratio ``Cc / Cb``."""
        return self.cell_capacitance_ff / self.bitline_capacitance_ff

    def scaled(self, factor: float) -> "TechnologyParameters":
        """Return a copy with all analog constants scaled by ``factor``.

        Used by the Monte-Carlo analyzer to model process variation.
        """
        return TechnologyParameters(
            vdd_volts=self.vdd_volts,
            cell_capacitance_ff=self.cell_capacitance_ff * factor,
            bitline_capacitance_ff=self.bitline_capacitance_ff,
            wordline_delay_ns=self.wordline_delay_ns,
            senseamp_gain_ns_v=self.senseamp_gain_ns_v,
            restore_resistance_time_ns=self.restore_resistance_time_ns,
            full_restore_fraction=self.full_restore_fraction,
            ready_to_access_fraction=self.ready_to_access_fraction,
            copy_row_connect_penalty_ns=self.copy_row_connect_penalty_ns,
            retention_base_ms=self.retention_base_ms,
            sense_threshold_v=self.sense_threshold_v,
            trcd_ns=self.trcd_ns,
            tras_ns=self.tras_ns,
            twr_ns=self.twr_ns,
            write_fixed_ns=self.write_fixed_ns,
        )
