"""Multiple-row activation (MRA) timing derivation.

This module turns the bitline/sense-amp physics into the quantities the
paper publishes:

* change in tRCD with the number of simultaneously-activated rows
  (Figure 5a: -38% for two rows),
* change in tRAS / restoration / tWR with the number of rows (Figure 5b),
* the tRCD-vs-tRAS trade-off frontier from terminating restoration early
  (Figure 6),
* the per-command timing factor set of Table 1, consumed by the
  architecture-level simulator (:func:`derive_crow_timing_factors`).

The simulator defaults to the paper's published Table 1 factors
(:meth:`CrowTimingFactors.paper`) so that architecture results are anchored
to the paper; the derived factors demonstrate that the analytical model
lands on the same operating points (see ``tests/circuit/test_mra.py`` and
``benchmarks/bench_table1_command_timings.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.bitline import BitlineModel
from repro.circuit.constants import TechnologyParameters
from repro.circuit.senseamp import SenseAmpModel
from repro.errors import ConfigError

__all__ = [
    "MraTimings",
    "TradeoffPoint",
    "CrowTimingFactors",
    "MraModel",
    "derive_crow_timing_factors",
]


@dataclass(frozen=True)
class MraTimings:
    """Absolute activation timings, in nanoseconds."""

    trcd_ns: float
    tras_ns: float
    twr_ns: float

    def normalized(self, baseline: "MraTimings") -> "MraTimings":
        """Return timings as multipliers of ``baseline``."""
        return MraTimings(
            trcd_ns=self.trcd_ns / baseline.trcd_ns,
            tras_ns=self.tras_ns / baseline.tras_ns,
            twr_ns=self.twr_ns / baseline.twr_ns,
        )


@dataclass(frozen=True)
class TradeoffPoint:
    """One point on the Figure 6 tRCD-vs-tRAS trade-off frontier."""

    restore_fraction: float
    tras_factor: float
    next_trcd_factor: float
    retention_ms: float


@dataclass(frozen=True)
class CrowTimingFactors:
    """Timing multipliers for the CROW commands, relative to baseline.

    Field names follow Table 1 of the paper. ``*_early`` variants apply
    when the memory controller terminates charge restoration early
    (partial restoration, Section 4.1.3); the non-early variants apply
    when the row pair is left open long enough to fully restore.
    """

    act_t_full_trcd: float = 0.62
    act_t_partial_trcd: float = 0.79
    act_t_tras_full: float = 0.93
    act_t_tras_early: float = 0.67
    act_t_partial_tras_early: float = 0.75
    act_c_trcd: float = 1.00
    act_c_tras_full: float = 1.18
    act_c_tras_early: float = 0.93
    twr_full: float = 1.14
    twr_early: float = 0.87

    @classmethod
    def paper(cls) -> "CrowTimingFactors":
        """The exact factors published in Table 1 of the paper."""
        return cls()

    def validate(self) -> None:
        """Sanity-check physical plausibility of the factor set."""
        if not 0.0 < self.act_t_full_trcd <= 1.0:
            raise ConfigError("ACT-t tRCD factor must be in (0, 1]")
        if self.act_t_partial_trcd < self.act_t_full_trcd:
            raise ConfigError(
                "partially-restored rows cannot activate faster than "
                "fully-restored rows"
            )
        if self.act_t_tras_early > self.act_t_tras_full:
            raise ConfigError("early restoration termination must shorten tRAS")
        if self.act_c_tras_full <= 1.0:
            raise ConfigError("ACT-c must lengthen full restoration (two cells)")


class MraModel:
    """Derives activation/restoration/write timings for MRA operations."""

    def __init__(self, tech: TechnologyParameters | None = None) -> None:
        self.tech = tech if tech is not None else TechnologyParameters()
        self.senseamp = SenseAmpModel(self.tech)
        self.bitline = BitlineModel(self.tech)

    # ------------------------------------------------------------------
    # Absolute timings
    # ------------------------------------------------------------------
    def baseline(self) -> MraTimings:
        """Conventional single-row activation timings from the model."""
        return self.activate(n_rows=1)

    def activate(
        self,
        n_rows: int,
        start_fraction: float | None = None,
        restore_fraction: float | None = None,
    ) -> MraTimings:
        """Timings for simultaneously activating ``n_rows`` duplicate rows.

        Parameters
        ----------
        n_rows:
            Number of rows (cells per bitline) activated together.
        start_fraction:
            Pre-activation cell charge as a fraction of VDD; defaults to
            fully restored. Partially-restored rows sense more slowly.
        restore_fraction:
            Target charge at which restoration is terminated; defaults to
            fully restored. Lower targets shorten tRAS and tWR at the cost
            of slower future sensing and shorter retention.
        """
        tech = self.tech
        start = tech.full_restore_fraction if start_fraction is None else start_fraction
        target = tech.full_restore_fraction if restore_fraction is None else restore_fraction
        trcd = self.senseamp.sensing_complete_ns(n_rows, start)
        restore = self.senseamp.restoration_time_ns(
            n_rows, target_fraction=target, start_fraction=start
        )
        twr = self.senseamp.write_time_ns(n_rows, target)
        return MraTimings(trcd_ns=trcd, tras_ns=trcd + restore, twr_ns=twr)

    def activate_and_copy(
        self,
        restore_fraction: float | None = None,
    ) -> MraTimings:
        """Timings for ``ACT-c``: sense one row, restore into two rows.

        Sensing proceeds on the source row alone (tRCD is unchanged); the
        copy-row wordline is enabled after sensing, adding a connect/settle
        penalty and doubling the restored capacitance (paper Section 5.2).
        """
        tech = self.tech
        target = tech.full_restore_fraction if restore_fraction is None else restore_fraction
        trcd = self.senseamp.sensing_complete_ns(1, tech.full_restore_fraction)
        restore = self.senseamp.restoration_time_ns(
            2, target_fraction=target, start_fraction=tech.full_restore_fraction
        )
        restore += tech.copy_row_connect_penalty_ns
        twr = self.senseamp.write_time_ns(2, target)
        return MraTimings(trcd_ns=trcd, tras_ns=trcd + restore, twr_ns=twr)

    # ------------------------------------------------------------------
    # Figure 5: latency change vs. number of rows
    # ------------------------------------------------------------------
    def trcd_factor(self, n_rows: int) -> float:
        """Figure 5a: normalized tRCD for ``n_rows``-row activation."""
        return (
            self.senseamp.sensing_complete_ns(n_rows)
            / self.senseamp.sensing_complete_ns(1)
        )

    def restoration_factor(self, n_rows: int) -> float:
        """Figure 5b: normalized full-restoration time for ``n_rows`` rows."""
        full = self.tech.full_restore_fraction
        return self.senseamp.restoration_time_ns(
            n_rows, full
        ) / self.senseamp.restoration_time_ns(1, full)

    def tras_factor(self, n_rows: int) -> float:
        """Figure 5b: normalized tRAS (sensing + full restoration)."""
        base = self.baseline()
        return self.activate(n_rows).tras_ns / base.tras_ns

    def twr_factor(self, n_rows: int) -> float:
        """Figure 5b: normalized tWR for ``n_rows``-row writes."""
        full = self.tech.full_restore_fraction
        return self.senseamp.write_time_ns(n_rows, full) / self.tech.twr_ns

    # ------------------------------------------------------------------
    # Figure 6: tRCD vs tRAS trade-off from early restoration termination
    # ------------------------------------------------------------------
    def min_restore_fraction(
        self, n_rows: int, retention_ms: float | None = None
    ) -> float:
        """Smallest restore target that still meets the retention window.

        Solves ``retention_time(n_rows, f) >= retention_ms`` for ``f``.
        """
        target_ms = self.tech.retention_base_ms if retention_ms is None else retention_ms
        floor = self.bitline.minimum_cell_fraction(n_rows)
        v_floor_single = self.bitline.minimum_cell_fraction(1) * self.tech.vdd_volts
        leak_tau_ms = self.tech.retention_base_ms / math.log(
            self.tech.full_restore_fraction * self.tech.vdd_volts / v_floor_single
        )
        fraction = floor * math.exp(target_ms / leak_tau_ms)
        if fraction >= self.tech.full_restore_fraction:
            raise ConfigError(
                f"{n_rows}-row activation cannot meet {target_ms} ms retention "
                "even with full restoration"
            )
        return fraction

    def tradeoff_frontier(
        self,
        n_rows: int,
        n_points: int = 16,
        retention_margin: float = 1.0,
    ) -> list[TradeoffPoint]:
        """Figure 6: achievable (tRAS, next-activation tRCD) pairs.

        Sweeps the restoration-termination target from the retention-safe
        minimum up to full restoration. Each point reports the normalized
        tRAS of the *current* activation and the normalized tRCD of the
        *next* activation of the same (now partially-restored) rows.
        """
        if n_points < 2:
            raise ConfigError("n_points must be >= 2")
        base = self.baseline()
        f_min = self.min_restore_fraction(
            n_rows, self.tech.retention_base_ms * retention_margin
        )
        f_max = self.tech.full_restore_fraction
        points = []
        for i in range(n_points):
            fraction = f_min + (f_max - f_min) * i / (n_points - 1)
            timings = self.activate(n_rows, restore_fraction=fraction)
            next_trcd = self.senseamp.sensing_complete_ns(n_rows, fraction)
            points.append(
                TradeoffPoint(
                    restore_fraction=fraction,
                    tras_factor=timings.tras_ns / base.tras_ns,
                    next_trcd_factor=next_trcd / base.trcd_ns,
                    retention_ms=self.bitline.retention_time_ms(n_rows, fraction),
                )
            )
        return points


def derive_crow_timing_factors(
    tech: TechnologyParameters | None = None,
    retention_margin: float = 1.25,
) -> CrowTimingFactors:
    """Derive the Table 1 factor set from the analytical circuit model.

    ``retention_margin`` sets how much retention headroom (relative to the
    refresh window) the early-termination target must keep; the paper's
    chosen operating point corresponds to a modest margin above the bare
    minimum. The returned factors land within a few percent of the
    published Table 1 values (asserted by the test suite).
    """
    model = MraModel(tech)
    base = model.baseline()
    full = model.tech.full_restore_fraction

    partial = model.min_restore_fraction(
        2, model.tech.retention_base_ms * retention_margin
    )

    act_t_full = model.activate(2)
    act_t_early = model.activate(2, restore_fraction=partial)
    act_t_from_partial_full = model.activate(2, start_fraction=partial)
    act_t_from_partial_early = model.activate(
        2, start_fraction=partial, restore_fraction=partial
    )
    act_c_full = model.activate_and_copy()
    act_c_early = model.activate_and_copy(restore_fraction=partial)

    factors = CrowTimingFactors(
        act_t_full_trcd=act_t_full.trcd_ns / base.trcd_ns,
        act_t_partial_trcd=act_t_from_partial_full.trcd_ns / base.trcd_ns,
        act_t_tras_full=act_t_full.tras_ns / base.tras_ns,
        act_t_tras_early=act_t_early.tras_ns / base.tras_ns,
        act_t_partial_tras_early=act_t_from_partial_early.tras_ns / base.tras_ns,
        act_c_trcd=act_c_full.trcd_ns / base.trcd_ns,
        act_c_tras_full=act_c_full.tras_ns / base.tras_ns,
        act_c_tras_early=act_c_early.tras_ns / base.tras_ns,
        twr_full=model.senseamp.write_time_ns(2, full) / model.tech.twr_ns,
        twr_early=model.senseamp.write_time_ns(2, partial) / model.tech.twr_ns,
    )
    factors.validate()
    return factors
