"""Monte-Carlo process-variation analysis of the circuit model.

The paper runs 10^4 SPICE Monte-Carlo iterations with a 5% margin on every
circuit parameter and derives the new command timings from the iteration
with the highest latency. This module reproduces that methodology on the
analytical model: each iteration perturbs the electrical constants, and the
analyzer reports per-quantity distributions and the worst case.

Because the *baseline* datasheet timings already include the worst-case
guard band, the architecturally-relevant outputs are the worst-case
*ratios* (e.g. worst tRCD of two-row activation over worst tRCD of
single-row activation), which is how :meth:`MonteCarloAnalyzer.worst_case_factors`
reports them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.constants import TechnologyParameters
from repro.circuit.mra import CrowTimingFactors, MraModel
from repro.errors import ConfigError

__all__ = ["MonteCarloResult", "MonteCarloAnalyzer"]


@dataclass(frozen=True)
class MonteCarloResult:
    """Distribution summary of one timing quantity across iterations."""

    name: str
    mean_ns: float
    std_ns: float
    worst_ns: float
    best_ns: float

    @property
    def spread(self) -> float:
        """Worst-to-mean ratio; how much margin variation demands."""
        return self.worst_ns / self.mean_ns


class MonteCarloAnalyzer:
    """Runs perturbed-model iterations and extracts worst-case timings."""

    #: Electrical parameters perturbed per iteration (field names on
    #: :class:`TechnologyParameters`).
    PERTURBED_FIELDS = (
        "cell_capacitance_ff",
        "bitline_capacitance_ff",
        "senseamp_gain_ns_v",
        "restore_resistance_time_ns",
        "wordline_delay_ns",
    )

    def __init__(
        self,
        tech: TechnologyParameters | None = None,
        margin: float = 0.05,
        iterations: int = 10_000,
        seed: int = 2019,
    ) -> None:
        if not 0.0 <= margin < 0.5:
            raise ConfigError(f"margin must be in [0, 0.5), got {margin}")
        if iterations < 1:
            raise ConfigError("iterations must be >= 1")
        self.tech = tech if tech is not None else TechnologyParameters()
        self.margin = margin
        self.iterations = iterations
        self._rng = np.random.default_rng(seed)

    def _perturbed_tech(self) -> TechnologyParameters:
        """One iteration's technology constants, each within ±margin."""
        values = {}
        for name in self.PERTURBED_FIELDS:
            nominal = getattr(self.tech, name)
            factor = 1.0 + self._rng.uniform(-self.margin, self.margin)
            values[name] = nominal * factor
        base = {
            field: getattr(self.tech, field)
            for field in (
                "vdd_volts",
                "full_restore_fraction",
                "ready_to_access_fraction",
                "copy_row_connect_penalty_ns",
                "retention_base_ms",
                "sense_threshold_v",
                "trcd_ns",
                "tras_ns",
                "twr_ns",
                "write_fixed_ns",
            )
        }
        return TechnologyParameters(**base, **values)

    def analyze(self, n_rows: int = 2) -> dict[str, MonteCarloResult]:
        """Distributions of tRCD/tRAS/tWR for ``n_rows``-row activation."""
        samples: dict[str, list[float]] = {"trcd": [], "tras": [], "twr": []}
        for _ in range(self.iterations):
            model = MraModel(self._perturbed_tech())
            timings = model.activate(n_rows)
            samples["trcd"].append(timings.trcd_ns)
            samples["tras"].append(timings.tras_ns)
            samples["twr"].append(timings.twr_ns)
        results = {}
        for name, data in samples.items():
            arr = np.asarray(data)
            results[name] = MonteCarloResult(
                name=name,
                mean_ns=float(arr.mean()),
                std_ns=float(arr.std()),
                worst_ns=float(arr.max()),
                best_ns=float(arr.min()),
            )
        return results

    def worst_case_factors(self) -> CrowTimingFactors:
        """Table 1 factors from worst-case-over-iterations timings.

        For each iteration the full factor set is derived; the reported
        set takes the *most conservative* (safest) value of each factor,
        mirroring the paper's use of the highest-latency iteration.
        """
        worst: dict[str, float] = {}
        for _ in range(self.iterations):
            model = MraModel(self._perturbed_tech())
            base = model.baseline()
            act_t = model.activate(2)
            act_c = model.activate_and_copy()
            iteration = {
                "act_t_full_trcd": act_t.trcd_ns / base.trcd_ns,
                "act_t_tras_full": act_t.tras_ns / base.tras_ns,
                "act_c_trcd": act_c.trcd_ns / base.trcd_ns,
                "act_c_tras_full": act_c.tras_ns / base.tras_ns,
                "twr_full": act_t.twr_ns / base.twr_ns,
            }
            for key, value in iteration.items():
                worst[key] = max(worst.get(key, 0.0), value)
        nominal = CrowTimingFactors.paper()
        return CrowTimingFactors(
            act_t_full_trcd=worst["act_t_full_trcd"],
            act_t_partial_trcd=max(
                nominal.act_t_partial_trcd, worst["act_t_full_trcd"]
            ),
            act_t_tras_full=worst["act_t_tras_full"],
            act_t_tras_early=nominal.act_t_tras_early,
            act_t_partial_tras_early=nominal.act_t_partial_tras_early,
            act_c_trcd=worst["act_c_trcd"],
            act_c_tras_full=worst["act_c_tras_full"],
            act_c_tras_early=nominal.act_c_tras_early,
            twr_full=worst["twr_full"],
            twr_early=nominal.twr_early,
        )
