"""Command-stream validation: record, persist, and replay DRAM commands.

A mechanism author's main hazard is emitting a command stream that a real
DRAM device would corrupt silently — this package makes those bugs loud:

* :class:`~repro.validation.recorder.CommandRecorder` attaches to a
  :class:`~repro.dram.device.DramChannel` and logs every issued command,
* :func:`~repro.validation.replay.replay` re-executes a recorded stream
  against a *fresh* device with the functional cell array armed and every
  regular row seeded live, so timing violations, protocol errors, unsafe
  partial-restore activations, and ``ACT-t`` on non-duplicate rows are all
  caught and reported with their position in the stream.
"""

from repro.validation.recorder import CommandRecorder, RecordedCommand
from repro.validation.replay import ReplayReport, Violation, replay

__all__ = [
    "CommandRecorder",
    "RecordedCommand",
    "ReplayReport",
    "Violation",
    "replay",
]
