"""Recording issued DRAM commands to memory or JSONL files."""

from __future__ import annotations

import json
from pathlib import Path
from typing import NamedTuple

from repro.dram.commands import ActTimings, Command, CommandKind, RowId, RowKind
from repro.errors import ConfigError

__all__ = ["RecordedCommand", "CommandRecorder"]


class RecordedCommand(NamedTuple):
    """One issued command with its issue cycle."""
    cycle: int
    command: Command


def _row_to_json(row: RowId) -> list:
    return [int(row.kind), row.subarray, row.index]


def _row_from_json(data: list) -> RowId:
    return RowId(RowKind(data[0]), data[1], data[2])


def _timings_to_json(timings: ActTimings | None):
    if timings is None:
        return None
    return [
        timings.trcd,
        timings.tras_full,
        timings.tras_early,
        timings.twr,
        timings.twr_full,
    ]


def _timings_from_json(data) -> ActTimings | None:
    if data is None:
        return None
    return ActTimings(
        trcd=data[0], tras_full=data[1], tras_early=data[2],
        twr=data[3], twr_full=data[4],
    )


class CommandRecorder:
    """In-memory command log, attachable to a DramChannel.

    >>> channel = DramChannel(geometry, timing)
    >>> channel.recorder = CommandRecorder()
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigError("capacity must be >= 1")
        self.capacity = capacity
        self.records: list[RecordedCommand] = []
        self.dropped = 0

    def record(self, cycle: int, command: Command) -> None:
        """Append one issued command to the log."""
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(RecordedCommand(cycle, command))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> None:
        """Write the log as JSON lines."""
        with Path(path).open("w") as handle:
            for cycle, command in self.records:
                handle.write(json.dumps({
                    "cycle": cycle,
                    "kind": command.kind.name,
                    "bank": command.bank,
                    "rows": [_row_to_json(r) for r in command.rows],
                    "col": command.col,
                    "subarray": command.subarray,
                    "timings": _timings_to_json(command.timings),
                }) + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "CommandRecorder":
        """Read a JSONL command log from ``path``."""
        recorder = cls()
        path = Path(path)
        if not path.is_file():
            raise ConfigError(f"command log not found: {path}")
        with path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                text = line.strip()
                if not text:
                    continue
                try:
                    data = json.loads(text)
                    command = Command(
                        kind=CommandKind[data["kind"]],
                        bank=data["bank"],
                        rows=tuple(_row_from_json(r) for r in data["rows"]),
                        col=data["col"],
                        subarray=data["subarray"],
                        timings=_timings_from_json(data["timings"]),
                    )
                    recorder.records.append(
                        RecordedCommand(data["cycle"], command)
                    )
                except (KeyError, ValueError, TypeError) as error:
                    raise ConfigError(
                        f"{path}:{line_number}: malformed record ({error})"
                    ) from None
        return recorder
