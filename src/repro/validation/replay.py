"""Replay a recorded command stream against a fresh, fully-armed device."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dram.cellarray import CellArray
from repro.dram.commands import RowKind
from repro.dram.device import DramChannel
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters
from repro.errors import (
    DataIntegrityError,
    ProtocolError,
    ReproError,
    TimingViolationError,
)
from repro.validation.recorder import CommandRecorder, RecordedCommand

__all__ = ["Violation", "ReplayReport", "replay"]


@dataclass(frozen=True)
class Violation:
    """One rule the replayed stream broke."""

    index: int
    cycle: int
    kind: str            # 'timing' | 'protocol' | 'integrity' | 'order'
    message: str


@dataclass
class ReplayReport:
    """Outcome of replaying a command stream."""

    commands: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the stream replayed without violations."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if self.ok:
            return f"{self.commands} commands replayed, no violations"
        head = self.violations[0]
        return (
            f"{self.commands} commands replayed, "
            f"{len(self.violations)} violation(s); first at #{head.index} "
            f"({head.kind}): {head.message}"
        )


def _classify(error: ReproError) -> str:
    if isinstance(error, TimingViolationError):
        return "timing"
    if isinstance(error, DataIntegrityError):
        return "integrity"
    if isinstance(error, ProtocolError):
        return "protocol"
    return "other"


def replay(
    records: "CommandRecorder | Iterable[RecordedCommand]",
    geometry: DramGeometry | None = None,
    timing: TimingParameters | None = None,
    with_cells: bool = True,
    stop_at_first: bool = False,
    max_violations: int = 100,
) -> ReplayReport:
    """Re-execute a recorded command stream on a fresh device.

    The replay device enforces every timing constraint, every protocol
    rule, and — with ``with_cells`` — every data-integrity rule, with each
    regular row appearing in the stream pre-seeded *live* with a unique
    pattern so that ``ACT-t`` on rows that were never made duplicates is
    caught as corruption. Violating commands are skipped (their effects do
    not apply) and reported, so one violation does not cascade.
    """
    geometry = geometry if geometry is not None else DramGeometry()
    timing = timing if timing is not None else TimingParameters.lpddr4()
    records = list(records)
    cells = None
    if with_cells:
        cells = CellArray(
            geometry, clock_mhz=timing.clock_mhz, enforce_retention=True
        )
        for _, command in records:
            for row in command.rows:
                if row.kind is RowKind.REGULAR and not cells.is_live(
                    command.bank, row
                ):
                    pattern = (
                        (command.bank << 32)
                        | (row.subarray << 16)
                        | row.index
                    )
                    cells.set_row_data(command.bank, row, pattern)
    channel = DramChannel(geometry, timing, cell_array=cells)

    report = ReplayReport()
    last_cycle = None
    for index, (cycle, command) in enumerate(records):
        report.commands += 1
        if last_cycle is not None and cycle < last_cycle:
            report.violations.append(Violation(
                index, cycle, "order",
                f"cycle {cycle} precedes previous command at {last_cycle}",
            ))
            if stop_at_first or len(report.violations) >= max_violations:
                break
            continue
        last_cycle = cycle
        try:
            channel.issue(command, cycle)
        except ReproError as error:
            report.violations.append(
                Violation(index, cycle, _classify(error), str(error))
            )
            if stop_at_first or len(report.violations) >= max_violations:
                break
    return report
