"""Content-addressed result store shared by workers and coordinator.

One directory layout, three jobs:

* **Local disk cache** — results live under exactly the file names the
  serial :class:`~repro.sim.campaign.Campaign` uses (the TaskSpec digest
  is in the name), so a cluster store directory *is* a campaign cache
  directory: serial runs, ``ParallelCampaign`` and a whole fleet can
  share one, byte-for-byte.
* **Transfer endpoint** — results and warm images serialize to raw bytes
  for the wire (``*_bytes`` methods); any node that has a digest can
  serve it.
* **Determinism guard** — :meth:`put_result` never silently overwrites:
  a result arriving for a digest that already has a cached copy must
  match its telemetry digest, else :class:`StoreMismatchError` — the
  structured "your fleet diverged" alarm.

Warm images are content-addressed the same way, keyed by the fork-group
name (a hash over warmup digest + trace identity — see
:func:`repro.snapshot.warm.fork_groups`) under ``<dir>/warm/``.

Single-flight: :meth:`claim` wraps the advisory claim files of
:class:`~repro.sim.campaign.Campaign` so two workers (of different
campaigns, or racing coordinators) missing the same digest do not both
simulate it.
"""

from __future__ import annotations

import pickle
import re
import time
from pathlib import Path

from repro.errors import ClusterError, StoreMismatchError
from repro.sim.campaign import Campaign
from repro.sim.metrics import SimResult

__all__ = ["ResultStore", "StoreClaim"]

_SAFE_NAME = re.compile(r"^[A-Za-z0-9._-]+$")


class StoreClaim:
    """A held single-flight claim; release it (or use as a context)."""

    def __init__(self, store: "ResultStore", path: Path) -> None:
        self._store = store
        self._path = path
        self.released = False

    def release(self) -> None:
        if not self.released:
            self._store.campaign.release_claim(self._path)
            self.released = True

    def __enter__(self) -> "StoreClaim":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResultStore:
    """Digest-keyed result + warm-image store over one directory."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.campaign = Campaign(self.directory)
        self.warm_dir = self.directory / "warm"
        self.warm_dir.mkdir(parents=True, exist_ok=True)
        self.conflicts = 0
        self.served = 0
        self.fetched = 0

    # -- results ---------------------------------------------------------

    def result_path(self, spec) -> Path:
        return self.directory / spec.cache_filename()

    @staticmethod
    def _result_type(spec) -> type:
        """The result type ``spec``'s task family produces."""
        from repro.sim.metrics import SimResult

        return getattr(spec, "result_type", SimResult)

    def get_result(self, spec) -> "SimResult | None":
        """The cached result for ``spec``, or ``None`` (miss)."""
        return self.campaign.load_cached(
            self.result_path(spec), self._result_type(spec)
        )

    def get_result_bytes(self, spec) -> "bytes | None":
        """Wire-ready pickle bytes of the cached result, if present."""
        path = self.result_path(spec)
        if self.campaign.load_cached(path, self._result_type(spec)) is None:
            return None
        self.served += 1
        return path.read_bytes()

    def put_result(self, spec, result: SimResult) -> SimResult:
        """Store ``result`` under ``spec``'s digest, conflict-checked.

        If a copy is already cached, its telemetry digest is
        cross-checked against the new result's: equal digests return the
        *cached* copy (first write wins, byte-stable cache files);
        differing digests raise :class:`StoreMismatchError` and bump the
        ``conflicts`` counter — never a silent overwrite.
        """
        expected = self._result_type(spec)
        if not isinstance(result, expected):
            raise ClusterError(
                f"store payload must be a {expected.__name__}, got "
                f"{type(result).__name__}"
            )
        path = self.result_path(spec)
        cached = self.campaign.load_cached(path, expected)
        if cached is not None:
            have, got = cached.telemetry_digest(), result.telemetry_digest()
            if have != got:
                self.conflicts += 1
                raise StoreMismatchError(spec.digest(), have, got)
            return cached
        self.campaign.store(path, result, expected)
        return result

    def put_result_bytes(self, spec, data: bytes) -> SimResult:
        """Validate wire bytes and store them *verbatim*.

        The payload is decoded for validation and conflict checking, but
        the original bytes hit the disk unchanged: re-pickling a loaded
        object is not byte-stable (CPython shares small-string singletons
        on load, changing memoization), and verbatim writes are what keep
        a fleet's cache files byte-identical to the producing worker's.
        """
        try:
            result = pickle.loads(data)
        except Exception as exc:
            raise ClusterError(
                f"undecodable result payload for task "
                f"{spec.digest()}: {exc}"
            )
        expected = self._result_type(spec)
        if not isinstance(result, expected):
            raise ClusterError(
                f"store payload must be a {expected.__name__}, got "
                f"{type(result).__name__}"
            )
        self.fetched += 1
        path = self.result_path(spec)
        cached = self.campaign.load_cached(path, expected)
        if cached is not None:
            have, got = cached.telemetry_digest(), result.telemetry_digest()
            if have != got:
                self.conflicts += 1
                raise StoreMismatchError(spec.digest(), have, got)
            return cached
        import os

        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return result

    # -- warm images ------------------------------------------------------

    def warm_path(self, filename: str) -> Path:
        """The local path of a warm image, by its content-derived name."""
        if not _SAFE_NAME.match(filename) or filename.strip(".") == "":
            raise ClusterError(f"illegal warm-image name {filename!r}")
        return self.warm_dir / filename

    def get_warm_bytes(self, filename: str) -> "bytes | None":
        path = self.warm_path(filename)
        if not path.is_file():
            return None
        self.served += 1
        return path.read_bytes()

    def put_warm_bytes(self, filename: str, data: bytes) -> Path:
        """Atomically persist a fetched warm image (idempotent)."""
        import os

        path = self.warm_path(filename)
        if path.is_file():
            return path  # content-addressed: an existing copy is equal
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.fetched += 1
        return path

    # -- single flight ----------------------------------------------------

    def claim(self, spec, stale_s: float = 3600.0) -> "StoreClaim | None":
        """Claim the right to compute ``spec``; ``None`` = someone else.

        Callers holding a claim should compute and :meth:`put_result`,
        then release; callers refused one should :meth:`wait_for` the
        result instead.
        """
        path = self.result_path(spec)
        if self.campaign.try_claim(path, stale_s=stale_s):
            return StoreClaim(self, path)
        return None

    def wait_for(
        self,
        spec,
        timeout_s: float = 60.0,
        poll_s: float = 0.1,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> "SimResult | None":
        """Poll for another computer's result for up to ``timeout_s``.

        Returns ``None`` on timeout *or* if the foreign claim disappears
        without producing a result (its holder died) — the caller should
        then try to claim again.
        """
        path = self.result_path(spec)
        deadline = clock() + timeout_s
        while True:
            result = self.campaign.load_cached(path, self._result_type(spec))
            if result is not None:
                return result
            if not self.campaign.claim_path(path).exists():
                return None  # holder released without a result
            if clock() >= deadline:
                return None
            sleep(poll_s)
