"""A pull-based cluster worker.

Connects to the coordinator, pulls one lease at a time (work-stealing is
just every worker pulling as fast as it finishes), executes the
:class:`~repro.exec.task.TaskSpec` through the existing
:class:`~repro.exec.runner.ProcessPoolRunner` — so crash isolation,
retries-with-jitter and checkpoint resume all behave exactly as in a
local campaign — and streams heartbeats carrying checkpoint progress
while the simulation runs in a thread.

Robustness posture:

* **Local store first** — a worker that already holds a digest serves it
  without simulating (and says so with ``cached=true``).
* **Single flight** — before simulating, the worker claims the cache
  entry; if a foreign claim exists it waits for that computer's result
  instead of burning CPU on a duplicate.
* **Warm images** — a lease can name a warm image; the worker fetches it
  from the coordinator's store once, content-addressed, and reuses it
  for every later lease of the same group.
* **Coordinator loss** — the connection is retried with backoff; a
  coordinator restart looks like a slow ``lease_request``. A result
  computed across a revocation is still delivered (late results are
  accepted if the task is not already done).
* **Checkpointing** — with a checkpoint dir, a lease that dies mid-task
  (worker SIGKILL) leaves a checkpoint behind; whoever is re-leased the
  task on this host resumes it instead of restarting from cycle zero.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
from dataclasses import replace

from repro.cluster.protocol import (
    pack_bytes,
    read_frame,
    send_frame,
    unpack_bytes,
)
from repro.cluster.store import ResultStore
from repro.errors import ClusterError
from repro.exec.runner import ProcessPoolRunner, _checkpoint_cycle
from repro.exec.task import TaskSpec

__all__ = ["ClusterWorker"]


class ClusterWorker:
    """Run leased tasks against one coordinator until drained.

    :param jobs: worker slots of the inner runner. The default ``1``
        executes in-process (simple, signal-transparent — a SIGKILL to
        the worker kills the simulation with it, which is exactly the
        failure the lease machinery recovers from).
    :param checkpoint_dir: periodically checkpoint running tasks here;
        re-leased tasks resume from the latest checkpoint on this host.
    """

    def __init__(
        self,
        host: str,
        port: int,
        store_dir,
        worker_id: "str | None" = None,
        jobs: int = 1,
        retries: int = 0,
        checkpoint_dir=None,
        checkpoint_every: int = 50_000,
        poll_s: float = 0.2,
        reconnect_attempts: int = 30,
        reconnect_delay_s: float = 0.5,
        observers=(),
        log=None,
    ) -> None:
        self.host = host
        self.port = port
        self.store = ResultStore(store_dir)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.checkpoint_dir = (
            str(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.poll_s = poll_s
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay_s = reconnect_delay_s
        self.runner = ProcessPoolRunner(
            jobs=jobs, retries=retries, observers=observers
        )
        self.log = log if log is not None else (lambda line: None)
        self.heartbeat_s = 5.0
        self.done_tasks = 0
        self.cached_tasks = 0
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        self._io_lock = asyncio.Lock()

    # -- connection ------------------------------------------------------

    async def _connect(self) -> None:
        """(Re)establish the coordinator connection, with retries."""
        last: "Exception | None" = None
        for attempt in range(self.reconnect_attempts):
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                welcome = await self._call({
                    "type": "hello",
                    "worker": self.worker_id,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                })
                if welcome.get("type") != "welcome":
                    raise ClusterError(
                        f"expected welcome, got {welcome.get('type')!r}"
                    )
                self.heartbeat_s = float(
                    welcome.get("heartbeat_s", self.heartbeat_s)
                )
                self.log(
                    f"worker {self.worker_id}: connected to "
                    f"{self.host}:{self.port}"
                )
                return
            except (ConnectionError, OSError, ClusterError) as exc:
                last = exc
                await self._drop_connection()
                await asyncio.sleep(self.reconnect_delay_s)
        raise ClusterError(
            f"could not reach coordinator at {self.host}:{self.port} "
            f"after {self.reconnect_attempts} attempts: {last}"
        )

    async def _drop_connection(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def _call(self, message: dict) -> dict:
        """One request/response exchange (serialized on the connection)."""
        async with self._io_lock:
            if self._writer is None:
                raise ConnectionError("not connected")
            await send_frame(self._writer, message)
            reply = await read_frame(self._reader)
        if reply is None:
            raise ConnectionError("coordinator closed the connection")
        return reply

    async def _call_reconnecting(self, message: dict) -> dict:
        """Like :meth:`_call`, surviving a coordinator restart."""
        try:
            return await self._call(message)
        except (ConnectionError, OSError, ClusterError):
            await self._drop_connection()
            await self._connect()
            return await self._call(message)

    # -- main loop -------------------------------------------------------

    async def run(self) -> int:
        """Pull and execute leases until the campaign drains.

        Returns the number of tasks this worker delivered.
        """
        await self._connect()
        try:
            while True:
                reply = await self._call_reconnecting(
                    {"type": "lease_request", "worker": self.worker_id}
                )
                kind = reply.get("type")
                if kind == "drained":
                    self.log(
                        f"worker {self.worker_id}: campaign drained "
                        f"(done={self.done_tasks} "
                        f"cached={self.cached_tasks})"
                    )
                    return self.done_tasks
                if kind == "wait":
                    await asyncio.sleep(
                        float(reply.get("poll_s", self.poll_s))
                    )
                    continue
                if kind != "lease":
                    raise ClusterError(
                        f"unexpected reply to lease_request: {kind!r}"
                    )
                await self._execute(reply)
        finally:
            await self._drop_connection()

    # -- lease execution -------------------------------------------------

    async def _execute(self, lease: dict) -> None:
        lease_id = lease["lease_id"]
        spec = TaskSpec.from_wire(lease["task"])
        spec = await self._prepare(spec, lease)
        self.log(
            f"worker {self.worker_id}: lease {lease_id} -> {spec.label}"
        )

        cached = self.store.get_result(spec)
        if cached is not None:
            self.cached_tasks += 1
            await self._deliver(lease_id, spec, cached, 0.0, cached=True)
            return

        claim = self.store.claim(spec)
        if claim is None:
            # Someone else on this store is already computing it.
            foreign = await asyncio.to_thread(
                self.store.wait_for, spec, self.heartbeat_s * 3
            )
            if foreign is not None:
                await self._deliver(lease_id, spec, foreign, 0.0,
                                    cached=True)
                return
            claim = self.store.claim(spec)  # holder died: take over

        started = time.monotonic()
        heartbeat = asyncio.create_task(
            self._heartbeat_loop(lease_id, spec)
        )
        try:
            outcomes = await asyncio.to_thread(self.runner.run, [spec])
        finally:
            heartbeat.cancel()
            try:
                await heartbeat
            except asyncio.CancelledError:
                pass
            if claim is not None:
                claim.release()
        (outcome,) = outcomes
        duration = time.monotonic() - started
        if not outcome.ok:
            await self._call_reconnecting({
                "type": "task_error",
                "lease_id": lease_id,
                "digest": spec.digest(),
                "worker": self.worker_id,
                "error": outcome.error,
            })
            return
        self.store.put_result(spec, outcome.result)
        self.done_tasks += 1
        await self._deliver(lease_id, spec, outcome.result, duration)

    async def _prepare(self, spec: TaskSpec, lease: dict) -> TaskSpec:
        """Localize a leased spec: warm image fetch + checkpoint dir."""
        warm = lease.get("warm")
        if warm is not None:
            name = str(warm["image"])
            local = self.store.warm_path(name)
            if not local.is_file():
                reply = await self._call_reconnecting({
                    "type": "store_get", "kind": "warm", "name": name,
                })
                if reply.get("type") == "store_hit":
                    self.store.put_warm_bytes(
                        name, unpack_bytes(reply["payload"])
                    )
                    self.log(
                        f"worker {self.worker_id}: fetched warm image "
                        f"{name} ({local.stat().st_size} bytes)"
                    )
            if local.is_file():
                spec = replace(spec, warm_image=str(local))
            else:
                spec = replace(spec, warm_image=None)  # run cold
        if self.checkpoint_dir is not None:
            spec = replace(
                spec,
                checkpoint_dir=self.checkpoint_dir,
                checkpoint_every=self.checkpoint_every,
            )
        return spec

    async def _heartbeat_loop(self, lease_id: str, spec: TaskSpec) -> None:
        """Renew the lease while the simulation thread works.

        Each beat carries an epoch-progress frame: the cycle of the
        task's latest checkpoint, when checkpointing is on — the
        coordinator surfaces it in ``cluster status``.
        """
        while True:
            await asyncio.sleep(self.heartbeat_s)
            progress: dict = {}
            cycle = _checkpoint_cycle(spec)
            if cycle is not None:
                progress["checkpoint_cycle"] = cycle
            try:
                reply = await self._call({
                    "type": "heartbeat",
                    "lease_id": lease_id,
                    "worker": self.worker_id,
                    "progress": progress,
                })
                if reply.get("type") == "ack" and not reply.get("ok"):
                    self.log(
                        f"worker {self.worker_id}: lease {lease_id} "
                        "revoked (continuing; result becomes late)"
                    )
            except (ConnectionError, OSError, ClusterError):
                await self._drop_connection()  # re-established on deliver

    async def _deliver(
        self,
        lease_id: str,
        spec: TaskSpec,
        result,
        duration: float,
        cached: bool = False,
    ) -> None:
        from repro.telemetry.summary import headline_summary

        import pickle

        # Ship the store's bytes verbatim when we have them: re-pickling
        # a loaded result is not byte-stable, verbatim bytes keep every
        # store in the fleet byte-identical.
        payload = self.store.get_result_bytes(spec)
        if payload is None:
            payload = pickle.dumps(result)
        frame = {
            "type": "result",
            "lease_id": lease_id,
            "digest": spec.digest(),
            "worker": self.worker_id,
            "duration_s": round(duration, 6),
            "cached": cached,
            "payload": pack_bytes(payload),
        }
        summary = headline_summary(result)
        if summary is not None:
            frame["summary"] = summary
        reply = await self._call_reconnecting(frame)
        if reply.get("type") == "error":
            self.log(
                f"worker {self.worker_id}: coordinator rejected "
                f"{spec.label}: {reply.get('error')}"
            )
