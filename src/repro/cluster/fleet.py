"""Fleet observability: live status fetch + rendering.

``python -m repro cluster status`` talks the same wire protocol as a
worker: one ``status`` frame, one ``fleet_status`` reply carrying the
coordinator's :meth:`CampaignState.snapshot` — per-worker leases with
ages and checkpoint progress, steal/retry/expiry counters, store
traffic, and a campaign-wide ETA extrapolated from mean task duration
over the connected fleet.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.cluster.protocol import read_frame, send_frame
from repro.errors import ClusterError

__all__ = ["FleetStatus", "fetch_status", "get_status"]


@dataclass(frozen=True)
class FleetStatus:
    """One sampled view of a running campaign's fleet."""

    payload: dict

    @property
    def total(self) -> int:
        return self.payload.get("total", 0)

    @property
    def done(self) -> int:
        return self.payload.get("done", 0)

    @property
    def workers(self) -> list:
        return self.payload.get("workers", [])

    @property
    def eta_s(self) -> "float | None":
        return self.payload.get("eta_s")

    def render(self) -> str:
        """Human-readable status report (tables + headline line)."""
        from repro.analysis import TextTable

        p = self.payload
        head = TextTable("campaign", ["metric", "value"])
        head.add_row(
            "progress",
            f"{self.done}/{self.total} done, {p.get('failed', 0)} failed",
        )
        head.add_row("pending / leased",
                     f"{p.get('pending', 0)} / {p.get('leased', 0)}")
        head.add_row(
            "steals / retries / expired leases",
            f"{p.get('steals', 0)} / {p.get('retries', 0)} / "
            f"{p.get('expired', 0)}",
        )
        if p.get("late_results"):
            head.add_row("late results", p["late_results"])
        mean = p.get("mean_task_s")
        head.add_row(
            "mean task", f"{mean:.2f}s" if mean is not None else "-"
        )
        eta = self.eta_s
        head.add_row("ETA", f"{eta:.0f}s" if eta is not None else "-")
        store = p.get("store", {})
        if store:
            head.add_row(
                "store served / fetched / conflicts",
                f"{store.get('served', 0)} / {store.get('fetched', 0)} / "
                f"{store.get('conflicts', 0)}",
            )
        head.add_row("uptime", f"{p.get('uptime_s', 0):.0f}s")
        lines = [head.render()]

        fleet = TextTable(
            f"fleet ({len(self.workers)} worker(s))",
            ["worker", "state", "done", "failed", "lease", "age",
             "progress"],
        )
        for row in self.workers:
            state = "up" if row.get("connected") else "lost"
            leases = row.get("leases", [])
            if not leases:
                fleet.add_row(
                    row["worker"], state, row.get("done", 0),
                    row.get("failed", 0), "-", "-", "-",
                )
            for lease in leases:
                progress = lease.get("progress") or {}
                cycle = progress.get("checkpoint_cycle")
                fleet.add_row(
                    row["worker"], state, row.get("done", 0),
                    row.get("failed", 0),
                    f"{lease['task']} (#{lease['attempt']})",
                    f"{lease['age_s']:.1f}s",
                    f"cycle {cycle}" if cycle is not None else "-",
                )
        lines.append(fleet.render())

        failed = p.get("failed_tasks", [])
        if failed:
            bad = TextTable("failed tasks", ["task", "error"])
            for item in failed:
                bad.add_row(item["task"], item.get("error") or "-")
            lines.append(bad.render())
        return "\n\n".join(lines)


async def fetch_status(
    host: str, port: int, timeout_s: float = 5.0
) -> FleetStatus:
    """Ask a running coordinator for its live fleet snapshot."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
    except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
        raise ClusterError(
            f"no coordinator answering at {host}:{port}: {exc}"
        )
    try:
        await send_frame(writer, {"type": "status"})
        reply = await asyncio.wait_for(read_frame(reader), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if reply is None or reply.get("type") != "fleet_status":
        raise ClusterError(
            f"unexpected status reply: "
            f"{None if reply is None else reply.get('type')!r}"
        )
    return FleetStatus(reply["status"])


def get_status(host: str, port: int, timeout_s: float = 5.0) -> FleetStatus:
    """Synchronous wrapper around :func:`fetch_status`."""
    return asyncio.run(fetch_status(host, port, timeout_s))
