"""Length-prefixed JSON wire protocol for the campaign cluster.

Every message between a worker (or status client) and the coordinator is
one *frame*: a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON encoding a single object with a ``"type"`` key. Plain asyncio
streams, no dependencies, trivially debuggable with ``nc`` plus a hex
dump. Binary payloads (pickled results, warm images) ride base64-encoded
inside the JSON — frames stay self-describing and journal-friendly at
the cost of ~33% transfer overhead, which is noise next to simulation
time.

Frame types (worker → coordinator unless noted):

==================  ====================================================
``hello``           worker registration: ``worker``, ``pid``, ``host``
``welcome``         (coord) registration ack: lease/heartbeat timing
``lease_request``   ask for work (the work-*stealing* pull)
``lease``           (coord) one task: wire spec, ``lease_id``, deadlines
``wait``            (coord) nothing leasable now; poll again later
``drained``         (coord) campaign finished; worker should exit
``heartbeat``       lease keep-alive with progress (checkpoint cycle)
``ack``             (coord) generic acknowledgement; ``ok`` flag
``result``          completed task: payload + telemetry summary
``task_error``      attempt failed: error text
``store_get``       content-addressed fetch (result or warm image)
``store_hit``       (coord) fetched bytes
``store_miss``      (coord) no such entry
``status``          fleet telemetry request (status client)
``fleet_status``    (coord) live fleet snapshot
``submit``          add tasks to the running campaign
``error``           (coord) structured failure, e.g. digest conflict
==================  ====================================================

The protocol is *stateless per frame* beyond lease identity, which is
what makes coordinator restart cheap: a reconnecting worker simply says
``hello`` again and re-pulls work.
"""

from __future__ import annotations

import asyncio
import base64
import json
import struct

from repro.errors import ClusterError

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "read_frame",
    "pack_bytes",
    "unpack_bytes",
]

#: Frame size ceiling. Warm images for large geometries run to tens of
#: MiB; anything beyond this is a protocol bug, not a payload.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire bytes."""
    if not isinstance(message, dict) or "type" not in message:
        raise ClusterError("a frame must be a dict with a 'type' key")
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    return _HEADER.pack(len(body)) + body


def decode_frame(data: bytes) -> dict:
    """Inverse of :func:`encode_frame` (testing/debugging helper)."""
    if len(data) < _HEADER.size:
        raise ClusterError("truncated frame header")
    (length,) = _HEADER.unpack_from(data)
    body = data[_HEADER.size:]
    if len(body) != length:
        raise ClusterError(
            f"frame length {length} does not match body of {len(body)}"
        )
    return _parse_body(body)


def _parse_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterError(f"undecodable frame body: {exc}")
    if not isinstance(message, dict) or "type" not in message:
        raise ClusterError("frame body must be a dict with a 'type' key")
    return message


async def send_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> "dict | None":
    """Read one frame; ``None`` on clean EOF before a header byte.

    EOF in the *middle* of a frame (a peer killed mid-write) raises
    :class:`ClusterError` — the caller should drop the connection.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ClusterError("connection closed mid-frame (torn header)")
    except ConnectionError:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"peer announced a {length}-byte frame (ceiling "
            f"{MAX_FRAME_BYTES}); dropping the connection"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ClusterError("connection closed mid-frame (torn body)")
    return _parse_body(body)


def pack_bytes(data: bytes) -> str:
    """Binary payload → JSON-safe base64 text."""
    return base64.b64encode(data).decode("ascii")


def unpack_bytes(text: str) -> bytes:
    """Inverse of :func:`pack_bytes`."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise ClusterError(f"undecodable binary payload: {exc}")
