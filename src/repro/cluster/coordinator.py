"""The campaign coordinator: lease server, store authority, journal.

An asyncio TCP server (plain streams, stdlib only) that owns one
campaign's :class:`~repro.cluster.state.CampaignState` and
:class:`~repro.cluster.store.ResultStore`. Workers *pull* leases
(work-stealing), stream heartbeats while simulating, and deliver results
as pickled payloads; the coordinator cross-checks every delivery against
any cached copy before acknowledging, journals every transition through
the :class:`~repro.exec.journal.RunJournal`, and revokes leases whose
heartbeats go stale so a SIGKILLed worker's tasks are re-leased to the
survivors.

Crash recovery is journal replay: restart the coordinator with the same
journal path and it rebuilds the done/pending ledger from the event
stream (see :meth:`CampaignState.replay`), re-queues everything that was
in flight, and re-marks tasks whose results already sit in the store.
"""

from __future__ import annotations

import asyncio
import time

from repro.cluster.protocol import (
    pack_bytes,
    read_frame,
    send_frame,
    unpack_bytes,
)
from repro.cluster.state import DONE, PENDING, CampaignState
from repro.cluster.store import ResultStore
from repro.errors import ClusterError, StoreMismatchError
from repro.exec.task import TaskSpec

__all__ = ["Coordinator"]

#: How long, after the campaign finishes, the server keeps answering so
#: idle workers can pull their ``drained`` notice before the socket goes.
_DRAIN_GRACE_S = 2.0


class Coordinator:
    """Serve one campaign's task DAG to a fleet of pull-based workers.

    :param state: the campaign ledger (fresh, or rebuilt via replay).
    :param store: result + warm-image store this coordinator answers
        ``store_get`` fetches from and persists deliveries into.
    :param exit_when_done: stop serving once every task is terminal
        (after a short drain grace); otherwise serve until cancelled.
    """

    def __init__(
        self,
        state: CampaignState,
        store: ResultStore,
        host: str = "127.0.0.1",
        port: int = 0,
        exit_when_done: bool = False,
        journal=None,
    ) -> None:
        self.state = state
        self.store = store
        self.host = host
        self.port = port
        self.exit_when_done = exit_when_done
        self.journal = journal if journal is not None else state.journal
        self.done = asyncio.Event()
        self._server: "asyncio.base_events.Server | None" = None
        self._expiry_task: "asyncio.Task | None" = None

    # -- journal ---------------------------------------------------------

    def _emit(self, event: str, **fields) -> None:
        if self.journal is not None:
            self.journal(event, fields)

    # -- startup helpers --------------------------------------------------

    def prune_against_store(self) -> int:
        """Mark pending tasks whose results the store already holds.

        Run once at startup (fresh or replayed): a journal may claim a
        task is pending while a previous fleet already computed it, and
        vice versa — a journal ``cluster_task_done`` with no store entry
        must *not* stand, so replayed done-marks are also verified here.
        """
        pruned = 0
        for entry in self.state.tasks.values():
            spec = TaskSpec.from_wire(entry.wire)
            result = self.store.get_result(spec)
            if result is None:
                if entry.state == DONE:
                    # Journal says done but the bytes are gone: recompute.
                    entry.state = PENDING
                    self.state.queue.append(entry.digest)
                    self._emit(
                        "cluster_task_requeued", digest=entry.digest,
                        task=entry.label, reason="store entry missing",
                    )
                continue
            if entry.state == PENDING:
                if self.state.complete_from_store(
                    entry.digest, result.telemetry_digest()
                ):
                    pruned += 1
        return pruned

    # -- serving ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the lease-expiry sweep."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        interval = min(1.0, self.state.lease_timeout_s / 4.0)
        self._expiry_task = asyncio.create_task(self._expire_loop(interval))
        counts = self.state.counts()
        self._emit(
            "cluster_campaign_start", host=self.host, port=self.port,
            total=len(self.state.tasks), done=counts["done"],
            lease_timeout_s=self.state.lease_timeout_s,
            max_attempts=self.state.max_attempts,
        )
        self._check_finished()

    async def serve(self) -> dict:
        """Serve until finished (``exit_when_done``) or cancelled.

        Returns the final fleet snapshot either way.
        """
        if self._server is None:
            await self.start()
        try:
            if self.exit_when_done:
                await self.done.wait()
                await asyncio.sleep(_DRAIN_GRACE_S)
            else:
                await asyncio.Event().wait()  # until cancelled
        except asyncio.CancelledError:
            pass
        finally:
            await self.close()
        return self.state.snapshot()

    async def close(self) -> None:
        if self._expiry_task is not None:
            self._expiry_task.cancel()
            try:
                await self._expiry_task
            except asyncio.CancelledError:
                pass
            self._expiry_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            counts = self.state.counts()
            self._emit(
                "cluster_campaign_end", total=len(self.state.tasks),
                done=counts["done"], failed=counts["failed"],
                steals=self.state.steals, retries=self.state.retries,
                expired=self.state.expired,
            )

    async def _expire_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            if self.state.expire_stale():
                self._check_finished()

    def _check_finished(self) -> None:
        if self.state.finished:
            self.done.set()

    # -- per-connection protocol -----------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        worker: "str | None" = None
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                if frame["type"] == "hello":
                    worker = str(frame.get("worker", "anonymous"))
                reply = self._dispatch(frame, worker)
                await send_frame(writer, reply)
        except (ClusterError, ConnectionError, OSError):
            pass  # lost peer: lease recovery below handles the fallout
        finally:
            if worker is not None:
                self.state.worker_left(worker)
                self._check_finished()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, frame: dict, worker: "str | None") -> dict:
        kind = frame["type"]
        if kind == "hello":
            self.state.worker_joined(
                str(frame.get("worker", "anonymous")),
                {
                    "pid": frame.get("pid"),
                    "host": frame.get("host"),
                },
            )
            return {
                "type": "welcome",
                "lease_timeout_s": self.state.lease_timeout_s,
                "heartbeat_s": self.state.lease_timeout_s / 3.0,
            }
        if kind == "lease_request":
            return self._grant(worker or str(frame.get("worker", "?")))
        if kind == "heartbeat":
            ok = self.state.heartbeat(
                frame.get("lease_id", ""), frame.get("progress")
            )
            return {"type": "ack", "ok": ok}
        if kind == "result":
            return self._accept_result(frame, worker)
        if kind == "task_error":
            requeued = self.state.fail(
                frame.get("lease_id"), digest=frame.get("digest"),
                error=str(frame.get("error", "unknown error")),
            )
            self._check_finished()
            return {"type": "ack", "ok": True, "requeued": requeued}
        if kind == "store_get":
            return self._serve_store(frame)
        if kind == "status":
            return self._fleet_status()
        if kind == "submit":
            added = sum(
                1 for wire in frame.get("tasks", [])
                if self._add_task_wire(wire)
            )
            return {"type": "ack", "ok": True, "added": added}
        return {"type": "error", "error": f"unknown frame type {kind!r}"}

    def _add_task_wire(self, wire: dict) -> bool:
        TaskSpec.from_wire(wire)  # digest-validate before accepting
        return self.state.add_task(wire)

    def _grant(self, worker: str) -> dict:
        lease = self.state.next_lease(worker)
        if lease is not None:
            return {"type": "lease", **lease}
        if self.state.finished:
            return {"type": "drained"}
        return {"type": "wait", "poll_s": 0.2}

    def _accept_result(self, frame: dict, worker: "str | None") -> dict:
        digest = frame.get("digest")
        lease_id = frame.get("lease_id")
        entry, _lease = self.state.resolve(lease_id, digest)
        if entry is None:
            return {
                "type": "error",
                "error": f"result for unknown task {digest!r}",
            }
        spec = TaskSpec.from_wire(entry.wire)
        try:
            result = self.store.put_result_bytes(
                spec, unpack_bytes(frame["payload"])
            )
        except StoreMismatchError as exc:
            self._emit(
                "store_conflict", digest=entry.digest, task=entry.label,
                worker=worker, cached=exc.cached, computed=exc.computed,
            )
            self.state.fail(
                lease_id, digest=entry.digest, error=str(exc), fatal=True,
            )
            self._check_finished()
            return {
                "type": "error", "code": "store_conflict",
                "error": str(exc),
            }
        except ClusterError as exc:
            self.state.fail(
                lease_id, digest=entry.digest, error=str(exc),
            )
            self._check_finished()
            return {"type": "error", "error": str(exc)}
        accepted = self.state.complete(
            lease_id, digest=entry.digest, worker=worker,
            telemetry_digest=result.telemetry_digest(),
            duration_s=frame.get("duration_s"),
            cached=bool(frame.get("cached")),
        )
        summary = frame.get("summary")
        if accepted and summary:
            self._emit(
                "task_telemetry", task=entry.label, digest=entry.digest,
                cached=bool(frame.get("cached")), worker=worker,
                **summary,
            )
        self._check_finished()
        return {"type": "ack", "ok": True, "accepted": accepted}

    def _serve_store(self, frame: dict) -> dict:
        kind = frame.get("kind", "result")
        if kind == "warm":
            data = self.store.get_warm_bytes(str(frame.get("name", "")))
        elif kind == "result":
            digest = frame.get("digest")
            entry = self.state.tasks.get(digest) if digest else None
            if entry is None:
                return {"type": "store_miss"}
            data = self.store.get_result_bytes(
                TaskSpec.from_wire(entry.wire)
            )
        else:
            return {
                "type": "error",
                "error": f"unknown store kind {kind!r}",
            }
        if data is None:
            return {"type": "store_miss"}
        return {"type": "store_hit", "payload": pack_bytes(data)}

    def _fleet_status(self) -> dict:
        payload = self.state.snapshot()
        payload["store"] = {
            "directory": str(self.store.directory),
            "served": self.store.served,
            "fetched": self.store.fetched,
            "conflicts": self.store.conflicts,
        }
        payload["time"] = round(time.time(), 3)
        return {"type": "fleet_status", "status": payload}
