"""Coordinator-side campaign state: tasks, leases, workers, counters.

This module is the cluster's brain, kept deliberately free of I/O: a
:class:`CampaignState` is a synchronous, single-threaded state machine
driven by the asyncio coordinator, with an injectable ``clock`` (tests
drive lease expiry with a fake clock, no sleeping) and an optional
journal observer through which **every state transition is persisted**.
Because the journal records task additions (with their wire payloads)
and terminal transitions, a killed coordinator rebuilds its exact
pending/done ledger by replaying the journal — leases die with the
process by design and their tasks simply return to the queue.

Task lifecycle::

    added ──> pending ──> leased ──> done
                 ^           │
                 │           ├─ attempt failed (retries left)
                 ├───────────┤
                 │           └─ lease expired / worker lost (a *steal*
                 │              when another worker then takes it)
                 └─ replayed from journal
              leased ──> failed          (attempts exhausted)
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["CampaignState", "TaskEntry", "Lease"]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


@dataclass
class TaskEntry:
    """One task's coordinator-side ledger row."""

    wire: dict                       # TaskSpec.to_wire() payload
    digest: str
    label: str
    state: str = PENDING
    attempts: int = 0                # failed attempts so far
    worker: "str | None" = None      # current lease holder
    last_worker: "str | None" = None
    error: "str | None" = None
    telemetry_digest: "str | None" = None
    warm: "dict | None" = None       # remote warm-image metadata


@dataclass
class Lease:
    """A live claim by one worker on one task."""

    lease_id: str
    digest: str
    worker: str
    attempt: int
    granted_at: float
    last_heartbeat: float
    progress: dict = field(default_factory=dict)


@dataclass
class WorkerRow:
    """What the fleet view knows about one worker."""

    worker: str
    meta: dict = field(default_factory=dict)
    connected: bool = True
    last_seen: float = 0.0
    done: int = 0
    failed: int = 0


class CampaignState:
    """The task DAG, lease table and fleet counters of one campaign.

    :param lease_timeout_s: a lease whose last heartbeat is older than
        this is revoked and its task re-queued.
    :param max_attempts: total attempts per task before it is failed.
    :param clock: monotonic time source (injectable for tests).
    :param journal: ``(event, fields)`` observer; every transition is
        emitted through it (a :class:`~repro.exec.journal.RunJournal`
        makes the campaign crash-recoverable).
    """

    def __init__(
        self,
        lease_timeout_s: float = 15.0,
        max_attempts: int = 3,
        clock=time.monotonic,
        journal=None,
    ) -> None:
        self.lease_timeout_s = lease_timeout_s
        self.max_attempts = max(1, max_attempts)
        self.clock = clock
        self.journal = journal
        self.tasks: "dict[str, TaskEntry]" = {}
        self.queue: "deque[str]" = deque()
        self.leases: "dict[str, Lease]" = {}
        self.workers: "dict[str, WorkerRow]" = {}
        self.steals = 0
        self.retries = 0
        self.expired = 0
        self.late_results = 0
        self._lease_seq = 0
        self._durations: list[float] = []
        self._started = clock()

    # -- journal ---------------------------------------------------------

    def _emit(self, event: str, **fields) -> None:
        if self.journal is not None:
            self.journal(event, fields)

    # -- task intake -----------------------------------------------------

    def add_task(self, wire: dict, _replay: bool = False) -> bool:
        """Register one wire-form task; ``False`` if already known."""
        digest = wire["digest"]
        if digest in self.tasks:
            return False
        entry = TaskEntry(wire=wire, digest=digest,
                          label=wire.get("label", digest))
        self.tasks[digest] = entry
        self.queue.append(digest)
        if not _replay:
            self._emit(
                "cluster_task_added", digest=digest, task=entry.label,
                spec=wire.get("spec"),
            )
        return True

    def set_warm(self, digest: str, warm: dict) -> None:
        """Attach remote warm-image metadata to a task's leases."""
        self.tasks[digest].warm = warm

    # -- worker registry -------------------------------------------------

    def worker_joined(self, worker: str, meta: "dict | None" = None) -> None:
        row = self.workers.get(worker)
        if row is None:
            row = WorkerRow(worker=worker)
            self.workers[worker] = row
        row.meta = dict(meta or {})
        row.connected = True
        row.last_seen = self.clock()
        self._emit("worker_joined", worker=worker, **row.meta)

    def worker_seen(self, worker: str) -> None:
        row = self.workers.get(worker)
        if row is not None:
            row.last_seen = self.clock()

    def worker_left(self, worker: str) -> int:
        """Connection gone: revoke the worker's leases, re-queue tasks."""
        row = self.workers.get(worker)
        if row is not None:
            row.connected = False
        revoked = [
            lease for lease in self.leases.values()
            if lease.worker == worker
        ]
        for lease in revoked:
            self._requeue(lease, "lease_released", reason="worker lost")
        self._emit("worker_left", worker=worker, revoked=len(revoked))
        return len(revoked)

    # -- leases ----------------------------------------------------------

    def next_lease(self, worker: str) -> "dict | None":
        """Grant the next pending task to ``worker`` (the work pull).

        Returns the lease message payload, or ``None`` when nothing is
        pending right now (in-flight leases may still re-queue later).
        """
        self.worker_seen(worker)
        while self.queue:
            digest = self.queue.popleft()
            entry = self.tasks.get(digest)
            if entry is None or entry.state != PENDING:
                continue  # superseded queue entry
            now = self.clock()
            self._lease_seq += 1
            lease_id = f"L{self._lease_seq}-{digest[:8]}"
            attempt = entry.attempts + 1
            lease = Lease(
                lease_id=lease_id, digest=digest, worker=worker,
                attempt=attempt, granted_at=now, last_heartbeat=now,
            )
            self.leases[lease_id] = lease
            entry.state = LEASED
            entry.worker = worker
            stolen = (
                entry.last_worker is not None
                and entry.last_worker != worker
            )
            if stolen:
                self.steals += 1
            self._emit(
                "lease_granted", digest=digest, task=entry.label,
                worker=worker, lease_id=lease_id, attempt=attempt,
                stolen=stolen,
            )
            payload = {
                "lease_id": lease_id,
                "task": entry.wire,
                "attempt": attempt,
                "lease_timeout_s": self.lease_timeout_s,
            }
            if entry.warm is not None:
                payload["warm"] = entry.warm
            return payload
        return None

    def heartbeat(self, lease_id: str, progress: "dict | None" = None) -> bool:
        """Renew a lease; ``False`` means it was revoked (stop working)."""
        lease = self.leases.get(lease_id)
        if lease is None:
            return False
        lease.last_heartbeat = self.clock()
        if progress:
            lease.progress = dict(progress)
        self.worker_seen(lease.worker)
        return True

    def expire_stale(self) -> list[str]:
        """Revoke every lease whose heartbeat went stale; re-queue tasks."""
        now = self.clock()
        revoked = []
        for lease in list(self.leases.values()):
            age = now - lease.last_heartbeat
            if age <= self.lease_timeout_s:
                continue
            self.expired += 1
            self._requeue(
                lease, "lease_expired",
                heartbeat_age_s=round(age, 3),
            )
            revoked.append(lease.digest)
        return revoked

    def _requeue(self, lease: Lease, event: str, **fields) -> None:
        del self.leases[lease.lease_id]
        entry = self.tasks[lease.digest]
        if entry.state == LEASED:
            entry.state = PENDING
            entry.last_worker = lease.worker
            entry.worker = None
            self.queue.append(entry.digest)
        self._emit(
            event, digest=lease.digest, task=entry.label,
            worker=lease.worker, lease_id=lease.lease_id,
            attempt=lease.attempt, **fields,
        )

    # -- task outcomes ---------------------------------------------------

    def resolve(self, lease_id: "str | None", digest: "str | None"):
        """The (entry, lease) a result/error frame refers to.

        A valid lease wins; otherwise fall back to the digest — a worker
        whose lease was revoked mid-run may still deliver a perfectly
        good result (a *late result*), which beats re-computing it.
        """
        lease = self.leases.get(lease_id) if lease_id else None
        if lease is not None:
            return self.tasks[lease.digest], lease
        if digest is not None:
            return self.tasks.get(digest), None
        return None, None

    def complete(
        self,
        lease_id: "str | None",
        digest: "str | None" = None,
        worker: "str | None" = None,
        telemetry_digest: "str | None" = None,
        duration_s: "float | None" = None,
        cached: bool = False,
    ) -> bool:
        """Mark a task done; ``False`` if it is unknown or already done."""
        entry, lease = self.resolve(lease_id, digest)
        if entry is None or entry.state == DONE:
            return False
        if lease is not None:
            worker = lease.worker
            del self.leases[lease.lease_id]
        else:
            self.late_results += 1
        entry.state = DONE
        entry.worker = None
        entry.last_worker = worker
        entry.telemetry_digest = telemetry_digest
        row = self.workers.get(worker) if worker else None
        if row is not None:
            row.done += 1
        if duration_s is not None:
            self._durations.append(float(duration_s))
        self._emit(
            "cluster_task_done", digest=entry.digest, task=entry.label,
            worker=worker, telemetry_digest=telemetry_digest,
            duration_s=duration_s, cached=cached, late=lease is None,
        )
        return True

    def fail(
        self,
        lease_id: "str | None",
        digest: "str | None" = None,
        error: str = "unknown error",
        fatal: bool = False,
    ) -> bool:
        """Record a failed attempt; returns ``True`` if re-queued.

        ``fatal`` skips remaining retries — used for structured
        determinism violations (store digest conflicts) where retrying
        cannot help.
        """
        entry, lease = self.resolve(lease_id, digest)
        if entry is None or entry.state in (DONE, FAILED):
            return False
        worker = lease.worker if lease is not None else None
        if lease is not None:
            del self.leases[lease.lease_id]
        entry.attempts += 1
        entry.error = error
        entry.worker = None
        entry.last_worker = worker or entry.last_worker
        row = self.workers.get(worker) if worker else None
        if row is not None:
            row.failed += 1
        if not fatal and entry.attempts < self.max_attempts:
            entry.state = PENDING
            self.queue.append(entry.digest)
            self.retries += 1
            self._emit(
                "cluster_task_retry", digest=entry.digest,
                task=entry.label, worker=worker, error=error,
                attempts=entry.attempts,
            )
            return True
        entry.state = FAILED
        self._emit(
            "cluster_task_exhausted", digest=entry.digest,
            task=entry.label, worker=worker, error=error,
            attempts=entry.attempts, fatal=fatal,
        )
        return False

    def mark_done_replay(
        self, digest: str, telemetry_digest: "str | None" = None
    ) -> None:
        """Replay/startup helper: a task whose result already exists."""
        entry = self.tasks.get(digest)
        if entry is None or entry.state == DONE:
            return
        entry.state = DONE
        entry.telemetry_digest = telemetry_digest

    def complete_from_store(
        self, digest: str, telemetry_digest: "str | None" = None
    ) -> bool:
        """A pending task's result was found already cached in the store."""
        entry = self.tasks.get(digest)
        if entry is None or entry.state == DONE:
            return False
        entry.state = DONE
        entry.worker = None
        entry.telemetry_digest = telemetry_digest
        self._emit(
            "cluster_task_done", digest=entry.digest, task=entry.label,
            worker=None, telemetry_digest=telemetry_digest,
            duration_s=None, cached=True, late=False,
        )
        return True

    # -- summary ---------------------------------------------------------

    def counts(self) -> dict:
        by_state = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for entry in self.tasks.values():
            by_state[entry.state] += 1
        return by_state

    @property
    def finished(self) -> bool:
        """Every known task is terminal (done or failed)."""
        counts = self.counts()
        return bool(self.tasks) and not counts[PENDING] and not counts[LEASED]

    def eta_s(self) -> "float | None":
        """Fleet-wide wall-clock estimate for the remaining tasks."""
        counts = self.counts()
        remaining = counts[PENDING] + counts[LEASED]
        if remaining == 0 or not self._durations:
            return None
        active = sum(1 for row in self.workers.values() if row.connected)
        mean = sum(self._durations) / len(self._durations)
        return remaining * mean / max(1, active)

    def snapshot(self) -> dict:
        """The live fleet-status payload (see :mod:`repro.cluster.fleet`)."""
        now = self.clock()
        counts = self.counts()
        eta = self.eta_s()
        workers = []
        for row in sorted(self.workers.values(), key=lambda r: r.worker):
            leases = [
                {
                    "digest": lease.digest,
                    "task": self.tasks[lease.digest].label,
                    "lease_id": lease.lease_id,
                    "attempt": lease.attempt,
                    "age_s": round(now - lease.granted_at, 3),
                    "heartbeat_age_s": round(
                        now - lease.last_heartbeat, 3
                    ),
                    "progress": lease.progress,
                }
                for lease in self.leases.values()
                if lease.worker == row.worker
            ]
            workers.append({
                "worker": row.worker,
                "connected": row.connected,
                "last_seen_s": round(now - row.last_seen, 3),
                "done": row.done,
                "failed": row.failed,
                "leases": leases,
            })
        failed = [
            {"task": e.label, "digest": e.digest, "error": e.error}
            for e in self.tasks.values() if e.state == FAILED
        ]
        mean = (
            sum(self._durations) / len(self._durations)
            if self._durations else None
        )
        return {
            "total": len(self.tasks),
            "pending": counts[PENDING],
            "leased": counts[LEASED],
            "done": counts[DONE],
            "failed": counts[FAILED],
            "steals": self.steals,
            "retries": self.retries,
            "expired": self.expired,
            "late_results": self.late_results,
            "lease_timeout_s": self.lease_timeout_s,
            "uptime_s": round(now - self._started, 3),
            "mean_task_s": round(mean, 4) if mean is not None else None,
            "eta_s": round(eta, 3) if eta is not None else None,
            "workers": workers,
            "failed_tasks": failed[:20],
        }

    # -- journal replay --------------------------------------------------

    @classmethod
    def replay(
        cls,
        events: "list[dict]",
        lease_timeout_s: float = 15.0,
        max_attempts: int = 3,
        clock=time.monotonic,
        journal=None,
    ) -> "CampaignState":
        """Rebuild campaign state from a journal's event stream.

        Only durable facts are restored: the task set (``cluster_task_
        added``), terminal outcomes (``cluster_task_done`` / ``cluster_
        task_exhausted``) and consumed attempts (``cluster_task_retry``).
        Leases are *not* restored — they belonged to the dead process;
        their tasks come back as pending, which is exactly the work-
        stealing recovery path.
        """
        state = cls(
            lease_timeout_s=lease_timeout_s, max_attempts=max_attempts,
            clock=clock, journal=journal,
        )
        for event in events:
            name = event.get("event")
            digest = event.get("digest")
            if name == "cluster_task_added" and event.get("spec"):
                state.add_task(
                    {
                        "digest": digest,
                        "label": event.get("task", digest),
                        "spec": event["spec"],
                    },
                    _replay=True,
                )
            elif name == "cluster_task_done" and digest in state.tasks:
                state.mark_done_replay(
                    digest, event.get("telemetry_digest")
                )
            elif name == "cluster_task_retry" and digest in state.tasks:
                state.tasks[digest].attempts = max(
                    state.tasks[digest].attempts,
                    int(event.get("attempts", 0)),
                )
            elif name == "cluster_task_exhausted" and digest in state.tasks:
                entry = state.tasks[digest]
                entry.state = FAILED
                entry.error = event.get("error")
                entry.attempts = max(
                    entry.attempts, int(event.get("attempts", 0))
                )
        return state
