"""Distributed campaign service: shard task matrices across hosts.

``repro.cluster`` promotes :mod:`repro.exec` from a single-host process
pool to a coordinator/worker fleet, without giving up the properties the
rest of the repo is built on — content-addressed tasks, byte-identical
results regardless of scheduling, journal-durable state, crash recovery
from checkpoints:

* :mod:`~repro.cluster.protocol` — length-prefixed JSON frames over
  plain asyncio streams (stdlib only, no new dependencies);
* :mod:`~repro.cluster.state` — the coordinator's lease table and task
  ledger, every transition journaled, rebuildable by journal replay;
* :mod:`~repro.cluster.coordinator` — the asyncio lease server, store
  authority and fleet-status endpoint;
* :mod:`~repro.cluster.worker` — pull-based (work-stealing) workers
  executing specs via :class:`~repro.exec.runner.ProcessPoolRunner`
  with per-task checkpoints and heartbeat progress frames;
* :mod:`~repro.cluster.store` — the content-addressed result + warm-
  image store, byte-compatible with the serial ``Campaign`` cache, with
  telemetry-digest conflict detection and single-flight claims;
* :mod:`~repro.cluster.fleet` — live fleet telemetry for
  ``python -m repro cluster status``.

Quickstart (one coordinator + two workers on localhost)::

    # terminal 1 — coordinator owning the campaign
    python -m repro cluster serve libq mcf \\
        --mechanisms baseline crow-cache --telemetry \\
        --store /tmp/fleet-store --journal /tmp/fleet.jsonl \\
        --port 7421 --exit-when-done

    # terminals 2+3 — workers (any host that can reach the coordinator)
    python -m repro cluster work --connect localhost:7421 \\
        --store /tmp/worker-a
    python -m repro cluster work --connect localhost:7421 \\
        --store /tmp/worker-b

    # anywhere — live fleet telemetry
    python -m repro cluster status --connect localhost:7421

Determinism contract: a cluster campaign produces exactly the telemetry
digests and cache bytes of a serial :class:`~repro.sim.campaign.Campaign`
over the same specs — scheduling, worker deaths, lease steals and
coordinator restarts can change wall-clock, never values; the store
raises :class:`~repro.errors.StoreMismatchError` the moment that
contract is broken.

Trust model: frames carry pickled task specs and results, so a
coordinator must only be exposed to hosts you would run the simulation
on directly (a lab LAN, not the internet).
"""

from repro.cluster.coordinator import Coordinator
from repro.cluster.fleet import FleetStatus, fetch_status, get_status
from repro.cluster.state import CampaignState
from repro.cluster.store import ResultStore, StoreClaim
from repro.cluster.worker import ClusterWorker

__all__ = [
    "CampaignState",
    "Coordinator",
    "ClusterWorker",
    "ResultStore",
    "StoreClaim",
    "FleetStatus",
    "fetch_status",
    "get_status",
]
