"""Exception hierarchy for the CROW reproduction library.

All exceptions raised by this package derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

__all__ = [
    "ReproError",
    "ConfigError",
    "TraceFormatError",
    "TimingViolationError",
    "ProtocolError",
    "DataIntegrityError",
    "CapacityError",
    "ConformanceError",
    "ProbeError",
    "SnapshotError",
    "ClusterError",
    "StoreMismatchError",
    "EstimateError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class TraceFormatError(ConfigError):
    """A trace file line could not be parsed.

    Raised by :mod:`repro.trace.fileio` with the offending location
    attached as structured attributes: ``path`` (str) and ``line``
    (1-based line number), so tools can point an editor at the defect
    instead of re-parsing the message.
    """

    def __init__(self, path, line: int, reason: str) -> None:
        super().__init__(f"{path}:{line}: {reason}")
        self.path = str(path)
        self.line = line
        self.reason = reason


class TimingViolationError(ReproError):
    """A DRAM command was issued before its timing constraints were met.

    The device-side substrate raises this to catch controller bugs: a real
    DRAM chip would silently corrupt data, so the simulator fails loudly.
    """


class ProtocolError(ReproError):
    """A DRAM command was issued in an illegal bank/rank state.

    Examples: activating an already-open bank, reading a closed bank, or
    issuing ``ACT-t`` for a row pair that is not tracked as duplicated.
    """


class DataIntegrityError(ReproError):
    """The functional cell array detected data corruption.

    Raised when a read observes cells whose charge decayed below the
    reliable-sensing threshold (retention expiry, unsafe partial-restore
    access, or RowHammer disturbance in the functional model).
    """


class CapacityError(ReproError):
    """A structural resource (copy rows, MSHRs, queue slots) was exhausted
    in a context where the caller is required to check for space first."""


class ConformanceError(ReproError):
    """The shadow protocol checker observed a spec violation.

    Raised in *strict* mode by :class:`repro.check.ProtocolChecker` when
    an issued command breaks a JEDEC-style timing constraint, a bank
    state-machine rule, or a CROW invariant. The attached ``violation``
    is the structured :class:`repro.check.CheckViolation` record.
    """

    def __init__(self, violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class ProbeError(ReproError):
    """A probe routine could not complete its measurement.

    Raised by :mod:`repro.probe` when a committed probe step is rejected
    by the device (a routine bug — exploratory attempts are sandboxed
    and report rejection as data instead), or when a search cannot
    bracket its target within the command budget.
    """


class SnapshotError(ReproError):
    """A snapshot could not be written, read, or applied.

    Raised by :mod:`repro.snapshot` for corrupt or truncated containers,
    format-version mismatches, and system configurations that cannot be
    serialized (functional cell arrays, command recorders, traces without
    provenance). Configuration *incompatibility* between a snapshot and
    the system restoring it raises :class:`ConfigError` instead.
    """


class ClusterError(ReproError):
    """A distributed-campaign operation failed.

    Raised by :mod:`repro.cluster` for malformed or oversized wire
    frames, unknown message types, wire payloads whose content digest
    does not match their claimed task identity, and store entries that
    cannot be served. Protocol-*content* disagreements between two
    computations of the same task raise the stricter
    :class:`StoreMismatchError` instead.
    """


class EstimateError(ReproError):
    """An energy/area estimation query could not be served.

    Raised by :mod:`repro.estimate` when no registered backend supports
    a query's component/action pair, or when the selected backend is
    missing a required attribute. Unknown components are *never* a
    silent zero — a zero estimate is indistinguishable from free
    hardware. Structured attributes: ``query`` (the offending
    :class:`repro.estimate.EstimateQuery`, or ``None``) and ``reasons``
    (tuple of per-backend refusal strings, empty when the failure is not
    an arbitration miss).
    """

    def __init__(self, message: str, query=None, reasons=()) -> None:
        super().__init__(message)
        self.query = query
        self.reasons = tuple(reasons)


class StoreMismatchError(ClusterError):
    """Two results for the same task digest disagree.

    The content-addressed store never silently overwrites: when a newly
    computed result's telemetry digest differs from an already-cached
    copy under the same task digest, determinism itself is broken
    (corrupt cache, diverging simulator builds across the fleet) and the
    conflict surfaces as this structured error. ``task_digest``,
    ``cached`` and ``computed`` carry the two fingerprints.
    """

    def __init__(self, task_digest: str, cached, computed) -> None:
        super().__init__(
            f"result conflict for task {task_digest}: cached telemetry "
            f"digest {cached!r} != newly computed {computed!r}; refusing "
            "to overwrite"
        )
        self.task_digest = task_digest
        self.cached = cached
        self.computed = computed
