"""Baseline comparison for the perf suite (the CI regression gate).

Exit-code contract (consumed by ``python -m repro perf`` and CI):

* 0 — composite within threshold of the baseline, digests match,
* 3 — performance regression (composite dropped more than the threshold),
* 4 — digest mismatch (simulated *behaviour* changed — a correctness
  problem, reported before and independently of any slowdown).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis import TextTable

__all__ = [
    "EXIT_DIGEST_MISMATCH",
    "EXIT_REGRESSION",
    "DEFAULT_THRESHOLD",
    "compare",
    "load_results",
]

EXIT_REGRESSION = 3
EXIT_DIGEST_MISMATCH = 4

#: Composite may drop this far below the baseline before the gate fires;
#: generous because the normalized scores still carry residual host noise.
DEFAULT_THRESHOLD = 0.15


def load_results(path: str | Path) -> dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    if schema != "repro-perf/1":
        raise ValueError(f"unsupported perf results schema: {schema!r}")
    return doc


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    progress: Any = print,
) -> int:
    """Print a delta table and return the exit code."""
    cur_cases = current["cases"]
    base_cases = baseline["cases"]
    shared = [name for name in base_cases if name in cur_cases]
    for name in base_cases:
        if name not in cur_cases:
            progress(f"warning: case {name!r} missing from current run")
    for name in cur_cases:
        if name not in base_cases:
            progress(f"warning: case {name!r} not in baseline (new case?)")

    mismatched = [
        name
        for name in shared
        if cur_cases[name]["digest"] != base_cases[name]["digest"]
    ]

    table = TextTable(
        "perf vs baseline",
        ["case", "base score", "cur score", "ratio", "wall(s)", "digest"],
    )
    for name in shared:
        base, cur = base_cases[name], cur_cases[name]
        ratio = cur["normalized_score"] / base["normalized_score"]
        table.add_row(
            name,
            f"{base['normalized_score']:.4f}",
            f"{cur['normalized_score']:.4f}",
            f"{ratio:.2f}x",
            f"{cur['wall_seconds']:.2f}",
            "ok" if cur["digest"] == base["digest"] else "MISMATCH",
        )
    composite_ratio = current["composite"] / baseline["composite"]
    table.add_row(
        "composite",
        f"{baseline['composite']:.4f}",
        f"{current['composite']:.4f}",
        f"{composite_ratio:.2f}x",
        "",
        "",
    )
    progress(table.render())

    if mismatched:
        progress(
            "DIGEST MISMATCH: simulated behaviour differs from the "
            f"baseline for: {', '.join(mismatched)}"
        )
        return EXIT_DIGEST_MISMATCH
    if composite_ratio < 1.0 - threshold:
        progress(
            f"PERF REGRESSION: composite {composite_ratio:.2f}x of "
            f"baseline (allowed floor {1.0 - threshold:.2f}x)"
        )
        return EXIT_REGRESSION
    progress(
        f"perf OK: composite {composite_ratio:.2f}x of baseline "
        f"(floor {1.0 - threshold:.2f}x)"
    )
    return 0
