"""The `repro perf` microbenchmark suite.

Runs a fixed matrix of small deterministic workloads through the full
simulator stack and reports throughput three ways per case:

* ``sim_cycles_per_sec`` — simulated memory-clock cycles per wall second,
* ``events_per_sec`` — retired instructions + served DRAM requests +
  refreshes per wall second,
* ``wall_seconds`` — best-of-``repeat`` end-to-end time (trace synthesis,
  functional prewarm, timed warm-up, and the measured region).

Raw throughputs are informative only — they depend on the host. The
*comparable* numbers are ``normalized_score`` (cycles/sec divided by the
calibrated spin-loop score of :mod:`repro.perf.calibrate`) and their
geometric-mean ``composite``, which a committed baseline can gate in CI.

Every case runs with telemetry enabled and embeds its
``telemetry_digest()`` in the result. The digest doubles as a correctness
oracle: an optimization that changes simulated behaviour shows up as a
digest mismatch against the baseline (exit code 4), distinct from a mere
slowdown (exit code 3).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.perf.calibrate import SPIN_ITERATIONS, spin_score_mops
from repro.sim.config import SystemConfig
from repro.sim.sweep import run_mix, run_workload

__all__ = [
    "CASES",
    "PerfCase",
    "SCHEMA",
    "run_suite",
    "serialize",
    "write_results",
]

SCHEMA = "repro-perf/1"

#: Wall-time noise on shared machines easily reaches ±30%; every timed
#: quantity in this module is therefore a best-of-N minimum.
DEFAULT_REPEAT = 2


@dataclass(frozen=True)
class PerfCase:
    """One deterministic workload in the perf matrix."""

    name: str
    workloads: tuple[str, ...]
    mechanism: str
    instructions: int
    warmup_instructions: int
    seed: int = 1


#: The fixed matrix: a single-core streaming workload (libquantum-like)
#: and a 4-core heterogeneous mix, each with the CROW in-DRAM cache off
#: and on. Small enough to finish in seconds, together they exercise the
#: core model, LLC, scheduler, DRAM timing machines, CROW mechanisms, and
#: the telemetry pipeline.
CASES: tuple[PerfCase, ...] = (
    PerfCase("libq-1c-base", ("libq",), "baseline", 20_000, 5_000),
    PerfCase("libq-1c-crow", ("libq",), "crow-cache", 20_000, 5_000),
    PerfCase(
        "mix-4c-base",
        ("libq", "mcf", "stream-copy", "milc"),
        "baseline",
        10_000,
        2_500,
    ),
    PerfCase(
        "mix-4c-crow",
        ("libq", "mcf", "stream-copy", "milc"),
        "crow-cache",
        10_000,
        2_500,
    ),
)


def _run_case_once(
    case: PerfCase, engine: str = "event"
) -> tuple[float, dict[str, Any]]:
    """One timed end-to-end run; returns (wall seconds, raw facts)."""
    config = SystemConfig(
        cores=len(case.workloads),
        mechanism=case.mechanism,
        seed=case.seed,
        telemetry=True,
        engine=engine,
    )
    start = time.perf_counter()
    if len(case.workloads) == 1:
        result = run_workload(
            case.workloads[0],
            config,
            instructions=case.instructions,
            warmup_instructions=case.warmup_instructions,
        )
    else:
        result = run_mix(
            list(case.workloads),
            config,
            instructions=case.instructions,
            warmup_instructions=case.warmup_instructions,
        )
    wall = time.perf_counter() - start
    stats = result.controller_stats
    events = (
        len(case.workloads) * case.instructions
        + stats.get("reads_served", 0)
        + stats.get("writes_served", 0)
        + stats.get("refreshes", 0)
    )
    return wall, {
        "digest": result.telemetry_digest(),
        "sim_cycles": result.cycles,
        "events": events,
    }


def run_suite(
    repeat: int = DEFAULT_REPEAT,
    progress: Any = None,
    cases: tuple[PerfCase, ...] = CASES,
    engine: str = "event",
) -> dict[str, Any]:
    """Run the matrix and return the (unserialized) results document.

    ``progress`` is an optional ``print``-like callable for live output.
    Deterministic facts (digest, cycles, events) must agree across the
    ``repeat`` runs of a case — disagreement means the simulator itself
    is non-deterministic, and raises immediately. ``engine`` selects the
    simulation engine; digests are engine-invariant, so results produced
    under either engine compare against the same baseline.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    spin = spin_score_mops()
    if progress is not None:
        progress(f"spin calibration: {spin:.1f} Mops")
    case_docs: dict[str, Any] = {}
    scores = []
    for case in cases:
        wall = math.inf
        facts: dict[str, Any] | None = None
        for _ in range(repeat):
            run_wall, run_facts = _run_case_once(case, engine)
            if facts is None:
                facts = run_facts
            elif facts != run_facts:
                raise RuntimeError(
                    f"case {case.name!r} is non-deterministic across "
                    f"repeats: {facts} != {run_facts}"
                )
            wall = min(wall, run_wall)
        assert facts is not None
        cycles_per_sec = facts["sim_cycles"] / wall
        score = cycles_per_sec / (spin * 1e6)
        scores.append(score)
        case_docs[case.name] = {
            **facts,
            "instructions": case.instructions,
            "wall_seconds": round(wall, 4),
            "sim_cycles_per_sec": round(cycles_per_sec, 1),
            "events_per_sec": round(facts["events"] / wall, 1),
            "normalized_score": round(score, 6),
        }
        if progress is not None:
            doc = case_docs[case.name]
            progress(
                f"{case.name}: {doc['wall_seconds']:.2f}s wall, "
                f"{doc['sim_cycles_per_sec']:,.0f} cyc/s, "
                f"score {doc['normalized_score']:.4f}"
            )
    composite = math.exp(sum(math.log(s) for s in scores) / len(scores))
    return {
        "schema": SCHEMA,
        "engine": engine,
        "spin": {
            "mops": round(spin, 3),
            "iterations": SPIN_ITERATIONS,
        },
        "repeat": repeat,
        "cases": case_docs,
        "composite": round(composite, 6),
    }


def serialize(doc: dict[str, Any]) -> str:
    """Byte-stable JSON: sorted keys, fixed indent, trailing newline."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_results(doc: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(serialize(doc))
