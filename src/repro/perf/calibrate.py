"""Machine-speed calibration for cross-machine perf comparison.

Benchmark numbers measured on two machines (or two CI runners) are not
directly comparable: the same simulator revision can be 3x faster on a
desktop than on a loaded CI container. The suite therefore reports every
throughput *normalized* by a calibrated spin-loop score — pure-Python
integer work whose speed tracks the interpreter + host combination the
simulator itself runs on. Normalized scores are stable across machines to
within measurement noise, so a committed baseline from one machine can
gate regressions on another.
"""

from __future__ import annotations

import time

__all__ = ["SPIN_ITERATIONS", "spin_score_mops"]

#: Iterations of the calibration loop (about 100 ms of work per pass on a
#: typical 2020s x86 core).
SPIN_ITERATIONS = 2_000_000


def _spin(iterations: int) -> int:
    """The calibration kernel: branchy integer arithmetic + a dict probe.

    Mirrors the simulator's instruction mix (small-int math, comparisons,
    dict lookups) rather than raw arithmetic, so the score moves with the
    operations the simulator actually spends time on.
    """
    table = {i: i * 3 for i in range(64)}
    acc = 0
    for i in range(iterations):
        v = table[i & 63]
        if v & 8:
            acc += v
        else:
            acc -= i & 15
    return acc


def spin_score_mops(
    iterations: int = SPIN_ITERATIONS, repeats: int = 3
) -> float:
    """Calibrated machine speed in millions of kernel iterations/second.

    Best-of-``repeats`` to shed scheduler noise; the *fastest* pass is the
    closest estimate of the machine's unloaded speed.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _spin(iterations)
        best = min(best, time.perf_counter() - start)
    return iterations / best / 1e6
