"""Performance microbenchmark suite + regression gate (internals §8).

``python -m repro perf`` runs a fixed deterministic workload matrix,
writes a byte-stable ``BENCH_perf.json``, and — with ``--compare`` —
gates CI on the machine-normalized composite score and on the telemetry
digests (the correctness oracle for hot-path optimizations).
"""

from repro.perf.calibrate import spin_score_mops
from repro.perf.compare import (
    DEFAULT_THRESHOLD,
    EXIT_DIGEST_MISMATCH,
    EXIT_REGRESSION,
    compare,
    load_results,
)
from repro.perf.suite import (
    CASES,
    PerfCase,
    run_suite,
    serialize,
    write_results,
)

__all__ = [
    "CASES",
    "DEFAULT_THRESHOLD",
    "EXIT_DIGEST_MISMATCH",
    "EXIT_REGRESSION",
    "PerfCase",
    "compare",
    "load_results",
    "run_suite",
    "serialize",
    "spin_score_mops",
    "write_results",
]
