"""CROW: A Low-Cost Substrate for Improving DRAM Performance, Energy
Efficiency, and Reliability — full Python reproduction of Hassan et al.,
ISCA 2019.

Quick start::

    from repro import SystemConfig, run_workload

    baseline = run_workload("h264-dec", SystemConfig(mechanism="baseline"))
    crow = run_workload("h264-dec", SystemConfig(mechanism="crow-cache"))
    print(f"speedup: {crow.speedup_over(baseline):.3f}x")

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.circuit` — analytical SPICE-substitute circuit model,
* :mod:`repro.dram` — LPDDR4 device substrate (timing state machines),
* :mod:`repro.controller` — memory controller with the mechanism hook,
* :mod:`repro.core` — the CROW substrate mechanisms (the contribution),
* :mod:`repro.baselines` — TL-DRAM, SALP-MASA, ChargeCache, ideal bounds,
* :mod:`repro.cpu` / :mod:`repro.trace` — trace-driven cores + workloads,
* :mod:`repro.energy` — DRAMPower-style energy accounting,
* :mod:`repro.sim` — system wiring, runner, metrics, sweep helpers.
"""

from repro.sim import (
    SimResult,
    System,
    SystemConfig,
    alone_ipcs,
    derive_trace_seed,
    run_mix,
    run_workload,
    weighted_speedup,
)
from repro.trace import MIX_GROUPS, WORKLOADS, build_mix, workload

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "System",
    "SimResult",
    "run_workload",
    "run_mix",
    "alone_ipcs",
    "derive_trace_seed",
    "weighted_speedup",
    "WORKLOADS",
    "MIX_GROUPS",
    "workload",
    "build_mix",
    "__version__",
]
