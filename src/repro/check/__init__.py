"""Runtime DRAM/CROW protocol-conformance checking.

This package provides an *independent* shadow implementation of the
DRAM command-legality rules the simulator is supposed to obey: JEDEC
inter-command timing, bank/row state-machine legality, and the CROW
duplicate-row invariants from the paper. A
:class:`~repro.check.checker.ProtocolChecker` attaches to a
:class:`~repro.dram.device.DramChannel` via the same observer tap used
by telemetry and validates every issued command, producing structured
:class:`CheckViolation` records (or raising
:class:`~repro.errors.ConformanceError` in strict mode).

:mod:`repro.check.scenarios` adds randomized short-simulation scenarios
shared by the ``python -m repro check`` CLI and the hypothesis fuzz
layer in ``tests/fuzz/``.
"""

from repro.check.checker import REFRESH_POSTPONE_SLACK, ProtocolChecker
from repro.check.violations import CheckReport, CheckViolation

__all__ = [
    "ProtocolChecker",
    "CheckReport",
    "CheckViolation",
    "REFRESH_POSTPONE_SLACK",
]
