"""Per-plugin conformance invariants for the shadow checker.

A :class:`CheckerInvariant` is a small shadow state machine a mechanism
plugin attaches to the :class:`~repro.check.ProtocolChecker` of each
channel (via ``MechanismPlugin.checker_invariant``). It observes the
same issued command stream as the base checker, mirrors the mechanism's
*observable contract* independently of the mechanism's own code, and
flags deviations through the checker's violation plumbing — in strict
mode the first flag raises :class:`~repro.errors.ConformanceError`.

Invariants must be deterministic functions of the observed stream (the
checker can be snapshotted mid-run and restored in a fresh process, so
all mutable state has to round-trip through ``state_dict``), and they
must observe from cycle 0: the mechanism's policy state also evolves
from cycle 0, warm-up only resets *statistics*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.check.checker import ProtocolChecker
    from repro.dram.commands import Command

__all__ = ["CheckerInvariant"]


class CheckerInvariant:
    """Base invariant: observes commands, flags via the owning checker."""

    #: Constraint-name prefix for violations this invariant raises.
    name = "invariant"

    def on_command(
        self, checker: "ProtocolChecker", now: int, command: "Command"
    ) -> None:
        """Called for every issued command, after the base checks."""

    def finalize(self, checker: "ProtocolChecker", end_cycle: int) -> None:
        """End-of-run whole-window checks (e.g. coverage pro rata)."""

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Mutable invariant state; rides the checker's state dict."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (base: nothing)."""
