"""Structured conformance-violation records and reports.

A :class:`CheckViolation` pins one broken rule to the command that broke
it: the issue cycle, the bank, the constraint name, the offending command
(and, for inter-command constraints, the prior command it conflicts
with), plus the required/actual spacing and the resulting *slack* —
``actual - required``, negative exactly when the rule is violated. The
record renders to one line, so a report reads like a protocol analyzer
log and serializes cleanly to JSON for CI artifacts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["CheckViolation", "CheckReport"]

#: Bank/rank state-machine rules (everything else non-CROW, non-refresh
#: is an inter-command timing constraint).
_STATE_CONSTRAINTS = frozenset(
    ("double-act", "pre-closed-bank", "closed-bank-access", "ref-open-bank")
)


@dataclass(frozen=True)
class CheckViolation:
    """One protocol/timing/CROW rule broken by an issued command."""

    cycle: int
    bank: int
    constraint: str
    command: str
    #: The earlier command this one conflicts with ("" for state rules).
    prior: str = ""
    #: Minimum legal spacing in cycles (None for non-timing rules).
    required: int | None = None
    #: Observed spacing in cycles (None for non-timing rules).
    actual: int | None = None
    message: str = ""

    @property
    def slack(self) -> int | None:
        """``actual - required``; negative when the constraint failed."""
        if self.required is None or self.actual is None:
            return None
        return self.actual - self.required

    @property
    def category(self) -> str:
        """Coarse class of the broken rule.

        One of ``"timing"`` (inter-command spacing), ``"state"`` (bank
        state-machine legality), ``"refresh"`` (whole-window cadence and
        coverage) or ``"crow"`` (copy-row invariants). A raw probing
        host observes this class — a real device would reject, corrupt
        or misbehave differently per class — without being told *which*
        named constraint tripped, which is the device-knowledge boundary
        :mod:`repro.probe` inference respects.
        """
        if self.constraint.startswith("crow-"):
            return "crow"
        if self.constraint in ("tREFI", "refresh-coverage"):
            return "refresh"
        if self.constraint in _STATE_CONSTRAINTS:
            return "state"
        return "timing"

    def __str__(self) -> str:
        pair = f"{self.prior}->{self.command}" if self.prior else self.command
        text = (
            f"cycle {self.cycle} bank {self.bank}: {self.constraint} "
            f"violated by {pair}"
        )
        if self.required is not None and self.actual is not None:
            text += (
                f" (required >= {self.required}, got {self.actual}, "
                f"slack {self.slack})"
            )
        if self.message:
            text += f" -- {self.message}"
        return text

    def to_dict(self) -> dict:
        """JSON-ready representation (includes the derived slack)."""
        data = asdict(self)
        data["slack"] = self.slack
        data["category"] = self.category
        return data


@dataclass
class CheckReport:
    """Accumulated outcome of checking one command stream."""

    commands: int = 0
    violations: list[CheckViolation] = field(default_factory=list)
    #: Violations beyond the recording cap (counted, not stored).
    truncated: int = 0

    @property
    def ok(self) -> bool:
        """Whether the stream conformed (no violations at all)."""
        return not self.violations and not self.truncated

    @property
    def total_violations(self) -> int:
        """Recorded plus truncated violation count."""
        return len(self.violations) + self.truncated

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Fold another channel's report into this one (returns self)."""
        self.commands += other.commands
        self.violations.extend(other.violations)
        self.truncated += other.truncated
        return self

    def by_constraint(self) -> dict[str, int]:
        """Violation counts keyed by constraint name (sorted keys)."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.constraint] = (
                counts.get(violation.constraint, 0) + 1
            )
        return dict(sorted(counts.items()))

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if self.ok:
            return f"{self.commands} commands checked, conformant"
        head = self.violations[0]
        return (
            f"{self.commands} commands checked, "
            f"{self.total_violations} violation(s); first: {head}"
        )

    def to_dict(self) -> dict:
        """JSON-ready export (deterministic key order per record)."""
        return {
            "commands": self.commands,
            "ok": self.ok,
            "total_violations": self.total_violations,
            "truncated": self.truncated,
            "by_constraint": self.by_constraint(),
            "violations": [v.to_dict() for v in self.violations],
        }

    def write_json(self, path: "str | Path") -> None:
        """Write the export as stable, indented JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
