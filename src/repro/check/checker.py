"""Shadow DRAM/CROW protocol-conformance oracle.

:class:`ProtocolChecker` observes every :class:`~repro.dram.commands.Command`
a channel issues (via the same observer tap the telemetry
:class:`~repro.telemetry.EventTrace` uses) and independently re-derives,
from the JEDEC-style timing parameters and the paper's CROW rules, whether
each command was legal. It deliberately shares **no scheduling or
earliest-issue code** with :mod:`repro.controller` or
:mod:`repro.dram.device`: the device's own enforcement and this checker
are two implementations of the same spec, so a bookkeeping bug in either
shows up as a disagreement instead of passing silently.

Three rule families are checked:

* **inter-command timing** — tRCD, tRAS, tRP, tRC, tRRD, tFAW (sliding
  4-ACT window), tCCD, tWTR, tRTP, tWR, read/write turnaround, tRFC and
  the tREFI refresh cadence, with the CROW-adjusted
  :class:`~repro.dram.commands.ActTimings` applied for ``ACT_C``/``ACT_T``;
* **bank/row state legality** — no column access to a closed bank, no
  activation of an open bank, no precharge of a closed bank, refresh only
  with every bank precharged;
* **CROW invariants** — ``ACT_T`` only on a row pair the stream (or a
  seeded boot-time mapping) established as duplicates, ``ACT_C``
  destinations must be in-range copy rows, no single-row activation of a
  partially-restored row or eviction of a partially-restored pair, weak
  rows never activated while the extended refresh window is in effect,
  and full refresh-window row coverage.

Violations become structured :class:`~repro.check.CheckViolation`
records. In ``strict`` mode the first violation raises
:class:`~repro.errors.ConformanceError`; in ``report`` mode they
accumulate on the :class:`~repro.check.CheckReport`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.dram.commands import ActTimings, Command, CommandKind, RowId, RowKind
from repro.dram.geometry import DramGeometry
from repro.dram.timing import REF_COMMANDS_PER_WINDOW, TimingParameters
from repro.errors import ConfigError, ConformanceError
from repro.check.violations import CheckReport, CheckViolation

if TYPE_CHECKING:
    from repro.check.invariants import CheckerInvariant

__all__ = ["ProtocolChecker", "REFRESH_POSTPONE_SLACK"]

_FAR_PAST = -(10**9)

#: JEDEC allows up to 8 REF commands to be postponed; a gap beyond
#: ``(1 + slack) * tREFI`` between consecutive REFs means rows can no
#: longer all be covered within their window.
REFRESH_POSTPONE_SLACK = 8


class _ShadowSlot:
    """Shadow state of one row buffer (a bank, or a SALP subarray)."""

    __slots__ = (
        "open_rows",
        "act_cycle",
        "act_cmd",
        "trcd",
        "tras_full",
        "tras_early",
        "twr",
        "twr_full",
        "ready_act",
        "pre_cycle",
        "last_rd",
        "last_wr",
        "prev_act_gap",
    )

    def __init__(self) -> None:
        self.open_rows: tuple[RowId, ...] | None = None
        self.act_cycle = _FAR_PAST
        self.act_cmd = ""
        self.trcd = 0
        self.tras_full = 0
        self.tras_early = 0
        self.twr = 0
        self.twr_full = 0
        self.ready_act = 0
        self.pre_cycle = _FAR_PAST
        self.last_rd = _FAR_PAST
        self.last_wr = _FAR_PAST
        #: Effective tRC floor set by the previous activation of this
        #: slot: its earliest-precharge tRAS plus tRP.
        self.prev_act_gap: tuple[int, int] | None = None

    def state_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def load_state_dict(self, state: dict) -> None:
        for name in self.__slots__:
            setattr(self, name, state[name])


class ProtocolChecker:
    """Conformance oracle for one channel's issued command stream."""

    def __init__(
        self,
        geometry: DramGeometry,
        timing: TimingParameters,
        *,
        salp: bool = False,
        expect_refresh: bool = True,
        extended_refresh: bool = False,
        weak_rows: "frozenset[tuple[int, int]] | set[tuple[int, int]]" = (),
        assume_ideal_duplicates: bool = False,
        invariants: "tuple[CheckerInvariant, ...]" = (),
        mode: str = "strict",
        max_violations: int = 200,
    ) -> None:
        if mode not in ("strict", "report"):
            raise ConfigError(
                f"mode must be 'strict' or 'report', got {mode!r}"
            )
        if max_violations < 1:
            raise ConfigError("max_violations must be >= 1")
        self.geometry = geometry
        self.timing = timing
        self.salp = salp
        self.expect_refresh = expect_refresh
        self.extended_refresh = extended_refresh
        #: Retention-weak regular rows as ``(bank, bank_row)`` pairs;
        #: activating one while the extended window is in effect is a
        #: violation (the row cannot hold data that long).
        self.weak_rows = frozenset(weak_rows)
        #: The ideal-CROW-cache bound fabricates ``ACT_T`` pairs without
        #: ever copying (100% hit rate by construction); the duplicate-
        #: mapping invariant is vacuous for it.
        self.assume_ideal_duplicates = assume_ideal_duplicates
        #: Mechanism-contributed invariants (``repro.check.invariants``):
        #: shadow mirrors of a plugin's observable contract, dispatched
        #: after the base checks of every observed command.
        self.invariants = tuple(invariants)
        self.mode = mode
        self.max_violations = max_violations
        self.report = CheckReport()

        self._base = ActTimings(
            trcd=timing.trcd,
            tras_full=timing.tras,
            tras_early=timing.tras,
            twr=timing.twr,
        )
        # Fixed compound spacings, derived once from the spec.
        self._wr_recovery_base = timing.tcwl + timing.tbl
        self._wr_to_rd = timing.tcwl + timing.tbl + timing.twtr
        self._rd_to_wr = timing.tcl + timing.tbl + 2 - timing.tcwl

        # Shadow row-buffer state: one slot per bank, or per (bank,
        # subarray) under SALP.
        self._slots: dict[tuple[int, int], _ShadowSlot] = {}
        # Channel/rank scope.
        self._bus_free = 0
        self._act_window: deque[int] = deque(maxlen=4)
        self._last_act = _FAR_PAST
        self._last_rd = _FAR_PAST
        self._last_wr = _FAR_PAST
        self._ref_busy_until = 0
        self._last_ref = 0
        self._refs_seen = 0
        self._refresh_cursor = 0
        self._rows_per_ref = max(
            1, geometry.rows_per_bank // REF_COMMANDS_PER_WINDOW
        )
        # CROW shadow table: (bank, subarray, copy_index) -> regular row
        # index within the subarray, learned from ACT_C commands and
        # seeded boot-time remaps.
        self._crow_map: dict[tuple[int, int, int], int] = {}
        #: Copy rows serving boot-time/dynamic remaps (plain-ACT legal).
        self._remapped_copies: set[tuple[int, int, int]] = set()
        #: Rows whose last close left them partially restored.
        self._partial: set[tuple[int, RowId]] = set()

    # ------------------------------------------------------------------
    # Seeding (CROW-ref boot state)
    # ------------------------------------------------------------------
    def seed_remap(self, bank: int, regular_row: int, copy: RowId) -> None:
        """Register a boot-time weak-row remap (CROW-ref profiling).

        ``regular_row`` is the bank-level regular row number now served by
        ``copy``; plain activations of that copy row become legal.
        """
        if copy.kind is not RowKind.COPY:
            raise ConfigError("seed_remap expects a copy row")
        index = regular_row % self.geometry.rows_per_subarray
        key = (bank, copy.subarray, copy.index)
        self._crow_map[key] = index
        self._remapped_copies.add(key)

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------
    def _violate(
        self,
        cycle: int,
        bank: int,
        constraint: str,
        command: str,
        prior: str = "",
        required: int | None = None,
        actual: int | None = None,
        message: str = "",
    ) -> None:
        violation = CheckViolation(
            cycle=cycle,
            bank=bank,
            constraint=constraint,
            command=command,
            prior=prior,
            required=required,
            actual=actual,
            message=message,
        )
        if len(self.report.violations) < self.max_violations:
            self.report.violations.append(violation)
        else:
            self.report.truncated += 1
        if self.mode == "strict":
            raise ConformanceError(violation)

    def violate(
        self,
        cycle: int,
        bank: int,
        constraint: str,
        command: str,
        prior: str = "",
        required: int | None = None,
        actual: int | None = None,
        message: str = "",
    ) -> None:
        """Public violation entry for mechanism invariants.

        Same plumbing as the checker's own checks: the violation lands
        in the report, and strict mode raises
        :class:`~repro.errors.ConformanceError`.
        """
        self._violate(
            cycle, bank, constraint, command, prior,
            required=required, actual=actual, message=message,
        )

    def _check_gap(
        self,
        now: int,
        bank: int,
        constraint: str,
        command: str,
        prior: str,
        since: int,
        required: int,
    ) -> None:
        """Flag ``command`` if fewer than ``required`` cycles passed."""
        if since == _FAR_PAST:
            return
        actual = now - since
        if actual < required:
            self._violate(
                now, bank, constraint, command, prior, required, actual
            )

    # ------------------------------------------------------------------
    # Slot addressing
    # ------------------------------------------------------------------
    def _slot(self, bank: int, subarray: int) -> _ShadowSlot:
        key = (bank, subarray if self.salp else 0)
        slot = self._slots.get(key)
        if slot is None:
            slot = _ShadowSlot()
            self._slots[key] = slot
        return slot

    def _slot_for(self, command: Command) -> _ShadowSlot:
        if not self.salp:
            return self._slot(command.bank, 0)
        if command.kind.is_activation:
            return self._slot(command.bank, command.rows[0].subarray)
        subarray = command.subarray if command.subarray is not None else 0
        return self._slot(command.bank, subarray)

    # ------------------------------------------------------------------
    # Observation entry point
    # ------------------------------------------------------------------
    def observe(self, now: int, command: Command) -> None:
        """Check one issued command and advance the shadow state."""
        self.report.commands += 1
        kind = command.kind
        name = kind.name
        bank = command.bank
        if now < self._bus_free:
            self._violate(
                now, bank, "cmd-bus", name, "",
                required=self._bus_free, actual=now,
                message="command bus still carrying the previous command",
            )
        if kind is not CommandKind.REF:
            self._check_gap(
                now, bank, "tRFC", name, "REF",
                self._ref_busy_until - self.timing.trfc
                if self._ref_busy_until else _FAR_PAST,
                self.timing.trfc,
            )
        if kind is CommandKind.ACT:
            self._observe_act(now, command)
        elif kind in (CommandKind.ACT_C, CommandKind.ACT_T):
            self._observe_crow_act(now, command)
        elif kind in (CommandKind.RD, CommandKind.WR):
            self._observe_col(now, command)
        elif kind is CommandKind.PRE:
            self._observe_pre(now, command)
        elif kind is CommandKind.REF:
            self._observe_ref(now, command)
        bus_cycles = 2 if kind in (CommandKind.ACT_C, CommandKind.ACT_T) else 1
        self._bus_free = max(self._bus_free, now + bus_cycles)
        for invariant in self.invariants:
            invariant.on_command(self, now, command)

    # ------------------------------------------------------------------
    # Activations
    # ------------------------------------------------------------------
    def _activation_timing_checks(
        self, now: int, command: Command, slot: _ShadowSlot
    ) -> bool:
        """Shared ACT/ACT_C/ACT_T checks; False when state must not move."""
        name = command.kind.name
        bank = command.bank
        if slot.open_rows is not None:
            self._violate(
                now, bank, "double-act", name, slot.act_cmd,
                message=f"bank already open on {slot.open_rows}",
            )
            return False
        if now < slot.ready_act:
            prior = "REF" if slot.pre_cycle == _FAR_PAST else "PRE"
            since = (
                slot.pre_cycle
                if prior == "PRE"
                else slot.ready_act - self.timing.trfc
            )
            required = slot.ready_act - since
            self._violate(
                now, bank, "tRP", name, prior, required, now - since,
            )
        if slot.prev_act_gap is not None:
            prev_cycle, trc = slot.prev_act_gap
            self._check_gap(
                now, bank, "tRC", name, slot.act_cmd or "ACT",
                prev_cycle, trc,
            )
        self._check_gap(
            now, bank, "tRRD", name, "ACT", self._last_act,
            self.timing.trrd,
        )
        if len(self._act_window) == 4:
            self._check_gap(
                now, bank, "tFAW", name, "ACT", self._act_window[0],
                self.timing.tfaw,
            )
        return True

    def _weak_row_check(self, now: int, command: Command) -> None:
        if not self.extended_refresh or not self.weak_rows:
            return
        rows_per_subarray = self.geometry.rows_per_subarray
        for row in command.rows:
            if row.kind is not RowKind.REGULAR:
                continue
            bank_row = row.subarray * rows_per_subarray + row.index
            if (command.bank, bank_row) in self.weak_rows:
                self._violate(
                    now, command.bank, "crow-ref-weak-row",
                    command.kind.name,
                    message=(
                        f"weak regular row {bank_row} activated while the "
                        f"extended refresh window is in effect"
                    ),
                )

    def _partial_single_check(
        self, now: int, command: Command, row: RowId
    ) -> None:
        if (command.bank, row) in self._partial:
            self._violate(
                now, command.bank, "crow-partial-single-act",
                command.kind.name,
                message=(
                    f"{row} was left partially restored and is being "
                    f"sensed without its duplicate pair"
                ),
            )

    def _apply_activation(
        self, now: int, command: Command, slot: _ShadowSlot
    ) -> None:
        timings = command.timings or self._base
        slot.open_rows = command.rows
        slot.act_cycle = now
        slot.act_cmd = command.kind.name
        slot.trcd = timings.trcd
        slot.tras_full = timings.tras_full
        slot.tras_early = timings.tras_early
        slot.twr = timings.twr
        slot.twr_full = timings.effective_twr_full
        slot.last_rd = _FAR_PAST
        slot.last_wr = _FAR_PAST
        slot.prev_act_gap = (now, timings.tras_early + self.timing.trp)
        self._act_window.append(now)
        self._last_act = now

    def _observe_act(self, now: int, command: Command) -> None:
        slot = self._slot_for(command)
        if not self._activation_timing_checks(now, command, slot):
            return
        row = command.rows[0]
        if row.kind is RowKind.COPY:
            key = (command.bank, row.subarray, row.index)
            if key not in self._crow_map:
                self._violate(
                    now, command.bank, "crow-act-copy-unmapped", "ACT",
                    message=(
                        f"copy row {row} activated but no duplicate or "
                        f"remap currently binds it to a regular row"
                    ),
                )
        self._weak_row_check(now, command)
        self._partial_single_check(now, command, row)
        self._apply_activation(now, command, slot)

    def _observe_crow_act(self, now: int, command: Command) -> None:
        slot = self._slot_for(command)
        if not self._activation_timing_checks(now, command, slot):
            return
        bank = command.bank
        name = command.kind.name
        source, dest = command.rows
        copy_rows = self.geometry.copy_rows_per_subarray
        if dest.kind is not RowKind.COPY or not 0 <= dest.index < copy_rows:
            self._violate(
                now, bank, "crow-copy-range", name,
                message=(
                    f"destination {dest} is not one of the subarray's "
                    f"{copy_rows} copy rows"
                ),
            )
        elif source.subarray != dest.subarray:
            self._violate(
                now, bank, "crow-subarray-mismatch", name,
                message=f"{source} and {dest} are in different subarrays",
            )
        elif command.kind is CommandKind.ACT_T:
            key = (bank, dest.subarray, dest.index)
            mapped = self._crow_map.get(key)
            if not self.assume_ideal_duplicates and (
                mapped != source.index or source.kind is not RowKind.REGULAR
            ):
                self._violate(
                    now, bank, "crow-act-t-unmapped", name,
                    message=(
                        f"{dest} is not currently a duplicate of {source} "
                        f"(maps regular index {mapped})"
                    ),
                )
        else:  # ACT_C establishes/overwrites the duplicate mapping.
            key = (bank, dest.subarray, dest.index)
            old = self._crow_map.get(key)
            if old is not None:
                old_regular = RowId(RowKind.REGULAR, dest.subarray, old)
                if (bank, old_regular) in self._partial:
                    self._violate(
                        now, bank, "crow-evict-partial", name,
                        message=(
                            f"{dest} evicted while its pair with "
                            f"{old_regular} was only partially restored"
                        ),
                    )
            self._partial_single_check(now, command, source)
            self._crow_map[key] = source.index
            self._remapped_copies.discard(key)
            self._partial.discard((bank, dest))
        self._weak_row_check(now, command)
        self._apply_activation(now, command, slot)

    # ------------------------------------------------------------------
    # Column accesses
    # ------------------------------------------------------------------
    def _observe_col(self, now: int, command: Command) -> None:
        slot = self._slot_for(command)
        name = command.kind.name
        bank = command.bank
        if slot.open_rows is None:
            self._violate(
                now, bank, "closed-bank-access", name,
                message="column access with no open row",
            )
            return
        self._check_gap(
            now, bank, "tRCD", name, slot.act_cmd, slot.act_cycle, slot.trcd
        )
        if command.kind is CommandKind.RD:
            self._check_gap(
                now, bank, "tCCD", "RD", "RD", self._last_rd,
                self.timing.tccd,
            )
            self._check_gap(
                now, bank, "tWTR", "RD", "WR", self._last_wr,
                self._wr_to_rd,
            )
            slot.last_rd = now
            self._last_rd = now
        else:
            self._check_gap(
                now, bank, "tCCD", "WR", "WR", self._last_wr,
                self.timing.tccd,
            )
            self._check_gap(
                now, bank, "rd-wr-turnaround", "WR", "RD", self._last_rd,
                self._rd_to_wr,
            )
            slot.last_wr = now
            self._last_wr = now

    # ------------------------------------------------------------------
    # Precharge
    # ------------------------------------------------------------------
    def _observe_pre(self, now: int, command: Command) -> None:
        slot = self._slot_for(command)
        bank = command.bank
        if slot.open_rows is None:
            self._violate(
                now, bank, "pre-closed-bank", "PRE",
                message="precharge of a bank with no open row",
            )
            return
        self._check_gap(
            now, bank, "tRAS", "PRE", slot.act_cmd, slot.act_cycle,
            slot.tras_early,
        )
        self._check_gap(
            now, bank, "tRTP", "PRE", "RD", slot.last_rd, self.timing.trtp
        )
        if slot.last_wr != _FAR_PAST:
            self._check_gap(
                now, bank, "tWR", "PRE", "WR", slot.last_wr,
                self._wr_recovery_base + slot.twr,
            )
        fully = now - slot.act_cycle >= slot.tras_full
        if fully and slot.last_wr != _FAR_PAST:
            fully = (
                now - slot.last_wr
                >= self._wr_recovery_base + slot.twr_full
            )
        for row in slot.open_rows:
            if fully:
                self._partial.discard((bank, row))
            else:
                self._partial.add((bank, row))
        slot.open_rows = None
        slot.pre_cycle = now
        slot.ready_act = now + self.timing.trp

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def _observe_ref(self, now: int, command: Command) -> None:
        if now < self._ref_busy_until:
            self._violate(
                now, -1, "tRFC", "REF", "REF",
                required=self.timing.trfc,
                actual=now - (self._ref_busy_until - self.timing.trfc),
            )
        open_banks = [
            key for key, slot in self._slots.items()
            if slot.open_rows is not None
        ]
        if open_banks:
            self._violate(
                now, open_banks[0][0], "ref-open-bank", "REF",
                message=(
                    f"{len(open_banks)} row buffer(s) still open at REF"
                ),
            )
            return
        for (bank_key, _), slot in self._slots.items():
            if now < slot.ready_act:
                self._violate(
                    now, bank_key, "tRP", "REF", "PRE",
                    required=self.timing.trp,
                    actual=now - slot.pre_cycle
                    if slot.pre_cycle != _FAR_PAST else None,
                )
                break
        if self.expect_refresh:
            allowed = (1 + REFRESH_POSTPONE_SLACK) * self.timing.trefi
            gap = now - self._last_ref
            if gap > allowed:
                self._violate(
                    now, -1, "tREFI", "REF", "REF",
                    required=-allowed, actual=-gap,
                    message=(
                        f"{gap} cycles since the previous REF exceeds the "
                        f"postponement bound of {allowed}"
                    ),
                )
        self._last_ref = now
        self._refs_seen += 1
        done = now + self.timing.trfc
        self._ref_busy_until = done
        for slot in self._slots.values():
            slot.ready_act = max(slot.ready_act, done)
        # Refresh fully restores the covered rows (and their duplicates).
        start = self._refresh_cursor
        stop = start + self._rows_per_ref
        self._refresh_cursor = stop % self.geometry.rows_per_bank
        if self._partial:
            rows_per_subarray = self.geometry.rows_per_subarray
            restored = []
            for bank, row in self._partial:
                if row.kind is RowKind.REGULAR:
                    bank_row = row.subarray * rows_per_subarray + row.index
                else:
                    mapped = self._crow_map.get(
                        (bank, row.subarray, row.index)
                    )
                    if mapped is None:
                        continue
                    bank_row = row.subarray * rows_per_subarray + mapped
                if start <= bank_row < stop:
                    restored.append((bank, row))
            for key in restored:
                self._partial.discard(key)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Shadow-oracle state; loaded wholesale after construction
        (``seed_remap`` boot state is part of ``_crow_map`` and is simply
        overwritten by the saved map, which includes it)."""
        return {
            "slots": {
                key: slot.state_dict() for key, slot in self._slots.items()
            },
            "bus_free": self._bus_free,
            "act_window": list(self._act_window),
            "last_act": self._last_act,
            "last_rd": self._last_rd,
            "last_wr": self._last_wr,
            "ref_busy_until": self._ref_busy_until,
            "last_ref": self._last_ref,
            "refs_seen": self._refs_seen,
            "refresh_cursor": self._refresh_cursor,
            "crow_map": dict(self._crow_map),
            "remapped_copies": sorted(self._remapped_copies),
            "partial": list(self._partial),
            "report": {
                "violations": list(self.report.violations),
                "commands": self.report.commands,
                "truncated": self.report.truncated,
            },
            "invariants": [inv.state_dict() for inv in self.invariants],
        }

    def load_state_dict(self, state: dict) -> None:
        self._slots = {}
        for key, slot_state in state["slots"].items():
            slot = _ShadowSlot()
            slot.load_state_dict(slot_state)
            self._slots[tuple(key)] = slot
        self._bus_free = state["bus_free"]
        self._act_window = deque(state["act_window"], maxlen=4)
        self._last_act = state["last_act"]
        self._last_rd = state["last_rd"]
        self._last_wr = state["last_wr"]
        self._ref_busy_until = state["ref_busy_until"]
        self._last_ref = state["last_ref"]
        self._refs_seen = state["refs_seen"]
        self._refresh_cursor = state["refresh_cursor"]
        self._crow_map = dict(state["crow_map"])
        self._remapped_copies = set(
            tuple(k) for k in state["remapped_copies"]
        )
        self._partial = set(tuple(p) for p in state["partial"])
        self.report.violations = list(state["report"]["violations"])
        self.report.commands = state["report"]["commands"]
        self.report.truncated = state["report"]["truncated"]
        # Snapshots written before invariants existed lack the key.
        for invariant, inv_state in zip(
            self.invariants, state.get("invariants", ())
        ):
            invariant.load_state_dict(inv_state)

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def finalize(self, end_cycle: int) -> CheckReport:
        """Run whole-window checks and return the report.

        Verifies full refresh-window row coverage pro rata: over
        ``end_cycle`` elapsed cycles the stream must contain at least
        ``end_cycle / tREFI`` REF commands, minus the JEDEC postponement
        allowance — otherwise some rows outlive their refresh window.
        """
        if self.expect_refresh:
            required = end_cycle // self.timing.trefi - REFRESH_POSTPONE_SLACK
            if self._refs_seen < required:
                self._violate(
                    end_cycle, -1, "refresh-coverage", "REF", "",
                    required=required, actual=self._refs_seen,
                    message=(
                        f"only {self._refs_seen} REF commands over "
                        f"{end_cycle} cycles; rows cannot all be covered "
                        f"within the {self.timing.refresh_window_ms} ms "
                        f"window"
                    ),
                )
        for invariant in self.invariants:
            invariant.finalize(self, end_cycle)
        return self.report
