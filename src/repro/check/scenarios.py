"""Randomized short-simulation scenarios for conformance checking.

A :class:`Scenario` is a compact, JSON-serializable description of one
checked simulation: the workload mix, the mechanism, the memory/CROW
configuration knobs and the run length. The same scenario type backs

* the hypothesis fuzz layer in ``tests/fuzz/`` (strategies build the
  scenario componentwise so counterexamples shrink), and
* the ``python -m repro check`` CLI, which sweeps seeded random
  scenarios and can re-run any single one from its case seed or its
  JSON spec.

Scenarios use a deliberately small single-channel geometry so hundreds
of them fit in a CI smoke budget, while still exercising refresh (REF
cadence scales with rows, not capacity) and every mechanism's command
vocabulary.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass

from repro.check.violations import CheckReport
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigError
from repro.mech import get_plugin
from repro.sim.config import MECHANISMS, SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.sweep import derive_trace_seed
from repro.sim.system import System
from repro.trace.stream import TraceStream

__all__ = [
    "Scenario",
    "SCENARIO_WORKLOADS",
    "random_scenario",
    "run_scenario",
    "run_checked_case",
]

#: Workload pool the random sweep draws from: spans row-buffer-friendly
#: streaming, irregular pointer chasing and a uniformly random address
#: stream (worst case for the row buffer).
SCENARIO_WORKLOADS = (
    "libq",
    "mcf",
    "milc",
    "stream-copy",
    "h264-dec",
    "random",
)

#: Small single-channel geometry: one REF covers rows_per_bank/8192
#: rows, so with 8192 rows the refresh cursor still advances and the
#: whole-window coverage check is meaningful within a short run.
_SCENARIO_GEOMETRY = DramGeometry(
    channels=1,
    rows_per_bank=8192,
)


@dataclass(frozen=True)
class Scenario:
    """One checked short simulation (JSON round-trippable)."""

    workloads: tuple[str, ...] = ("libq",)
    mechanism: str = "baseline"
    density_gbit: int = 8
    refresh_window_ms: float = 64.0
    refresh_enabled: bool = True
    copy_rows: int = 8
    evict_partial: str = "bypass"
    allow_partial_restore: bool = True
    reduced_twr: bool = True
    instructions: int = 3000
    warmup_instructions: int = 500
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ConfigError("scenario needs at least one workload")
        # Raises ConfigError listing the registered names when unknown.
        get_plugin(self.mechanism)

    def to_config(self, mode: str = "strict") -> SystemConfig:
        """The SystemConfig this scenario describes (checker attached)."""
        return SystemConfig(
            cores=len(self.workloads),
            mechanism=self.mechanism,
            geometry=_SCENARIO_GEOMETRY,
            density_gbit=self.density_gbit,
            refresh_window_ms=self.refresh_window_ms,
            refresh_enabled=self.refresh_enabled,
            copy_rows=self.copy_rows,
            evict_partial=self.evict_partial,
            allow_partial_restore=self.allow_partial_restore,
            reduced_twr=self.reduced_twr,
            check=True,
            check_mode=mode,
            seed=self.seed,
        )

    def to_json(self) -> str:
        """Compact one-line JSON spec (CLI ``--scenario`` input)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        data = json.loads(text)
        data["workloads"] = tuple(data["workloads"])
        return cls(**data)


def random_scenario(case_seed: int) -> Scenario:
    """Deterministically derive one scenario from a case seed.

    Sweeps the dimensions the issue calls out: workload mixes, DRAM
    densities, refresh windows, refresh on/off, CROW cache/ref/rowhammer
    (and combinations), the SALP baseline, copy-row counts and the
    partial-restore/eviction policies.
    """
    rng = random.Random(case_seed)
    cores = rng.choice((1, 1, 2, 4))
    workloads = tuple(
        rng.choice(SCENARIO_WORKLOADS) for _ in range(cores)
    )
    mechanism = rng.choice(MECHANISMS)
    refresh_window_ms = rng.choice((32.0, 64.0))
    return Scenario(
        workloads=workloads,
        mechanism=mechanism,
        density_gbit=rng.choice((8, 16)),
        refresh_window_ms=refresh_window_ms,
        refresh_enabled=rng.random() > 0.1,
        copy_rows=rng.choice((2, 8)),
        evict_partial=rng.choice(("bypass", "restore")),
        allow_partial_restore=rng.random() > 0.25,
        reduced_twr=rng.random() > 0.25,
        instructions=rng.randrange(1000, 3500),
        warmup_instructions=rng.randrange(100, 500),
        seed=rng.randrange(1, 1 << 16),
    )


def run_scenario(
    scenario: Scenario, mode: str = "strict"
) -> tuple[SimResult, CheckReport]:
    """Run one scenario with the checker attached.

    In ``strict`` mode the first violation raises
    :class:`~repro.errors.ConformanceError`; in ``report`` mode the
    merged per-channel report is returned alongside the result.
    """
    config = scenario.to_config(mode)
    traces = [
        TraceStream(name, derive_trace_seed(scenario.seed, core))
        for core, name in enumerate(scenario.workloads)
    ]
    system = System(config, traces)
    result = system.run(
        scenario.instructions,
        scenario.warmup_instructions,
        prewarm_accesses=10_000,
    )
    return result, system.check_report()


def run_checked_case(
    workloads: "tuple[str, ...] | list[str]",
    mechanism: str,
    instructions: int,
    warmup_instructions: int,
    seed: int = 1,
    mode: str = "report",
    telemetry: bool = False,
) -> tuple[SimResult, CheckReport]:
    """Run one full-geometry case (e.g. a perf-matrix entry) checked.

    Mirrors :func:`repro.sim.sweep.run_workload` / ``run_mix`` trace
    seeding exactly, so the simulated stream is the one the perf suite
    and the digest oracle tests see — with the conformance checker
    attached on top.
    """
    config = SystemConfig(
        cores=len(workloads),
        mechanism=mechanism,
        seed=seed,
        check=True,
        check_mode=mode,
        telemetry=telemetry,
    )
    if len(workloads) == 1:
        traces = [TraceStream(workloads[0], 0)]
    else:
        traces = [
            TraceStream(name, derive_trace_seed(0, core))
            for core, name in enumerate(workloads)
        ]
    system = System(config, traces)
    result = system.run(instructions, warmup_instructions)
    return result, system.check_report()
