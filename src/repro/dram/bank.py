"""Per-bank DRAM timing state machines.

:class:`BankState` models a conventional bank: one open row (or, for CROW's
``ACT_T``/``ACT_C``, one open regular+copy pair) at a time, with earliest-
allowed-issue bookkeeping for every command class — the same approach
Ramulator uses. The device layer (:mod:`repro.dram.device`) adds the
rank- and channel-scope constraints (tRRD, tFAW, data bus, refresh).

:class:`SalpBankState` models a SALP-MASA bank (Kim et al., ISCA 2012) for
the Figure 11 baseline comparison: each subarray has its own local row
buffer that can stay open independently.
"""

from __future__ import annotations

from repro.dram.commands import ActTimings, RowId
from repro.dram.timing import TimingParameters
from repro.errors import ProtocolError, TimingViolationError

__all__ = ["BankState", "SalpBankState", "PrechargeResult"]

_FAR_PAST = -(10**9)


class PrechargeResult:
    """Outcome of a precharge: how restored the closed row(s) were left."""

    __slots__ = ("rows", "fully_restored", "open_cycles")

    def __init__(self, rows: tuple[RowId, ...], fully_restored: bool, open_cycles: int):
        self.rows = rows
        self.fully_restored = fully_restored
        self.open_cycles = open_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "full" if self.fully_restored else "partial"
        return f"PrechargeResult(rows={self.rows}, {state}, open={self.open_cycles})"


class BankState:
    """Timing state machine of one conventional DRAM bank."""

    __slots__ = (
        "timing",
        "open_rows",
        "act_time",
        "act_timings",
        "ready_act",
        "last_rd_time",
        "last_wr_time",
        "wrote_with_reduced_twr",
        "open_cycles_total",
        "_wr_recovery_base",
    )

    def __init__(self, timing: TimingParameters) -> None:
        self.timing = timing
        self.open_rows: tuple[RowId, ...] | None = None
        self.act_time = _FAR_PAST
        self.act_timings: ActTimings | None = None
        self.ready_act = 0
        self.last_rd_time = _FAR_PAST
        self.last_wr_time = _FAR_PAST
        self.wrote_with_reduced_twr = False
        self.open_cycles_total = 0
        # Fixed part of the write-recovery window (tCWL + tBL), resolved
        # once: earliest_pre()/fully_restored_if_precharged_at() add only
        # the activation's tWR on top.
        self._wr_recovery_base = timing.tcwl + timing.tbl

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        """Whether a row is currently latched in the row buffer."""
        return self.open_rows is not None

    def has_open_row(self, row: RowId) -> bool:
        """Whether ``row`` is currently latched in the row buffer."""
        return self.open_rows is not None and row in self.open_rows

    def fully_restored_if_precharged_at(self, now: int) -> bool:
        """Would a precharge at ``now`` leave the open rows fully restored?

        Two conditions (paper Section 4.1.4): the default (full) tRAS must
        have elapsed since activation, and any write issued with a
        reduced (early-terminated) tWR must also have had time to restore
        fully.
        """
        if self.open_rows is None or self.act_timings is None:
            raise ProtocolError("no open row")
        if now < self.act_time + self.act_timings.tras_full:
            return False
        if self.last_wr_time > self.act_time:
            wr_full_done = (
                self.last_wr_time
                + self._wr_recovery_base
                + self.act_timings.effective_twr_full
            )
            if now < wr_full_done:
                return False
        return True

    # ------------------------------------------------------------------
    # Earliest-issue queries
    # ------------------------------------------------------------------
    def earliest_act(self) -> int:
        """Earliest legal activation time for this bank."""
        if self.open_rows is not None:
            raise ProtocolError("cannot activate an open bank; precharge first")
        return self.ready_act

    def earliest_col(self) -> int:
        """Earliest RD/WR issue time for the open row (bank scope only)."""
        if self.open_rows is None or self.act_timings is None:
            raise ProtocolError("cannot access a closed bank")
        return self.act_time + self.act_timings.trcd

    def earliest_pre(self, honor_full_tras: bool = False) -> int:
        """Earliest legal precharge.

        With ``honor_full_tras`` the caller insists on full restoration
        (used when fully restoring a row pair before CROW-table eviction).
        """
        if self.open_rows is None or self.act_timings is None:
            raise ProtocolError("cannot precharge a closed bank")
        tras = (
            self.act_timings.tras_full
            if honor_full_tras
            else self.act_timings.tras_early
        )
        earliest = self.act_time + tras
        if self.last_rd_time != _FAR_PAST:
            earliest = max(earliest, self.last_rd_time + self.timing.trtp)
        if self.last_wr_time != _FAR_PAST and self.last_wr_time > self.act_time:
            earliest = max(
                earliest,
                self.last_wr_time + self._wr_recovery_base + self.act_timings.twr,
            )
        return earliest

    # ------------------------------------------------------------------
    # Command effects
    # ------------------------------------------------------------------
    def issue_act(
        self, now: int, rows: tuple[RowId, ...], timings: ActTimings
    ) -> None:
        """Apply an activation at ``now`` (validates timing)."""
        earliest = self.earliest_act()
        if now < earliest:
            raise TimingViolationError(
                f"ACT at {now}, allowed at {earliest}"
            )
        self.open_rows = rows
        self.act_time = now
        self.act_timings = timings
        self.last_rd_time = _FAR_PAST
        self.last_wr_time = _FAR_PAST
        self.wrote_with_reduced_twr = False

    def issue_rd(self, now: int) -> None:
        """Apply a column read at ``now`` (validates timing)."""
        earliest = self.earliest_col()
        if now < earliest:
            raise TimingViolationError(f"RD at {now}, allowed at {earliest}")
        self.last_rd_time = now

    def issue_wr(self, now: int) -> None:
        """Apply a column write at ``now`` (validates timing)."""
        earliest = self.earliest_col()
        if now < earliest:
            raise TimingViolationError(f"WR at {now}, allowed at {earliest}")
        self.last_wr_time = now
        if self.act_timings is not None and self.act_timings.twr_full is not None:
            self.wrote_with_reduced_twr = True

    def issue_pre(self, now: int) -> PrechargeResult:
        """Apply a precharge at ``now``; reports restoration state."""
        earliest = self.earliest_pre()
        if now < earliest:
            raise TimingViolationError(f"PRE at {now}, allowed at {earliest}")
        assert self.open_rows is not None
        result = PrechargeResult(
            rows=self.open_rows,
            fully_restored=self.fully_restored_if_precharged_at(now),
            open_cycles=now - self.act_time,
        )
        self.open_cycles_total += result.open_cycles
        self.open_rows = None
        self.act_timings = None
        self.ready_act = now + self.timing.trp
        return result

    def refresh_completed(self, done_at: int) -> None:
        """Block the bank until an all-bank refresh finishes."""
        if self.open_rows is not None:
            raise ProtocolError("refresh requires all banks precharged")
        self.ready_act = max(self.ready_act, done_at)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All mutable bank state (timing config is construction-owned)."""
        return {
            "open_rows": self.open_rows,
            "act_time": self.act_time,
            "act_timings": self.act_timings,
            "ready_act": self.ready_act,
            "last_rd_time": self.last_rd_time,
            "last_wr_time": self.last_wr_time,
            "wrote_with_reduced_twr": self.wrote_with_reduced_twr,
            "open_cycles_total": self.open_cycles_total,
        }

    def load_state_dict(self, state: dict) -> None:
        self.open_rows = state["open_rows"]
        self.act_time = state["act_time"]
        self.act_timings = state["act_timings"]
        self.ready_act = state["ready_act"]
        self.last_rd_time = state["last_rd_time"]
        self.last_wr_time = state["last_wr_time"]
        self.wrote_with_reduced_twr = state["wrote_with_reduced_twr"]
        self.open_cycles_total = state["open_cycles_total"]


class SalpBankState:
    """A SALP-MASA bank: per-subarray row buffers, shared global bus.

    Each subarray keeps its own :class:`BankState`-like slot, so a row can
    remain latched in one subarray while another subarray activates —
    subarray-level parallelism. Column accesses from all subarrays share
    the bank's global structures, which the device layer serializes.
    """

    __slots__ = (
        "timing",
        "subarrays",
        "open_cycles_total",
        "bank_active_cycles",
        "_active_since",
    )

    def __init__(self, timing: TimingParameters, subarrays_per_bank: int) -> None:
        self.timing = timing
        self.subarrays: dict[int, BankState] = {
            i: BankState(timing) for i in range(subarrays_per_bank)
        }
        self.open_cycles_total = 0
        # Epochs during which >= 1 subarray buffer is open: the bank-level
        # circuitry (the IDD3N increment) is on exactly then; additional
        # concurrently-open local buffers cost only latch power.
        self.bank_active_cycles = 0
        self._active_since: int | None = None

    @property
    def is_open(self) -> bool:
        """Whether a row is currently latched in the row buffer."""
        return any(slot.is_open for slot in self.subarrays.values())

    @property
    def open_buffer_count(self) -> int:
        """Number of subarray row buffers currently holding an open row."""
        return sum(1 for slot in self.subarrays.values() if slot.is_open)

    def slot(self, subarray: int) -> BankState:
        """The per-subarray BankState for ``subarray``."""
        try:
            return self.subarrays[subarray]
        except KeyError:
            raise ProtocolError(f"subarray {subarray} out of range") from None

    def has_open_row(self, row: RowId) -> bool:
        """Whether ``row`` is open in its subarray's buffer."""
        return self.slot(row.subarray).has_open_row(row)

    def note_activation(self, now: int) -> None:
        """Record the bank-active epoch start (first buffer opening)."""
        if self._active_since is None:
            self._active_since = now

    def issue_pre(self, now: int, subarray: int) -> PrechargeResult:
        """Apply a precharge at ``now``; reports restoration state."""
        result = self.slot(subarray).issue_pre(now)
        self.open_cycles_total += result.open_cycles
        if self.open_buffer_count == 0 and self._active_since is not None:
            self.bank_active_cycles += now - self._active_since
            self._active_since = None
        return result

    def bank_active_total(self, now: int) -> int:
        """Bank-active cycles up to ``now`` (including an open epoch)."""
        total = self.bank_active_cycles
        if self._active_since is not None:
            total += now - self._active_since
        return total

    def precharge_all_earliest(self) -> int:
        """Earliest time by which every open subarray could be precharged."""
        earliest = 0
        for slot in self.subarrays.values():
            if slot.is_open:
                earliest = max(earliest, slot.earliest_pre())
        return earliest

    def refresh_completed(self, done_at: int) -> None:
        """Block until an all-bank refresh finishes."""
        for slot in self.subarrays.values():
            slot.refresh_completed(done_at)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "subarrays": {
                i: slot.state_dict() for i, slot in self.subarrays.items()
            },
            "open_cycles_total": self.open_cycles_total,
            "bank_active_cycles": self.bank_active_cycles,
            "active_since": self._active_since,
        }

    def load_state_dict(self, state: dict) -> None:
        for i, slot_state in state["subarrays"].items():
            self.subarrays[i].load_state_dict(slot_state)
        self.open_cycles_total = state["open_cycles_total"]
        self.bank_active_cycles = state["bank_active_cycles"]
        self._active_since = state["active_since"]
