"""DRAM organization geometry.

Defaults follow Table 2 of the paper: LPDDR4, 4 channels, 1 rank per
channel, 8 banks per rank, 64K rows per bank, 512 rows per subarray
(128 subarrays per bank), 8 KiB row buffer. The CROW substrate adds
``copy_rows_per_subarray`` extra rows per subarray, driven by their own
small decoder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import KIB

__all__ = ["DramGeometry"]


@dataclass(frozen=True)
class DramGeometry:
    """Physical organization of the simulated memory system.

    The column unit throughout the simulator is one cache line (64 B);
    ``columns_per_row`` therefore counts cache-line slots in the 8 KiB row.
    """

    channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    rows_per_bank: int = 65536
    rows_per_subarray: int = 512
    copy_rows_per_subarray: int = 8
    row_size_bytes: int = 8 * KIB
    line_size_bytes: int = 64
    density_gbit: int = 8

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks_per_channel",
            "banks_per_rank",
            "rows_per_bank",
            "rows_per_subarray",
            "row_size_bytes",
            "line_size_bytes",
        ):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two")
        if self.copy_rows_per_subarray < 0:
            raise ConfigError("copy_rows_per_subarray must be non-negative")
        if self.rows_per_bank % self.rows_per_subarray:
            raise ConfigError("rows_per_bank must divide into whole subarrays")
        if self.row_size_bytes % self.line_size_bytes:
            raise ConfigError("row_size_bytes must divide into whole lines")

    @property
    def subarrays_per_bank(self) -> int:
        """Subarrays per bank (rows_per_bank / rows_per_subarray)."""
        return self.rows_per_bank // self.rows_per_subarray

    @property
    def columns_per_row(self) -> int:
        """Cache-line-sized column slots per row (128 for 8 KiB rows)."""
        return self.row_size_bytes // self.line_size_bytes

    @property
    def banks_per_channel(self) -> int:
        """Banks visible to one channel controller."""
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def capacity_bytes(self) -> int:
        """Total usable (regular-row) capacity of the memory system."""
        return (
            self.channels
            * self.ranks_per_channel
            * self.banks_per_rank
            * self.rows_per_bank
            * self.row_size_bytes
        )

    @property
    def total_subarrays(self) -> int:
        """Subarrays across the whole memory system (CROW-table scale)."""
        return (
            self.channels
            * self.ranks_per_channel
            * self.banks_per_rank
            * self.subarrays_per_bank
        )

    def subarray_of_row(self, row: int) -> int:
        """Subarray index containing regular row ``row`` within a bank."""
        if not 0 <= row < self.rows_per_bank:
            raise ConfigError(f"row {row} out of range")
        return row // self.rows_per_subarray

    def row_within_subarray(self, row: int) -> int:
        """Index of regular row ``row`` inside its subarray (0..511)."""
        if not 0 <= row < self.rows_per_bank:
            raise ConfigError(f"row {row} out of range")
        return row % self.rows_per_subarray
