"""Physical-address interleaving across channels, banks, rows and columns.

The default mapping (low bits to high bits) is::

    [line offset][channel][column][bank][row]

which stripes consecutive cache lines across channels first and then across
the columns of a row, maximizing row-buffer locality for streaming access —
the standard choice in LPDDR4 mobile systems and the layout assumed by the
paper's Table 2 configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.dram.geometry import DramGeometry
from repro.errors import ConfigError

__all__ = ["DramAddress", "AddressMapper"]


class DramAddress(NamedTuple):
    """Decoded location of one cache line in the memory system."""

    channel: int
    rank: int
    bank: int
    row: int
    col: int


def _bits(value: int) -> int:
    if value < 1 or value & (value - 1):
        raise ConfigError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressMapper:
    """Bidirectional physical-address <-> DRAM-coordinate mapping."""

    geometry: DramGeometry = DramGeometry()

    @property
    def offset_bits(self) -> int:
        """Bits covered by the line offset."""
        return _bits(self.geometry.line_size_bytes)

    @property
    def channel_bits(self) -> int:
        """Bits selecting the channel."""
        return _bits(self.geometry.channels)

    @property
    def col_bits(self) -> int:
        """Bits selecting the column (line slot within a row)."""
        return _bits(self.geometry.columns_per_row)

    @property
    def bank_bits(self) -> int:
        """Bits selecting the bank."""
        return _bits(self.geometry.banks_per_rank)

    @property
    def rank_bits(self) -> int:
        """Bits selecting the rank."""
        return _bits(self.geometry.ranks_per_channel)

    @property
    def row_bits(self) -> int:
        """Bits selecting the row."""
        return _bits(self.geometry.rows_per_bank)

    @property
    def address_bits(self) -> int:
        """Total physical address width covered by the mapping."""
        return (
            self.offset_bits
            + self.channel_bits
            + self.col_bits
            + self.bank_bits
            + self.rank_bits
            + self.row_bits
        )

    def decode(self, address: int) -> DramAddress:
        """Map a physical byte address to its DRAM coordinates."""
        if address < 0:
            raise ConfigError(f"address must be non-negative, got {address}")
        value = address >> self.offset_bits
        channel = value & (self.geometry.channels - 1)
        value >>= self.channel_bits
        col = value & (self.geometry.columns_per_row - 1)
        value >>= self.col_bits
        bank = value & (self.geometry.banks_per_rank - 1)
        value >>= self.bank_bits
        rank = value & (self.geometry.ranks_per_channel - 1)
        value >>= self.rank_bits
        row = value & (self.geometry.rows_per_bank - 1)
        return DramAddress(channel=channel, rank=rank, bank=bank, row=row, col=col)

    def encode(self, location: DramAddress) -> int:
        """Map DRAM coordinates back to a physical byte address."""
        geo = self.geometry
        if not 0 <= location.channel < geo.channels:
            raise ConfigError(f"channel {location.channel} out of range")
        if not 0 <= location.rank < geo.ranks_per_channel:
            raise ConfigError(f"rank {location.rank} out of range")
        if not 0 <= location.bank < geo.banks_per_rank:
            raise ConfigError(f"bank {location.bank} out of range")
        if not 0 <= location.row < geo.rows_per_bank:
            raise ConfigError(f"row {location.row} out of range")
        if not 0 <= location.col < geo.columns_per_row:
            raise ConfigError(f"col {location.col} out of range")
        value = location.row
        value = (value << self.rank_bits) | location.rank
        value = (value << self.bank_bits) | location.bank
        value = (value << self.col_bits) | location.col
        value = (value << self.channel_bits) | location.channel
        return value << self.offset_bits
