"""Channel-level DRAM device: command legality, rank constraints, counters.

:class:`DramChannel` owns the banks of one channel (one rank in the paper's
configuration) and enforces every constraint that spans more than one bank:

* command-bus occupancy (one command per cycle; CROW's ``ACT-c``/``ACT-t``
  take one extra address-transfer cycle, paper Section 4.1.5),
* rank-scope activation spacing (tRRD, tFAW),
* data-bus occupancy and read/write turnaround (tCCD, tWTR),
* all-bank refresh (tREFI scheduling lives in the controller; the device
  enforces the tRFC blackout and walks the refresh row counter).

The device also keeps the command counters and row-buffer-open residency
statistics that the energy model consumes, and optionally drives a
:class:`repro.dram.cellarray.CellArray` so that tests can verify functional
data integrity under the exact command stream the controller produced.
"""

from __future__ import annotations

from collections import deque

from repro.dram.bank import BankState, PrechargeResult, SalpBankState
from repro.dram.cellarray import CellArray
from repro.dram.commands import ActTimings, Command, CommandKind, RowId, RowKind
from repro.dram.geometry import DramGeometry
from repro.dram.timing import REF_COMMANDS_PER_WINDOW, TimingParameters
from repro.errors import ConfigError, ProtocolError, TimingViolationError

__all__ = ["DramChannel", "IssueResult"]

_FAR_PAST = -(10**9)

#: Hot-path membership test for the three activation kinds (avoids the
#: ``CommandKind.is_activation`` property call per command evaluation).
_ACTIVATION_KINDS = frozenset(
    (CommandKind.ACT, CommandKind.ACT_C, CommandKind.ACT_T)
)


class IssueResult:
    """What the controller learns from issuing one command."""

    __slots__ = ("data_at", "precharge", "done_at")

    def __init__(
        self,
        data_at: int | None = None,
        precharge: PrechargeResult | None = None,
        done_at: int | None = None,
    ):
        self.data_at = data_at
        self.precharge = precharge
        self.done_at = done_at


class DramChannel:
    """One DRAM channel: banks plus rank/channel-scope timing state."""

    def __init__(
        self,
        geometry: DramGeometry,
        timing: TimingParameters,
        salp_subarrays: int | None = None,
        cell_array: CellArray | None = None,
    ) -> None:
        if salp_subarrays is not None and salp_subarrays < 1:
            raise ConfigError("salp_subarrays must be >= 1")
        self.geometry = geometry
        self.timing = timing
        self.salp = salp_subarrays is not None
        if self.salp:
            self.banks: list[BankState] | list[SalpBankState] = [
                SalpBankState(timing, salp_subarrays)
                for _ in range(geometry.banks_per_channel)
            ]
        else:
            self.banks = [
                BankState(timing) for _ in range(geometry.banks_per_channel)
            ]
        self.cell_array = cell_array
        # Compiled timing-advance tables: every cross-command spacing
        # that earliest_issue()/issue() needs is a sum of fixed timing
        # parameters, resolved once per parameter set (and shared with
        # the batch engine — one source of truth for both). Imported
        # lazily: repro.engine.tables reads this package's command
        # definitions, so a module-level import would be circular.
        from repro.engine.tables import compile_timing_tables

        tables = compile_timing_tables(timing)
        self.tables = tables
        self._base_act_timings = tables.base_act
        self._rd_after_rd = tables.rd_after_rd
        self._rd_after_wr = tables.rd_after_wr
        self._wr_after_wr = tables.wr_after_wr
        self._wr_after_rd = tables.wr_after_rd
        self._rd_data_delay = tables.rd_data_delay
        self._wr_done_delay = tables.wr_done_delay
        self._bus_cycles = tables.bus_cycles
        # Channel/rank-scope state.
        self.cmd_bus_free = 0
        self.act_history: deque[int] = deque(maxlen=4)
        self.last_act_time = _FAR_PAST
        self.last_rd_issue = _FAR_PAST
        self.last_wr_issue = _FAR_PAST
        self.ref_busy_until = 0
        self.refresh_cursor = 0
        # Statistics (consumed by the energy model and the metrics layer).
        self.counts = {kind: 0 for kind in CommandKind}
        self.busy_reads = 0
        #: Optional command-stream recorder (repro.validation), telemetry
        #: ring buffer (repro.telemetry.EventTrace) and conformance
        #: checker (repro.check.ProtocolChecker).
        #: Attach observers via plain assignment; the issue path checks
        #: one combined ``_observed`` flag (the None-guards are hoisted
        #: out of the per-command hot loop into the setters).
        self._recorder = None
        self._trace = None
        self._checker = None
        self._observed = False

    # ------------------------------------------------------------------
    # Observer hooks (telemetry / validation)
    # ------------------------------------------------------------------
    @property
    def recorder(self):
        """Optional :class:`repro.validation.CommandRecorder`."""
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        self._refresh_observed()

    @property
    def trace(self):
        """Optional :class:`repro.telemetry.EventTrace` ring buffer."""
        return self._trace

    @trace.setter
    def trace(self, value) -> None:
        self._trace = value
        self._refresh_observed()

    @property
    def checker(self):
        """Optional :class:`repro.check.ProtocolChecker` shadow oracle."""
        return self._checker

    @checker.setter
    def checker(self, value) -> None:
        self._checker = value
        self._refresh_observed()

    def _refresh_observed(self) -> None:
        self._observed = (
            self._recorder is not None
            or self._trace is not None
            or self._checker is not None
        )

    # ------------------------------------------------------------------
    # Bank access helpers
    # ------------------------------------------------------------------
    def _bank_slot(self, command: Command) -> BankState:
        """The BankState a command operates on (per-subarray for SALP)."""
        try:
            bank = self.banks[command.bank]
        except IndexError:
            raise ProtocolError(
                f"bank {command.bank} out of range "
                f"(channel has {len(self.banks)} banks)"
            ) from None
        if isinstance(bank, SalpBankState):
            if command.kind is CommandKind.PRE:
                if command.subarray is None:
                    raise ProtocolError("SALP PRE requires a subarray")
                return bank.slot(command.subarray)
            if command.kind in (CommandKind.RD, CommandKind.WR):
                if command.subarray is None:
                    raise ProtocolError("SALP column access requires a subarray")
                return bank.slot(command.subarray)
            return bank.slot(command.rows[0].subarray)
        return bank

    def validate_address(self, command: Command) -> None:
        """Reject commands whose addresses fall outside this geometry.

        The controller never constructs out-of-range commands, so the
        issue path does not pay for these checks; raw hosts
        (:mod:`repro.probe`) feed arbitrary addresses and call this as
        the device's address decoder — a failed decode is a
        :class:`ProtocolError`, distinct from timing/state rejection.
        Negative bank indices would otherwise alias Python's
        end-relative list indexing.
        """
        geometry = self.geometry
        if not 0 <= command.bank < len(self.banks):
            raise ProtocolError(
                f"bank {command.bank} out of range "
                f"(channel has {len(self.banks)} banks)"
            )
        for row in command.rows:
            if not 0 <= row.subarray < geometry.subarrays_per_bank:
                raise ProtocolError(
                    f"subarray {row.subarray} out of range "
                    f"(bank has {geometry.subarrays_per_bank} subarrays)"
                )
            limit = (
                geometry.copy_rows_per_subarray
                if row.kind is RowKind.COPY
                else geometry.rows_per_subarray
            )
            space = "copy" if row.kind is RowKind.COPY else "regular"
            if not 0 <= row.index < limit:
                raise ProtocolError(
                    f"{space} row index {row.index} out of range "
                    f"(subarray has {limit} {space} rows)"
                )
        if command.subarray is not None and not (
            0 <= command.subarray < geometry.subarrays_per_bank
        ):
            raise ProtocolError(
                f"subarray {command.subarray} out of range "
                f"(bank has {geometry.subarrays_per_bank} subarrays)"
            )

    def open_rows(self, bank: int) -> tuple[RowId, ...] | None:
        """Open row(s) of a conventional bank (None when closed)."""
        slot = self.banks[bank]
        if isinstance(slot, SalpBankState):
            raise ProtocolError("use salp_open_rows for SALP banks")
        return slot.open_rows

    # ------------------------------------------------------------------
    # Earliest-issue computation
    # ------------------------------------------------------------------
    def earliest_issue(self, command: Command, honor_full_tras: bool = False) -> int:
        """Earliest cycle at which ``command`` satisfies every constraint.

        Raises :class:`ProtocolError` if the command is illegal in the
        current bank state regardless of time (e.g. ACT to an open bank).
        """
        # Inline comparisons instead of max() calls: this is the hottest
        # function in the timed phase (several calls per scheduling
        # pass), and the builtin-call overhead is measurable.
        earliest = self.cmd_bus_free
        bound = self.ref_busy_until
        if bound > earliest:
            earliest = bound
        kind = command.kind
        if kind in _ACTIVATION_KINDS:
            bound = self._bank_slot(command).earliest_act()
            if bound > earliest:
                earliest = bound
            last_act = self.last_act_time
            if last_act != _FAR_PAST:
                bound = last_act + self.timing.trrd
                if bound > earliest:
                    earliest = bound
            if len(self.act_history) == 4:
                bound = self.act_history[0] + self.timing.tfaw
                if bound > earliest:
                    earliest = bound
        elif kind is CommandKind.RD:
            bound = self._bank_slot(command).earliest_col()
            if bound > earliest:
                earliest = bound
            last_rd = self.last_rd_issue
            if last_rd != _FAR_PAST:
                bound = last_rd + self._rd_after_rd
                if bound > earliest:
                    earliest = bound
            last_wr = self.last_wr_issue
            if last_wr != _FAR_PAST:
                bound = last_wr + self._rd_after_wr
                if bound > earliest:
                    earliest = bound
        elif kind is CommandKind.WR:
            bound = self._bank_slot(command).earliest_col()
            if bound > earliest:
                earliest = bound
            last_wr = self.last_wr_issue
            if last_wr != _FAR_PAST:
                bound = last_wr + self._wr_after_wr
                if bound > earliest:
                    earliest = bound
            last_rd = self.last_rd_issue
            if last_rd != _FAR_PAST:
                bound = last_rd + self._wr_after_rd
                if bound > earliest:
                    earliest = bound
        elif kind is CommandKind.PRE:
            bound = self._bank_slot(command).earliest_pre(honor_full_tras)
            if bound > earliest:
                earliest = bound
        elif kind is CommandKind.REF:
            for bank in self.banks:
                if bank.is_open:
                    raise ProtocolError("REF requires all banks precharged")
            if self.salp:
                for bank in self.banks:
                    for slot in bank.subarrays.values():  # type: ignore[union-attr]
                        if slot.ready_act > earliest:
                            earliest = slot.ready_act
            else:
                for bank in self.banks:
                    if bank.ready_act > earliest:  # type: ignore[union-attr]
                        earliest = bank.ready_act
        else:  # pragma: no cover - enum is exhaustive
            raise ProtocolError(f"unknown command kind {kind}")
        return earliest

    # ------------------------------------------------------------------
    # Command issue
    # ------------------------------------------------------------------
    def issue(
        self, command: Command, now: int, honor_full_tras: bool = False
    ) -> IssueResult:
        """Apply ``command`` at cycle ``now``, enforcing all constraints."""
        earliest = self.earliest_issue(command, honor_full_tras)
        if now < earliest:
            raise TimingViolationError(
                f"{command.kind.name} at {now}, allowed at {earliest}"
            )
        timing = self.timing
        kind = command.kind
        result = IssueResult()

        if kind in _ACTIVATION_KINDS:
            slot = self._bank_slot(command)
            timings = command.timings or self._base_act_timings
            # The functional layer checks data integrity *before* the bank
            # state mutates, so a raised DataIntegrityError leaves the
            # device consistent (the activation never happened).
            if self.cell_array is not None:
                self.cell_array.on_activate(command, now)
            bank = self.banks[command.bank]
            if isinstance(bank, SalpBankState):
                bank.note_activation(now)
            slot.issue_act(now, command.rows, timings)
            self.act_history.append(now)
            self.last_act_time = now
        elif kind is CommandKind.RD:
            slot = self._bank_slot(command)
            slot.issue_rd(now)
            self.last_rd_issue = now
            result.data_at = now + self._rd_data_delay
            if self.cell_array is not None:
                self.cell_array.on_read(command, now)
        elif kind is CommandKind.WR:
            slot = self._bank_slot(command)
            slot.issue_wr(now)
            self.last_wr_issue = now
            result.done_at = now + self._wr_done_delay
            if self.cell_array is not None:
                self.cell_array.on_write(command, now)
        elif kind is CommandKind.PRE:
            bank = self.banks[command.bank]
            if isinstance(bank, SalpBankState):
                assert command.subarray is not None
                result.precharge = bank.issue_pre(now, command.subarray)
            else:
                result.precharge = bank.issue_pre(now)
            if self.cell_array is not None:
                self.cell_array.on_precharge(command, now, result.precharge)
        elif kind is CommandKind.REF:
            done = now + timing.trfc
            self.ref_busy_until = done
            for bank in self.banks:
                bank.refresh_completed(done)
            refreshed = self._advance_refresh_cursor()
            if self.cell_array is not None:
                self.cell_array.on_refresh(refreshed, now)
            result.done_at = done
        self.counts[kind] += 1
        # CROW commands carry an extra copy-row address cycle (footnote 3).
        bus_cycles = 2 if kind in (CommandKind.ACT_C, CommandKind.ACT_T) else 1
        self.cmd_bus_free = now + bus_cycles
        if self._observed:
            if self._recorder is not None:
                self._recorder.record(now, command)
            if self._trace is not None:
                self._trace.record_command(now, command)
            if self._checker is not None:
                self._checker.observe(now, command)
        return result

    def _advance_refresh_cursor(self) -> range:
        """Row range (per bank) covered by this REF command."""
        rows_per_ref = max(
            1, self.geometry.rows_per_bank // REF_COMMANDS_PER_WINDOW
        )
        start = self.refresh_cursor
        stop = start + rows_per_ref
        self.refresh_cursor = stop % self.geometry.rows_per_bank
        return range(start, stop)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All mutable channel/rank/bank state.

        Observers (recorder/trace/checker) are wiring, not state: they are
        re-attached by ``System`` construction and carry their own state.
        """
        return {
            "banks": [bank.state_dict() for bank in self.banks],
            "cmd_bus_free": self.cmd_bus_free,
            "act_history": list(self.act_history),
            "last_act_time": self.last_act_time,
            "last_rd_issue": self.last_rd_issue,
            "last_wr_issue": self.last_wr_issue,
            "ref_busy_until": self.ref_busy_until,
            "refresh_cursor": self.refresh_cursor,
            "counts": {int(kind): n for kind, n in self.counts.items()},
            "busy_reads": self.busy_reads,
        }

    def load_state_dict(self, state: dict) -> None:
        for bank, bank_state in zip(self.banks, state["banks"]):
            bank.load_state_dict(bank_state)
        self.cmd_bus_free = state["cmd_bus_free"]
        self.act_history = deque(state["act_history"], maxlen=4)
        self.last_act_time = state["last_act_time"]
        self.last_rd_issue = state["last_rd_issue"]
        self.last_wr_issue = state["last_wr_issue"]
        self.ref_busy_until = state["ref_busy_until"]
        self.refresh_cursor = state["refresh_cursor"]
        self.counts = {
            CommandKind(kind): n for kind, n in state["counts"].items()
        }
        self.busy_reads = state["busy_reads"]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def open_buffer_cycles(self, now: int) -> int:
        """Total row-buffer-open residency up to ``now`` (energy input)."""
        total = 0
        for bank in self.banks:
            if isinstance(bank, SalpBankState):
                total += bank.open_cycles_total
                for slot in bank.subarrays.values():
                    if slot.is_open:
                        total += now - slot.act_time
            else:
                total += bank.open_cycles_total
                if bank.is_open:
                    total += now - bank.act_time
        return total

    def bank_active_cycles(self, now: int) -> int:
        """Cycles during which each bank had >= 1 open row, summed.

        Equals :meth:`open_buffer_cycles` for conventional banks (one
        buffer per bank); for SALP banks it excludes the *additional*
        concurrently-open local buffers, which carry only latch power.
        """
        total = 0
        for bank in self.banks:
            if isinstance(bank, SalpBankState):
                total += bank.bank_active_total(now)
            else:
                total += bank.open_cycles_total
                if bank.is_open:
                    total += now - bank.act_time
        return total

    @property
    def activation_count(self) -> int:
        """Activations of every kind (ACT + ACT-c + ACT-t)."""
        return (
            self.counts[CommandKind.ACT]
            + self.counts[CommandKind.ACT_C]
            + self.counts[CommandKind.ACT_T]
        )
