"""DRAM device substrate — the Ramulator-equivalent device model.

Implements the full device side of an LPDDR4 memory system as cycle-level
timing state machines:

* :mod:`repro.dram.geometry` — channel/rank/bank/subarray/row organization,
* :mod:`repro.dram.timing` — LPDDR4 timing parameters with density scaling,
* :mod:`repro.dram.commands` — the command set, including CROW's new
  ``ACT-c`` and ``ACT-t`` commands,
* :mod:`repro.dram.address` — physical-address interleaving,
* :mod:`repro.dram.bank` / :mod:`repro.dram.device` — per-bank and
  channel/rank-scope timing enforcement,
* :mod:`repro.dram.cellarray` — optional functional layer that stores real
  row contents and charge state, used to verify data-integrity invariants,
* :mod:`repro.dram.retention` — per-row retention-time model with weak-row
  injection, feeding CROW-ref.
"""

from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters, CrowTimings
from repro.dram.commands import CommandKind, Command, RowKind, RowId
from repro.dram.address import AddressMapper, DramAddress
from repro.dram.bank import BankState
from repro.dram.device import DramChannel
from repro.dram.cellarray import CellArray
from repro.dram.retention import RetentionModel

__all__ = [
    "DramGeometry",
    "TimingParameters",
    "CrowTimings",
    "CommandKind",
    "Command",
    "RowKind",
    "RowId",
    "AddressMapper",
    "DramAddress",
    "BankState",
    "DramChannel",
    "CellArray",
    "RetentionModel",
]
