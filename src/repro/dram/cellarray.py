"""Functional DRAM cell-array model: data, charge, retention, disturbance.

Performance experiments run the timing-only substrate; this layer is
attached when a test or example needs to *prove* data-integrity behaviour:

* **RowClone semantics** — ``ACT-c`` duplicates the source row's contents
  into the copy row during restoration.
* **Partial-restoration safety** — rows closed before full restoration are
  marked ``requires_pair``; a later *single*-row activation of such a row
  raises :class:`DataIntegrityError`, the corruption scenario the paper's
  eviction protocol (Section 4.1.4) must prevent.
* **Retention expiry** — a live row whose charge has decayed past its
  retention limit (weak rows under an extended refresh interval) raises on
  activation, the failure CROW-ref must avoid by remapping.
* **RowHammer disturbance** — activation counters per row; crossing the
  hammer threshold within one refresh window flips bits in physically
  adjacent live rows, the attack the CROW RowHammer mitigation defends
  against.

Charge/retention arithmetic reuses the circuit model
(:class:`repro.circuit.BitlineModel`) so the functional and analytical
layers cannot drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.bitline import BitlineModel
from repro.circuit.constants import TechnologyParameters
from repro.dram.commands import Command, CommandKind, RowId, RowKind
from repro.dram.geometry import DramGeometry
from repro.dram.retention import RetentionModel
from repro.errors import ConfigError, DataIntegrityError

__all__ = ["CellArray"]

#: Charge fraction left by an early-terminated restoration. Matches the
#: circuit model's chosen partial-restore operating point.
PARTIAL_CHARGE_FRACTION = 0.92


class CellArray:
    """Functional contents and electrical state of one channel's cells."""

    def __init__(
        self,
        geometry: DramGeometry,
        clock_mhz: float = 1600.0,
        channel: int = 0,
        retention: RetentionModel | None = None,
        tech: TechnologyParameters | None = None,
        hammer_threshold: int | None = None,
        enforce_retention: bool = True,
    ) -> None:
        if clock_mhz <= 0:
            raise ConfigError("clock_mhz must be positive")
        self.geometry = geometry
        self.clock_mhz = clock_mhz
        self.channel = channel
        self.retention = retention
        self.tech = tech if tech is not None else TechnologyParameters()
        self.bitline = BitlineModel(self.tech)
        self.hammer_threshold = hammer_threshold
        self.enforce_retention = enforce_retention
        self._words_per_row = geometry.row_size_bytes // 8

        self._data: dict[tuple[int, RowId], np.ndarray] = {}
        self._charge: dict[tuple[int, RowId], float] = {}
        self._restore_time: dict[tuple[int, RowId], int] = {}
        self._live: set[tuple[int, RowId]] = set()
        self._requires_pair: set[tuple[int, RowId]] = set()
        self._hammer_counts: dict[tuple[int, int], int] = {}
        self.disturbance_flips = 0

    # ------------------------------------------------------------------
    # Direct state access (tests / examples)
    # ------------------------------------------------------------------
    def key(self, bank: int, row: RowId) -> tuple[int, RowId]:
        """Dictionary key for one (bank, row) cell-array entry."""
        return (bank, row)

    def set_row_data(self, bank: int, row: RowId, pattern: int, now: int = 0) -> None:
        """Fill a row with a 64-bit pattern and mark it live/full."""
        key = (bank, row)
        self._data[key] = np.full(self._words_per_row, pattern, dtype=np.uint64)
        self._charge[key] = self.tech.full_restore_fraction
        self._restore_time[key] = now
        self._live.add(key)
        self._requires_pair.discard(key)

    def row_data(self, bank: int, row: RowId) -> np.ndarray:
        """Current contents of a row (zeros if never written)."""
        key = (bank, row)
        if key not in self._data:
            self._data[key] = np.zeros(self._words_per_row, dtype=np.uint64)
        return self._data[key]

    def is_live(self, bank: int, row: RowId) -> bool:
        """Whether the row holds meaningful (tracked) data."""
        return (bank, row) in self._live

    def charge_fraction(self, bank: int, row: RowId) -> float:
        """Current per-cell charge as a fraction of VDD."""
        return self._charge.get((bank, row), self.tech.full_restore_fraction)

    def requires_pair(self, bank: int, row: RowId) -> bool:
        """Whether the row is partially restored (single ACT is unsafe)."""
        return (bank, row) in self._requires_pair

    # ------------------------------------------------------------------
    # Retention arithmetic
    # ------------------------------------------------------------------
    def _cycles_to_ms(self, cycles: int) -> float:
        return cycles / (self.clock_mhz * 1000.0)

    def _base_retention_ms(self, bank: int, row: RowId) -> float:
        if self.retention is None:
            return self.tech.retention_base_ms
        return self.retention.row_retention_ms(
            self.channel,
            bank,
            row.subarray,
            row.index,
            is_copy=row.kind is RowKind.COPY,
            base_retention_ms=self.tech.retention_base_ms,
        )

    def _retention_limit_ms(self, bank: int, row: RowId, n_cells: int) -> float:
        """Retention of the row given its charge and pairing state."""
        charge = self.charge_fraction(bank, row)
        scale = self.bitline.retention_time_ms(n_cells, charge) / (
            self.tech.retention_base_ms
        )
        return self._base_retention_ms(bank, row) * scale

    def _check_retention(self, bank: int, row: RowId, now: int, n_cells: int) -> None:
        key = (bank, row)
        if not self.enforce_retention or key not in self._live:
            return
        elapsed_ms = self._cycles_to_ms(now - self._restore_time.get(key, 0))
        limit_ms = self._retention_limit_ms(bank, row, n_cells)
        if elapsed_ms > limit_ms:
            raise DataIntegrityError(
                f"bank {bank} row {row}: charge decayed past retention "
                f"({elapsed_ms:.1f} ms elapsed > {limit_ms:.1f} ms limit)"
            )

    # ------------------------------------------------------------------
    # Command hooks (driven by DramChannel)
    # ------------------------------------------------------------------
    def on_activate(self, command: Command, now: int) -> None:
        """Mechanism hook: an activation command was issued."""
        bank = command.bank
        rows = command.rows
        if command.kind is CommandKind.ACT:
            row = rows[0]
            if (bank, row) in self._requires_pair and (bank, row) in self._live:
                raise DataIntegrityError(
                    f"single-row activation of partially-restored row {row}: "
                    "data would be corrupted (must use ACT-t with its pair)"
                )
            self._check_retention(bank, row, now, n_cells=1)
        elif command.kind is CommandKind.ACT_T:
            source, dest = rows
            self._check_retention(bank, source, now, n_cells=2)
            src_key, dst_key = (bank, source), (bank, dest)
            src_live = src_key in self._live
            dst_live = dst_key in self._live
            if src_live != dst_live:
                # One row holds live data, the other holds unknown charge:
                # simultaneous activation fights the sense amplifier and
                # corrupts the live row.
                raise DataIntegrityError(
                    f"ACT-t pairs live row with non-duplicate "
                    f"({source} live={src_live}, {dest} live={dst_live})"
                )
            if src_live and dst_live:
                if not np.array_equal(self.row_data(bank, source),
                                      self.row_data(bank, dest)):
                    raise DataIntegrityError(
                        "ACT-t on rows holding different data corrupts both"
                    )
        elif command.kind is CommandKind.ACT_C:
            source, dest = rows
            if (bank, source) in self._requires_pair and (bank, source) in self._live:
                raise DataIntegrityError(
                    f"ACT-c senses row {source} alone before connecting the "
                    "copy row; the source must be fully restored"
                )
            self._check_retention(bank, source, now, n_cells=1)
            # RowClone semantics: restoration writes source data into dest.
            self._data[(bank, dest)] = self.row_data(bank, source).copy()
            if (bank, source) in self._live:
                self._live.add((bank, dest))
        self._record_hammer(bank, rows, now)

    def on_read(self, command: Command, now: int) -> None:
        """Reads happen from the latched row buffer; nothing decays."""

    def on_write(self, command: Command, now: int) -> None:
        """Mark every open target row live (contents set via row buffer)."""
        # Device-level writes carry no payload; functional tests set data
        # through set_row_data. A write still makes the row "live" so that
        # integrity checking covers it.

    def on_precharge(self, command: Command, now: int, result) -> None:
        """Mechanism hook: a precharge closed ``result.rows``."""
        bank = command.bank
        full = result.fully_restored
        fraction = (
            self.tech.full_restore_fraction if full else PARTIAL_CHARGE_FRACTION
        )
        paired = len(result.rows) == 2
        for row in result.rows:
            key = (bank, row)
            self._charge[key] = fraction
            self._restore_time[key] = now
            if full or not paired:
                self._requires_pair.discard(key)
            else:
                self._requires_pair.add(key)

    def on_refresh(self, rows: range, now: int) -> None:
        """Fully restore the regular rows in ``rows`` (every bank) and the
        copy rows of every subarray the range touches; reset their hammer
        exposure."""
        geo = self.geometry
        touched_subarrays = {
            r // geo.rows_per_subarray for r in rows if r < geo.rows_per_bank
        }
        for bank in range(geo.banks_per_channel):
            for row_number in rows:
                if row_number >= geo.rows_per_bank:
                    continue
                row = RowId.regular(row_number, geo.rows_per_subarray)
                self._refresh_row(bank, row, now)
                self._hammer_counts.pop((bank, row_number), None)
            for subarray in touched_subarrays:
                for copy_index in range(geo.copy_rows_per_subarray):
                    self._refresh_row(bank, RowId.copy(subarray, copy_index), now)

    def _refresh_row(self, bank: int, row: RowId, now: int) -> None:
        key = (bank, row)
        if key in self._live:
            # Refresh of a partially-restored row re-drives it to full
            # charge through its own wordline; pairing is no longer needed.
            self._charge[key] = self.tech.full_restore_fraction
            self._restore_time[key] = now
            self._requires_pair.discard(key)

    # ------------------------------------------------------------------
    # RowHammer disturbance
    # ------------------------------------------------------------------
    def _record_hammer(self, bank: int, rows: tuple[RowId, ...], now: int) -> None:
        if self.hammer_threshold is None:
            return
        geo = self.geometry
        for row in rows:
            if row.kind is not RowKind.REGULAR:
                continue
            row_number = row.bank_row(geo.rows_per_subarray)
            key = (bank, row_number)
            count = self._hammer_counts.get(key, 0) + 1
            self._hammer_counts[key] = count
            if count == self.hammer_threshold:
                self._disturb_neighbors(bank, row_number, now)

    def _disturb_neighbors(self, bank: int, aggressor_row: int, now: int) -> None:
        """Flip one bit in each live physically-adjacent regular row."""
        geo = self.geometry
        for victim_number in (aggressor_row - 1, aggressor_row + 1):
            if not 0 <= victim_number < geo.rows_per_bank:
                continue
            victim = RowId.regular(victim_number, geo.rows_per_subarray)
            if (bank, victim) not in self._live:
                continue
            data = self.row_data(bank, victim)
            word = (aggressor_row * 2654435761) % len(data)
            bit = (aggressor_row * 40503) % 64
            data[word] = data[word] ^ np.uint64(1 << bit)
            self.disturbance_flips += 1

    def hammer_count(self, bank: int, row_number: int) -> int:
        """Activations of ``row_number`` since its last refresh."""
        return self._hammer_counts.get((bank, row_number), 0)
