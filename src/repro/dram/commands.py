"""DRAM command set, including CROW's new multiple-row-activation commands.

The conventional LPDDR4 commands are ``ACT``, ``RD``, ``WR``, ``PRE`` and
``REF``. CROW adds two (paper Section 4.1):

* ``ACT_C`` (*activate-and-copy*) — activates a regular row, then enables a
  copy row's wordline after sensing so that restoration writes the data
  into both rows (an in-DRAM RowClone-style copy).
* ``ACT_T`` (*activate-two*) — simultaneously activates a regular row and a
  copy row holding the same data, reducing activation latency.

Row identity is expressed with :class:`RowId`, which distinguishes the
regular-row address space (driven by the conventional local decoder) from
the copy-row space (driven by the small CROW decoder in each subarray).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import ConfigError

__all__ = ["CommandKind", "RowKind", "RowId", "ActTimings", "Command"]


class CommandKind(enum.IntEnum):
    """All commands the memory controller can issue to the device."""

    ACT = 0
    ACT_C = 1
    ACT_T = 2
    RD = 3
    WR = 4
    PRE = 5
    REF = 6

    @property
    def is_activation(self) -> bool:
        """Whether this command opens row(s)."""
        return self in (CommandKind.ACT, CommandKind.ACT_C, CommandKind.ACT_T)


class RowKind(enum.IntEnum):
    """Whether a row belongs to the regular or the copy decoder's space."""

    REGULAR = 0
    COPY = 1


class RowId(NamedTuple):
    """Identity of one physical row within a bank.

    ``subarray`` is the subarray index within the bank; ``index`` is the
    row index within that subarray's regular (0..rows_per_subarray-1) or
    copy (0..copy_rows-1) space depending on ``kind``.
    """

    kind: RowKind
    subarray: int
    index: int

    @classmethod
    def regular(cls, row: int, rows_per_subarray: int) -> "RowId":
        """Build a regular-row id from a bank-level row number."""
        if row < 0:
            raise ConfigError(f"row must be non-negative, got {row}")
        return cls(RowKind.REGULAR, row // rows_per_subarray, row % rows_per_subarray)

    @classmethod
    def copy(cls, subarray: int, copy_index: int) -> "RowId":
        """Build a copy-row id from subarray and copy-slot indices."""
        if subarray < 0 or copy_index < 0:
            raise ConfigError("subarray and copy_index must be non-negative")
        return cls(RowKind.COPY, subarray, copy_index)

    def bank_row(self, rows_per_subarray: int) -> int:
        """Bank-level row number (regular rows only)."""
        if self.kind is not RowKind.REGULAR:
            raise ConfigError("copy rows have no bank-level row number")
        return self.subarray * rows_per_subarray + self.index


@dataclass(frozen=True)
class ActTimings:
    """Effective timing of one activation, chosen by the mechanism.

    ``tras_full`` is the time after which the activated cells are fully
    restored; ``tras_early`` is the earliest legal precharge time when the
    mechanism permits early restoration termination (equal to
    ``tras_full`` for conventional activations). ``twr`` is the write
    recovery time in effect while this activation is open.
    """

    trcd: int
    tras_full: int
    tras_early: int
    twr: int
    #: Write-recovery time that would *fully* restore the written cells;
    #: when the enforced ``twr`` is the early-terminated variant, the bank
    #: uses this value to decide whether a precharge leaves the row pair
    #: fully or partially restored. ``None`` means ``twr`` already fully
    #: restores.
    twr_full: int | None = None

    def __post_init__(self) -> None:
        if self.trcd < 1 or self.tras_full < 1 or self.twr < 1:
            raise ConfigError("activation timings must be >= 1 cycle")
        if self.tras_early > self.tras_full:
            raise ConfigError("tras_early cannot exceed tras_full")
        if self.twr_full is not None and self.twr_full < self.twr:
            raise ConfigError("twr_full cannot be shorter than twr")

    @property
    def effective_twr_full(self) -> int:
        """Write recovery needed for full restoration of written cells."""
        return self.twr if self.twr_full is None else self.twr_full


@dataclass(frozen=True)
class Command:
    """One command on a channel's command bus.

    ``rows`` carries the activation target(s): one row for ``ACT``, the
    (source, destination) pair for ``ACT_C``, and the simultaneously
    activated pair for ``ACT_T``. ``col`` is the cache-line column for
    ``RD``/``WR``. ``timings`` overrides activation timing for CROW
    commands; conventional ``ACT`` uses the baseline parameter set.
    """

    kind: CommandKind
    bank: int = 0
    rows: tuple[RowId, ...] = ()
    col: int = 0
    timings: ActTimings | None = None
    #: SALP only: which subarray a ``PRE`` targets (conventional banks
    #: have a single open row, so their ``PRE`` needs no subarray).
    subarray: int | None = None

    def __post_init__(self) -> None:
        expected_rows = _EXPECTED_ROWS[self.kind]
        if len(self.rows) != expected_rows:
            raise ConfigError(
                f"{self.kind.name} requires {expected_rows} row(s), "
                f"got {len(self.rows)}"
            )
        if self.kind in (CommandKind.ACT_C, CommandKind.ACT_T):
            source, dest = self.rows
            if dest.kind is not RowKind.COPY:
                raise ConfigError(
                    f"{self.kind.name} second row must be a copy row"
                )
            if source.subarray != dest.subarray:
                raise ConfigError(
                    f"{self.kind.name} rows must share a subarray "
                    f"(got {source.subarray} and {dest.subarray})"
                )


#: Row-operand count per command kind (validation table, hoisted out of
#: ``Command.__post_init__`` — rebuilding it per construction dominated
#: command-issue cost in profile runs).
_EXPECTED_ROWS = {
    CommandKind.ACT: 1,
    CommandKind.ACT_C: 2,
    CommandKind.ACT_T: 2,
    CommandKind.RD: 0,
    CommandKind.WR: 0,
    CommandKind.PRE: 0,
    CommandKind.REF: 0,
}
