"""Per-row DRAM retention model with weak-row injection.

The paper builds CROW-ref on two empirical facts from retention studies
(Liu et al. [64, 65], Patel et al. [87]): (1) only a tiny fraction of cells
fail when the refresh interval is extended (a bit error rate around 4e-9 at
256 ms), and (2) weak cells are distributed uniformly at random. This
module implements exactly that generative model:

* :func:`bit_error_rate` scales the published BER anchor across intervals,
* :class:`RetentionModel` lazily samples, per subarray, which regular and
  copy rows are *weak* at a target refresh interval, deterministically from
  a seed, in either ``sampled`` mode (Eq. 1 statistics) or ``fixed`` mode
  (exactly *k* weak rows per subarray — the paper's pessimistic Figure 13
  assumption of three).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.errors import ConfigError

__all__ = ["bit_error_rate", "RetentionModel"]

#: Published anchor: BER of ~4e-9 when refreshing every 256 ms [65].
BER_ANCHOR = 4e-9
BER_ANCHOR_INTERVAL_MS = 256.0
#: Retention-failure steepness: halving the interval cuts the error rate
#: by roughly an order of magnitude in experimental data.
BER_EXPONENT = 3.5


#: Retention roughly halves per +10 °C (the classic DRAM leakage rule of
#: thumb); profiling is specified at the worst-case temperature.
RETENTION_TEMPERATURE_ANCHOR_C = 85.0
RETENTION_HALVING_C = 10.0


def bit_error_rate(interval_ms: float, temperature_c: float = 85.0) -> float:
    """Probability that a given cell fails at ``interval_ms`` refresh.

    Power-law scaling of the 256 ms anchor (the steep exponent reflects
    the experimentally-observed sharp drop in failures at shorter
    intervals), with the Arrhenius-style rule of thumb that retention
    halves per +10 °C: profiling at a *lower* temperature than worst case
    under-reports weak cells (why profilers test at aggressive
    conditions — REAPER [87]).
    """
    if interval_ms <= 0:
        raise ConfigError("interval_ms must be positive")
    # Hotter chip => same wall-clock interval stresses cells as if it
    # were proportionally longer at the anchor temperature.
    scale = 2.0 ** (
        (temperature_c - RETENTION_TEMPERATURE_ANCHOR_C) / RETENTION_HALVING_C
    )
    effective_ms = interval_ms * scale
    return BER_ANCHOR * (effective_ms / BER_ANCHOR_INTERVAL_MS) ** BER_EXPONENT


class RetentionModel:
    """Deterministic weak-row oracle for the whole memory system.

    Parameters
    ----------
    geometry:
        Memory organization (rows per subarray, copy rows, ...).
    target_interval_ms:
        The extended refresh interval CROW-ref wants to run at; rows that
        cannot retain data for this long are *weak*.
    weak_rows_per_subarray:
        ``None`` samples weak rows from the BER statistics ("sampled"
        mode); an integer plants exactly that many weak regular rows in
        every subarray ("fixed" mode, the paper's Figure 13 assumption).
    seed:
        Master seed; every subarray derives its own stream, so queries are
        reproducible and order-independent.
    """

    def __init__(
        self,
        geometry: DramGeometry,
        target_interval_ms: float = 128.0,
        weak_rows_per_subarray: int | None = None,
        seed: int = 1,
    ) -> None:
        if target_interval_ms <= 0:
            raise ConfigError("target_interval_ms must be positive")
        if weak_rows_per_subarray is not None and not (
            0 <= weak_rows_per_subarray <= geometry.rows_per_subarray
        ):
            raise ConfigError("weak_rows_per_subarray out of range")
        self.geometry = geometry
        self.target_interval_ms = target_interval_ms
        self.weak_rows_per_subarray = weak_rows_per_subarray
        self.seed = seed
        self._cache: dict[tuple[int, int, int], tuple[frozenset[int], frozenset[int]]] = {}

    # ------------------------------------------------------------------
    # Statistics (paper Section 4.2.1)
    # ------------------------------------------------------------------
    @property
    def weak_row_probability(self) -> float:
        """Eq. 1: probability a row has at least one weak cell."""
        cells_per_row = self.geometry.row_size_bytes * 8
        ber = bit_error_rate(self.target_interval_ms)
        return 1.0 - (1.0 - ber) ** cells_per_row

    # ------------------------------------------------------------------
    # Weak-row queries
    # ------------------------------------------------------------------
    def _subarray_sets(
        self, channel: int, bank: int, subarray: int
    ) -> tuple[frozenset[int], frozenset[int]]:
        key = (channel, bank, subarray)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rng = np.random.default_rng(
            (self.seed, channel, bank, subarray, 0xC0DE)
        )
        rows = self.geometry.rows_per_subarray
        copies = self.geometry.copy_rows_per_subarray
        if self.weak_rows_per_subarray is None:
            p_weak = self.weak_row_probability
            n_weak = int(rng.binomial(rows, p_weak))
            n_weak_copy = int(rng.binomial(copies, p_weak)) if copies else 0
        else:
            n_weak = self.weak_rows_per_subarray
            # Copy rows are far fewer, so in fixed mode they stay strong
            # unless sampling says otherwise; weak copy rows are exercised
            # explicitly in tests via sampled mode.
            n_weak_copy = 0
        weak = frozenset(
            int(i) for i in rng.choice(rows, size=n_weak, replace=False)
        ) if n_weak else frozenset()
        weak_copy = frozenset(
            int(i) for i in rng.choice(copies, size=n_weak_copy, replace=False)
        ) if n_weak_copy else frozenset()
        result = (weak, weak_copy)
        self._cache[key] = result
        return result

    def weak_regular_rows(
        self, channel: int, bank: int, subarray: int
    ) -> frozenset[int]:
        """Local indices of weak regular rows in one subarray."""
        return self._subarray_sets(channel, bank, subarray)[0]

    def weak_copy_rows(
        self, channel: int, bank: int, subarray: int
    ) -> frozenset[int]:
        """Local indices of weak copy rows in one subarray."""
        return self._subarray_sets(channel, bank, subarray)[1]

    def is_weak_regular(
        self, channel: int, bank: int, subarray: int, index: int
    ) -> bool:
        """Whether the regular row is weak at the target interval."""
        return index in self.weak_regular_rows(channel, bank, subarray)

    def weak_set_digest(self, channels: int | None = None) -> str:
        """Content digest of every weak regular/copy row set (16 hex).

        Canonical text form — sorted indices per subarray, subarrays in
        (channel, bank, subarray) order — hashed with sha256, so two
        processes (or two machines) agree byte-for-byte exactly when
        their models sample identical weak sets. The probe weak-row
        routine and the cross-process determinism tests both rely on
        this being stable for a given (geometry, target, mode, seed).
        """
        channels = self.geometry.channels if channels is None else channels
        digest = hashlib.sha256()
        for channel in range(channels):
            for bank in range(self.geometry.banks_per_channel):
                for subarray in range(self.geometry.subarrays_per_bank):
                    regular, copy = self._subarray_sets(
                        channel, bank, subarray
                    )
                    digest.update(
                        f"{channel}/{bank}/{subarray}:"
                        f"{sorted(regular)}|{sorted(copy)}\n".encode()
                    )
        return digest.hexdigest()[:16]

    def row_retention_ms(
        self,
        channel: int,
        bank: int,
        subarray: int,
        index: int,
        is_copy: bool = False,
        base_retention_ms: float = 64.0,
    ) -> float:
        """Retention time of one fully-restored row.

        Strong rows comfortably exceed the target interval; weak rows fall
        somewhere between the base window and the target interval (they
        are safe at the standard rate but fail at the extended one).
        """
        weak_set = (
            self.weak_copy_rows(channel, bank, subarray)
            if is_copy
            else self.weak_regular_rows(channel, bank, subarray)
        )
        rng = np.random.default_rng(
            (self.seed, channel, bank, subarray, index, int(is_copy), 0xFADE)
        )
        if index in weak_set:
            low = base_retention_ms
            high = max(low + 1e-3, self.target_interval_ms * 0.999)
            return float(rng.uniform(low, high))
        return float(self.target_interval_ms * rng.uniform(4.0, 16.0))
