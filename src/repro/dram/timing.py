"""LPDDR4 timing parameters and CROW command timing derivation.

All values are stored in DRAM bus-clock cycles (1600 MHz by default, as in
Table 2 of the paper: tRCD/tRAS/tWR = 29/67/29 cycles = 18/42/18 ns).

Density scaling: higher-density chips refresh more rows per REF command,
so tRFC grows with density while tREFI stays fixed by the refresh window.
The 8–32 Gbit points follow JEDEC trends; 64 Gbit is the paper's
"futuristic" extrapolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.circuit.mra import CrowTimingFactors
from repro.errors import ConfigError
from repro.units import ms_to_cycles, ns_to_cycles

__all__ = [
    "TimingParameters",
    "CrowTimings",
    "TRFC_NS_BY_DENSITY",
    "scale_cycles",
]

#: Refresh-cycle time (all-bank REF) in nanoseconds, by chip density in Gbit.
TRFC_NS_BY_DENSITY = {8: 280.0, 16: 380.0, 32: 550.0, 64: 950.0}

#: REF commands required to refresh every row once per refresh window.
REF_COMMANDS_PER_WINDOW = 8192


@dataclass(frozen=True)
class TimingParameters:
    """DRAM timing constraint set, in bus-clock cycles."""

    clock_mhz: float = 1600.0
    trcd: int = 29
    tras: int = 67
    trp: int = 29
    twr: int = 29
    tcl: int = 28
    tcwl: int = 18
    tbl: int = 8
    tccd: int = 8
    trtp: int = 12
    twtr: int = 16
    trrd: int = 16
    tfaw: int = 64
    trfc: int = 448
    trefi: int = 12500
    refresh_window_ms: float = 64.0

    def __post_init__(self) -> None:
        for name in (
            "trcd",
            "tras",
            "trp",
            "twr",
            "tcl",
            "tcwl",
            "tbl",
            "tccd",
            "trtp",
            "twtr",
            "trrd",
            "tfaw",
            "trfc",
            "trefi",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1 cycle")
        if self.clock_mhz <= 0:
            raise ConfigError("clock_mhz must be positive")
        # Cross-field sanity: parameter sets violating these describe a
        # device that cannot operate (a row would close before its first
        # column command, four back-to-back ACTs would overrun tFAW, or
        # refresh would occupy the channel full-time).
        if self.tras < self.trcd:
            raise ConfigError(
                f"tras ({self.tras}) must be >= trcd ({self.trcd}): a row "
                f"must stay open at least until it can be accessed"
            )
        if self.tfaw < self.trrd:
            raise ConfigError(
                f"tfaw ({self.tfaw}) must be >= trrd ({self.trrd}): the "
                f"four-ACT window cannot be shorter than one ACT gap"
            )
        if self.trefi <= self.trfc:
            raise ConfigError(
                f"trefi ({self.trefi}) must be > trfc ({self.trfc}): "
                f"refresh would blackout the channel continuously"
            )

    @property
    def trc(self) -> int:
        """Minimum activate-to-activate time for the same bank."""
        return self.tras + self.trp

    @classmethod
    def lpddr4(
        cls,
        density_gbit: int = 8,
        refresh_window_ms: float = 64.0,
        clock_mhz: float = 1600.0,
    ) -> "TimingParameters":
        """Standard LPDDR4 timings for a given chip density.

        ``refresh_window_ms`` is the interval within which every row must
        be refreshed once; CROW-ref extends it (e.g. 64 ms -> 128 ms) by
        remapping retention-weak rows (paper Section 4.2).
        """
        if density_gbit not in TRFC_NS_BY_DENSITY:
            raise ConfigError(
                f"density_gbit must be one of {sorted(TRFC_NS_BY_DENSITY)}"
            )
        if refresh_window_ms <= 0:
            raise ConfigError("refresh_window_ms must be positive")
        trefi = ms_to_cycles(refresh_window_ms, clock_mhz) // REF_COMMANDS_PER_WINDOW
        return cls(
            clock_mhz=clock_mhz,
            trcd=ns_to_cycles(18.0, clock_mhz),
            tras=ns_to_cycles(42.0, clock_mhz),
            trp=ns_to_cycles(18.0, clock_mhz),
            twr=ns_to_cycles(18.0, clock_mhz),
            tcl=ns_to_cycles(17.5, clock_mhz),
            tcwl=ns_to_cycles(11.0, clock_mhz),
            tbl=8,
            tccd=8,
            trtp=ns_to_cycles(7.5, clock_mhz),
            twtr=ns_to_cycles(10.0, clock_mhz),
            trrd=ns_to_cycles(10.0, clock_mhz),
            tfaw=ns_to_cycles(40.0, clock_mhz),
            trfc=ns_to_cycles(TRFC_NS_BY_DENSITY[density_gbit], clock_mhz),
            trefi=trefi,
            refresh_window_ms=refresh_window_ms,
        )

    @classmethod
    def ddr4(
        cls,
        density_gbit: int = 8,
        refresh_window_ms: float = 64.0,
        clock_mhz: float = 1200.0,
    ) -> "TimingParameters":
        """DDR4-2400-class timings (the paper's mechanisms are not
        LPDDR4-specific — Section 7 notes they apply to other DRAM types).

        DDR4 runs a slightly different tCL/tRCD/tRP point and a 64 ms
        standard refresh window (Section 2.2).
        """
        if density_gbit not in TRFC_NS_BY_DENSITY:
            raise ConfigError(
                f"density_gbit must be one of {sorted(TRFC_NS_BY_DENSITY)}"
            )
        if refresh_window_ms <= 0:
            raise ConfigError("refresh_window_ms must be positive")
        trefi = ms_to_cycles(refresh_window_ms, clock_mhz) // REF_COMMANDS_PER_WINDOW
        return cls(
            clock_mhz=clock_mhz,
            trcd=ns_to_cycles(13.32, clock_mhz),
            tras=ns_to_cycles(32.0, clock_mhz),
            trp=ns_to_cycles(13.32, clock_mhz),
            twr=ns_to_cycles(15.0, clock_mhz),
            tcl=ns_to_cycles(13.32, clock_mhz),
            tcwl=ns_to_cycles(10.0, clock_mhz),
            tbl=4,
            tccd=4,
            trtp=ns_to_cycles(7.5, clock_mhz),
            twtr=ns_to_cycles(7.5, clock_mhz),
            trrd=ns_to_cycles(6.4, clock_mhz),
            tfaw=ns_to_cycles(25.0, clock_mhz),
            trfc=ns_to_cycles(TRFC_NS_BY_DENSITY[density_gbit], clock_mhz),
            trefi=trefi,
            refresh_window_ms=refresh_window_ms,
        )

    def with_refresh_window(self, refresh_window_ms: float) -> "TimingParameters":
        """Copy with the refresh window (and hence tREFI) changed."""
        if refresh_window_ms <= 0:
            raise ConfigError("refresh_window_ms must be positive")
        trefi = (
            ms_to_cycles(refresh_window_ms, self.clock_mhz) // REF_COMMANDS_PER_WINDOW
        )
        return replace(self, trefi=trefi, refresh_window_ms=refresh_window_ms)


def scale_cycles(cycles: int, factor: float) -> int:
    """Scale a cycle count by a timing factor, rounding up (safe side)."""
    return max(1, math.ceil(cycles * factor - 1e-9))


# Backwards-compatible private alias used inside this module.
_scale = scale_cycles


@dataclass(frozen=True)
class CrowTimings:
    """Resolved cycle counts for the CROW commands (from Table 1 factors).

    ``*_full`` tRAS values fully restore the activated cells;
    ``*_early`` values terminate restoration early (partial restoration).
    """

    trcd_act_t_full: int
    trcd_act_t_partial: int
    tras_act_t_full: int
    tras_act_t_early: int
    tras_act_t_partial_early: int
    trcd_act_c: int
    tras_act_c_full: int
    tras_act_c_early: int
    twr_mra_full: int
    twr_mra_early: int

    @classmethod
    def from_factors(
        cls, timing: TimingParameters, factors: CrowTimingFactors | None = None
    ) -> "CrowTimings":
        """Apply Table 1 factors to the baseline timing parameter set."""
        f = factors if factors is not None else CrowTimingFactors.paper()
        f.validate()
        return cls(
            trcd_act_t_full=_scale(timing.trcd, f.act_t_full_trcd),
            trcd_act_t_partial=_scale(timing.trcd, f.act_t_partial_trcd),
            tras_act_t_full=_scale(timing.tras, f.act_t_tras_full),
            tras_act_t_early=_scale(timing.tras, f.act_t_tras_early),
            tras_act_t_partial_early=_scale(timing.tras, f.act_t_partial_tras_early),
            trcd_act_c=_scale(timing.trcd, f.act_c_trcd),
            tras_act_c_full=_scale(timing.tras, f.act_c_tras_full),
            tras_act_c_early=_scale(timing.tras, f.act_c_tras_early),
            twr_mra_full=_scale(timing.twr, f.twr_full),
            twr_mra_early=_scale(timing.twr, f.twr_early),
        )
