"""Observability subsystem: hierarchical stats, epoch series, tracing.

Every headline number in the paper's evaluation is an *internal*
statistic — CROW-table hit rate (Fig 8), the evicted-row full-restore
fraction (Section 8.1.1), row-buffer state residency feeding the energy
model (Fig 10). This package makes those first-class:

* :class:`StatRegistry` — a gem5/Ramulator-style tree of typed stats
  (:class:`Counter`, :class:`Gauge`, :class:`Ratio`, :class:`Histogram`
  with log buckets and p50/p95/p99, :class:`EpochSeries` sampled per
  epoch of memory ticks), exporting to plain deterministic dicts;
* :class:`EventTrace` — a bounded ring buffer of command-level events
  (tick, command, bank, row, mechanism decision) with JSONL export;
* :class:`SystemTelemetry` — the collector that instruments a
  :class:`~repro.sim.system.System`: live latency histograms and command
  traces, per-epoch sampling on the event heap, and an end-of-run
  harvest of every raw counter in the stack.

Telemetry is **opt-in and zero-cost when disabled**: enable it with
``SystemConfig(telemetry=True)`` and read ``SimResult.telemetry``, or use
``python -m repro stats`` from the command line. Exports contain no
wall-clock values, so identical (config, seed) runs produce
byte-identical payloads — :func:`export_digest` fingerprints them.
"""

from repro.telemetry.collect import SystemTelemetry
from repro.telemetry.stats import (
    Counter,
    EpochSeries,
    Gauge,
    Histogram,
    Ratio,
    StatGroup,
    StatRegistry,
    export_digest,
)
from repro.telemetry.summary import headline_summary
from repro.telemetry.trace import EventTrace

__all__ = [
    "headline_summary",
    "Counter",
    "Gauge",
    "Ratio",
    "Histogram",
    "EpochSeries",
    "StatGroup",
    "StatRegistry",
    "EventTrace",
    "SystemTelemetry",
    "export_digest",
]
