"""Low-overhead command-level event tracing.

:class:`EventTrace` is a fixed-capacity ring buffer of DRAM command
events — ``(tick, command kind, bank, rows, detail)`` — cheap enough to
leave attached during full runs: recording is one tuple append plus an
index increment, and when the ring wraps, old events are overwritten
(``dropped`` counts them). A trace is **zero-cost when disabled**: the
channel/controller hooks hold ``None`` and never construct events.

The ``detail`` slot carries the mechanism decision for activations
(``ACT`` = conventional, ``ACT_T`` = CROW-table hit pair-activation,
``ACT_C`` = duplicate-on-miss) and restoration state for precharges.
Ticks are simulation cycles — no wall-clock anywhere, so exports are
byte-identical across runs of the same configuration and seed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError

__all__ = ["EventTrace"]

#: Export field order (one event tuple maps to these keys).
FIELDS = ("tick", "cmd", "bank", "row", "detail")


class EventTrace:
    """Bounded ring buffer of ``(tick, cmd, bank, row, detail)`` events."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigError("trace capacity must be >= 1")
        self.capacity = capacity
        self._ring: list[tuple] = [None] * capacity  # type: ignore[list-item]
        self._next = 0
        self.recorded = 0

    # -- recording (hot path) -------------------------------------------

    def record(
        self,
        tick: int,
        cmd: str,
        bank: "int | None" = None,
        row: "str | None" = None,
        detail: "str | None" = None,
    ) -> None:
        """Append one event, overwriting the oldest when full."""
        self._ring[self._next] = (tick, cmd, bank, row, detail)
        self._next = (self._next + 1) % self.capacity
        self.recorded += 1

    @staticmethod
    def _row_text(row) -> str:
        """Compact row spelling: ``s<subarray>:r<index>`` / ``:c<way>``."""
        kind = "c" if getattr(row.kind, "name", "") == "COPY" else "r"
        return f"s{row.subarray}:{kind}{row.index}"

    def record_command(self, now: int, command) -> None:
        """Adapter for the ``DramChannel`` recorder-style hook."""
        rows = getattr(command, "rows", None)
        row = None
        detail = None
        if rows:
            row = self._row_text(rows[0])
            if len(rows) > 1:
                detail = f"pair:{self._row_text(rows[1])}"
        elif getattr(command, "col", None) is not None:
            row = f"col:{command.col}"
        self.record(now, command.kind.name, command.bank, row, detail)

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return min(self.recorded, self.capacity)

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring wrapped."""
        return max(0, self.recorded - self.capacity)

    def reset(self) -> None:
        """Drop everything (warm-up boundary)."""
        self._ring = [None] * self.capacity  # type: ignore[list-item]
        self._next = 0
        self.recorded = 0

    # -- snapshot --------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "ring": list(self._ring),
            "next": self._next,
            "recorded": self.recorded,
        }

    def load_state_dict(self, state: dict) -> None:
        self._ring = [
            tuple(e) if e is not None else None for e in state["ring"]
        ]
        self._next = state["next"]
        self.recorded = state["recorded"]

    # -- export ----------------------------------------------------------

    def events(self) -> list[tuple]:
        """Events in recording order (oldest surviving first)."""
        if self.recorded <= self.capacity:
            return [e for e in self._ring[: self._next]]
        return (
            self._ring[self._next:] + self._ring[: self._next]
        )

    def to_dicts(self) -> list[dict]:
        """Events as plain dicts (JSON-ready, deterministic)."""
        return [dict(zip(FIELDS, event)) for event in self.events()]

    def export(self) -> dict:
        """Summary + events, embeddable in a telemetry export."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": self.to_dicts(),
        }

    def write_jsonl(self, path: "str | Path") -> int:
        """Write one JSON object per event; returns the event count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        events = self.to_dicts()
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)
