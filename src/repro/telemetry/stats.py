"""Hierarchical, typed simulation statistics (gem5/Ramulator-style).

A :class:`StatRegistry` is a tree of named groups, each holding typed
stats:

* :class:`Counter` — monotonic event count;
* :class:`Gauge` — instantaneous value (occupancy, residency fraction);
* :class:`Ratio` — numerator/denominator pair whose value is ``None``
  (never a division error) when the denominator is zero;
* :class:`Histogram` — log2-bucketed distribution with exact count, sum,
  min and max, and interpolated percentiles (p50/p95/p99);
* :class:`EpochSeries` — a value sampled once per epoch (epoch length in
  memory ticks), giving every statistic a time axis.

Exports are plain nested dicts of JSON types, deterministic by
construction: no wall-clock timestamps, no object identities, keys
emitted in insertion order and serialized with ``sort_keys``. Two runs
with identical configuration and seed therefore produce byte-identical
exports — which is what :func:`export_digest` hashes.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Callable, Iterator

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Ratio",
    "Histogram",
    "EpochSeries",
    "StatGroup",
    "StatRegistry",
    "export_digest",
]


class Stat:
    """Base class: a named, described, exportable statistic."""

    kind = "stat"

    def __init__(self, name: str, desc: str = "") -> None:
        if not name or "." in name:
            raise ConfigError(
                f"stat name must be non-empty and dot-free, got {name!r}"
            )
        self.name = name
        self.desc = desc

    def reset(self) -> None:
        """Zero the stat (warm-up boundary)."""
        raise NotImplementedError

    def export(self) -> dict:
        """Plain-JSON projection of this stat."""
        raise NotImplementedError

    def _base_export(self) -> dict:
        return {"kind": self.kind, "desc": self.desc}


class Counter(Stat):
    """Monotonic event count."""

    kind = "counter"

    def __init__(self, name: str, desc: str = "") -> None:
        super().__init__(name, desc)
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        """Overwrite the value (harvest-time population from raw counters)."""
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def export(self) -> dict:
        return {**self._base_export(), "value": self.value}


class Gauge(Stat):
    """Instantaneous value (occupancy, fraction, temperature...)."""

    kind = "gauge"

    def __init__(self, name: str, desc: str = "") -> None:
        super().__init__(name, desc)
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = None

    def export(self) -> dict:
        return {**self._base_export(), "value": self.value}


#: A Ratio term: a Stat whose ``value`` is read, or a zero-arg callable.
RatioTerm = "Stat | Callable[[], float] | None"


class Ratio(Stat):
    """A derived numerator/denominator statistic.

    The terms may be other stats (their ``value`` is read at export) or
    zero-argument callables. :attr:`value` is **defined for the empty
    case**: it returns ``None`` when the denominator is zero, never a
    ``ZeroDivisionError`` — consumers print ``-`` or skip it.
    """

    kind = "ratio"

    def __init__(
        self,
        name: str,
        desc: str = "",
        numerator=None,
        denominator=None,
    ) -> None:
        super().__init__(name, desc)
        self._num = numerator
        self._den = denominator

    @staticmethod
    def _resolve(term) -> float:
        if term is None:
            return 0.0
        if isinstance(term, Stat):
            return float(term.value or 0)
        if callable(term):
            return float(term())
        return float(term)

    @property
    def numerator(self) -> float:
        return self._resolve(self._num)

    @property
    def denominator(self) -> float:
        return self._resolve(self._den)

    @property
    def value(self) -> float | None:
        """numerator/denominator, or ``None`` when the denominator is 0."""
        den = self.denominator
        if den == 0:
            return None
        return self.numerator / den

    def set(self, numerator, denominator) -> None:
        self._num = numerator
        self._den = denominator

    def reset(self) -> None:
        pass  # derived: resets with its terms

    def export(self) -> dict:
        return {
            **self._base_export(),
            "numerator": self.numerator,
            "denominator": self.denominator,
            "value": self.value,
        }


class Histogram(Stat):
    """Log2-bucketed distribution (latencies span orders of magnitude).

    Bucket ``i`` holds values ``v`` with ``v.bit_length() == i`` — i.e.
    ``[2**(i-1), 2**i)`` for ``i >= 1``, with bucket 0 holding zeros.
    Alongside the buckets the exact count, sum, min and max are kept, so
    the mean is exact and only percentiles are bucket-interpolated.
    """

    kind = "histogram"

    def __init__(self, name: str, desc: str = "", max_buckets: int = 64) -> None:
        super().__init__(name, desc)
        self.max_buckets = max_buckets
        self.reset()

    def reset(self) -> None:
        self.buckets = [0] * self.max_buckets
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int) -> None:
        """Record one sample (negative values clamp to zero)."""
        v = int(value)
        if v < 0:
            v = 0
        index = min(v.bit_length(), self.max_buckets - 1)
        self.buckets[index] += 1
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> float | None:
        """Exact mean of all observed samples (None when empty)."""
        return self.total / self.count if self.count else None

    def state_dict(self) -> dict:
        """Snapshot support: contents only (name/desc are structural)."""
        return {
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def load_state_dict(self, state: dict) -> None:
        self.buckets = list(state["buckets"])
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"]
        self.max = state["max"]

    def percentile(self, p: float) -> float | None:
        """Bucket-interpolated percentile in [0, 100] (None when empty)."""
        if not 0 <= p <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {p}")
        if not self.count:
            return None
        target = p / 100.0 * self.count
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            if not bucket:
                continue
            if cumulative + bucket >= target:
                lo = 0 if index == 0 else 1 << (index - 1)
                hi = 1 if index == 0 else (1 << index) - 1
                lo = max(lo, self.min if self.min is not None else lo)
                hi = min(hi, self.max if self.max is not None else hi)
                if hi <= lo:
                    return float(lo)
                # Linear interpolation inside the bucket.
                within = (target - cumulative) / bucket
                return lo + within * (hi - lo)
            cumulative += bucket
        return float(self.max if self.max is not None else 0)

    def export(self) -> dict:
        populated = {
            str(i): n for i, n in enumerate(self.buckets) if n
        }
        out = {
            **self._base_export(),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": populated,
        }
        for p in (50, 95, 99):
            value = self.percentile(p)
            out[f"p{p}"] = None if value is None else round(value, 3)
        return out


class EpochSeries(Stat):
    """A statistic sampled once per epoch (epoch length in memory ticks).

    ``None`` samples are legal and mean "undefined this epoch" (e.g. read
    latency over an epoch that served no reads); renderers show a gap.
    """

    kind = "epoch_series"

    def __init__(
        self, name: str, desc: str = "", epoch_cycles: int = 10_000
    ) -> None:
        super().__init__(name, desc)
        if epoch_cycles < 1:
            raise ConfigError("epoch_cycles must be >= 1")
        self.epoch_cycles = epoch_cycles
        self.samples: list[float | None] = []

    def append(self, value: float | None) -> None:
        if value is not None:
            value = float(value)
            if not math.isfinite(value):
                value = None
        self.samples.append(value)

    def reset(self) -> None:
        self.samples = []

    def state_dict(self) -> dict:
        """Snapshot support: the sampled series."""
        return {"samples": list(self.samples)}

    def load_state_dict(self, state: dict) -> None:
        self.samples = list(state["samples"])

    def __len__(self) -> int:
        return len(self.samples)

    def export(self) -> dict:
        return {
            **self._base_export(),
            "epoch_cycles": self.epoch_cycles,
            "samples": [
                None if s is None else round(s, 6) for s in self.samples
            ],
        }


class StatGroup:
    """One node of the registry tree: named stats + named child groups."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats: dict[str, Stat] = {}
        self._children: dict[str, StatGroup] = {}

    # -- construction ----------------------------------------------------

    def group(self, name: str) -> "StatGroup":
        """Child group, created on first use. Dotted names nest."""
        head, _, rest = name.partition(".")
        if head not in self._children:
            if head in self._stats:
                raise ConfigError(f"{head!r} is already a stat in {self.name!r}")
            self._children[head] = StatGroup(head)
        child = self._children[head]
        return child.group(rest) if rest else child

    def _register(self, stat: Stat) -> Stat:
        if stat.name in self._stats or stat.name in self._children:
            raise ConfigError(
                f"duplicate stat {stat.name!r} in group {self.name!r}"
            )
        self._stats[stat.name] = stat
        return stat

    def counter(self, name: str, desc: str = "") -> Counter:
        return self._register(Counter(name, desc))  # type: ignore[return-value]

    def gauge(self, name: str, desc: str = "") -> Gauge:
        return self._register(Gauge(name, desc))  # type: ignore[return-value]

    def ratio(
        self, name: str, desc: str = "", numerator=None, denominator=None
    ) -> Ratio:
        return self._register(
            Ratio(name, desc, numerator, denominator)
        )  # type: ignore[return-value]

    def histogram(self, name: str, desc: str = "") -> Histogram:
        return self._register(Histogram(name, desc))  # type: ignore[return-value]

    def series(
        self, name: str, desc: str = "", epoch_cycles: int = 10_000
    ) -> EpochSeries:
        return self._register(
            EpochSeries(name, desc, epoch_cycles)
        )  # type: ignore[return-value]

    # -- access ----------------------------------------------------------

    def __getitem__(self, path: str) -> Stat:
        head, _, rest = path.partition(".")
        if rest:
            return self._children[head][rest]
        return self._stats[head]

    def flatten(self, prefix: str = "") -> Iterator[tuple[str, Stat]]:
        """Yield ``(dotted_path, stat)`` pairs, depth-first, in order."""
        for name, stat in self._stats.items():
            yield (f"{prefix}{name}", stat)
        for name, child in self._children.items():
            yield from child.flatten(f"{prefix}{name}.")

    def reset(self) -> None:
        for _, stat in self.flatten():
            stat.reset()

    def export(self) -> dict:
        """Nested plain-dict projection of the whole subtree."""
        out: dict = {}
        for name, stat in self._stats.items():
            out[name] = stat.export()
        for name, child in self._children.items():
            out[name] = child.export()
        return out


class StatRegistry(StatGroup):
    """The root of a stats tree for one simulation run."""

    def __init__(self) -> None:
        super().__init__("root")

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys — byte-stable across runs)."""
        return json.dumps(_canonical(self.export()), sort_keys=True,
                          allow_nan=False)

    def digest(self) -> str:
        """Content digest of the canonical export."""
        return export_digest(self.export())


def _canonical(value):
    """Recursively replace non-finite floats with None (JSON-safe)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def export_digest(export: dict) -> str:
    """sha256 digest of a canonical-JSON telemetry export (first 16 hex).

    Deterministic given identical exports; used by the execution journal
    to fingerprint per-task telemetry without inlining the whole payload.
    """
    encoded = json.dumps(_canonical(export), sort_keys=True, allow_nan=False)
    return hashlib.sha256(encoded.encode()).hexdigest()[:16]
