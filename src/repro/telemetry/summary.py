"""Headline telemetry summaries for journals and wire frames.

A full telemetry export is large (every counter, histogram bucket and
epoch sample in the system). Journals and cluster result frames want the
opposite: a few headline fields plus the content digest that fingerprints
the rest. :func:`headline_summary` is that projection, shared by
:class:`~repro.exec.parallel.ParallelCampaign` (the ``task_telemetry``
journal event) and the cluster worker's result frames, so local and
distributed campaigns journal byte-identical summaries for the same run.
"""

from __future__ import annotations

__all__ = ["headline_summary"]


def headline_summary(result) -> "dict | None":
    """Digest + headline fields of a result's telemetry export.

    Returns ``None`` for results that carry no telemetry (the summary is
    meaningless without an export to fingerprint). All values are plain
    JSON scalars, deterministic for identical (config, seed) runs.
    """
    export = getattr(result, "telemetry", None)
    if export is None:
        return None
    fields: dict = {"telemetry_digest": result.telemetry_digest()}
    channels = export.get("controller", {})
    if channels:
        hits = sum(c["row_hits"]["value"] for c in channels.values())
        accesses = hits + sum(
            c["row_misses"]["value"] + c["row_conflicts"]["value"]
            for c in channels.values()
        )
        fields["reads_served"] = sum(
            c["reads_served"]["value"] for c in channels.values()
        )
        fields["row_hit_rate"] = (
            round(hits / accesses, 6) if accesses else None
        )
    crow = export.get("crow", {})
    if "hit_rate" in crow:
        fields["crow_hit_rate"] = crow["hit_rate"]["value"]
        fields["crow_restore_fraction"] = (
            crow["restore_fraction"]["value"]
        )
    probe = export.get("probe", {})
    if "attempts" in probe:
        fields["probe_attempts"] = probe["attempts"]["value"]
        fields["probe_commits"] = probe["commits"]["value"]
        fields["probe_rejections"] = sum(
            stat["value"] for stat in probe.get("rejected", {}).values()
            if isinstance(stat, dict) and "value" in stat
        )
    return fields
