"""System-wide telemetry collection.

:class:`SystemTelemetry` wires one :class:`~repro.telemetry.StatRegistry`
(plus an optional :class:`~repro.telemetry.EventTrace`) into a running
:class:`~repro.sim.system.System`:

* **live instruments** — the per-channel read-latency
  :class:`~repro.telemetry.Histogram` (observed by the controller's
  completion path) and the command :class:`EventTrace` (fed by the DRAM
  channel's issue path) record as events happen;
* **epoch sampling** — a self-rescheduling callback on the system event
  queue fires every ``epoch_cycles`` memory ticks of the measured region
  and appends per-epoch deltas (IPC, row-hit rate, read latency, CROW hit
  rate) and instantaneous occupancies (queues, MSHRs) to
  :class:`~repro.telemetry.EpochSeries`;
* **harvest** — everything else (command counts, queue/drain/refresh
  counters, CROW-table hits/evictions/restores, CROW-ref remaps, LLC and
  prefetcher counters, bank state residency) is read once from the
  simulator's existing raw counters at :meth:`finalize`, so instrumented
  hot paths pay **nothing** beyond the counters they already maintained.

The design keeps telemetry zero-cost when disabled: a ``System`` built
with ``telemetry=False`` never constructs this object, the controller and
channel hooks stay ``None``, and the simulation loop is unchanged (epoch
sampling rides the existing event heap rather than adding a per-step
check).
"""

from __future__ import annotations

from repro.dram.commands import CommandKind
from repro.telemetry.stats import StatRegistry
from repro.telemetry.trace import EventTrace

__all__ = ["SystemTelemetry"]

#: Attribute probing order for the CROW-cache component of a mechanism
#: (plain CrowCache, or the .cache member of combined/full substrates).
_CACHE_ATTRS = ("hits", "misses", "uncached", "restores", "evictions")


def _cache_component(mechanism):
    """The CROW-cache-like component of ``mechanism``, or ``None``."""
    if all(hasattr(mechanism, attr) for attr in _CACHE_ATTRS):
        return mechanism
    inner = getattr(mechanism, "cache", None)
    if inner is not None and all(hasattr(inner, a) for a in _CACHE_ATTRS):
        return inner
    return None


def _ref_component(mechanism):
    """The CROW-ref-like component of ``mechanism``, or ``None``."""
    if hasattr(mechanism, "remapped_rows") and hasattr(mechanism, "remap"):
        return mechanism
    inner = getattr(mechanism, "ref", None)
    if inner is not None and hasattr(inner, "remapped_rows"):
        return inner
    return None


class SystemTelemetry:
    """Registry + trace + epoch sampler for one :class:`System` run."""

    def __init__(
        self,
        system,
        epoch_cycles: int = 10_000,
        trace_capacity: int = 0,
    ) -> None:
        self.system = system
        self.epoch_cycles = epoch_cycles
        self.registry = StatRegistry()
        self.trace = EventTrace(trace_capacity) if trace_capacity else None

        # Live instruments: one read-latency histogram per channel,
        # observed by the controller completion path.
        latency = self.registry.group("controller")
        self.latency_hists = []
        for index, controller in enumerate(system.controllers):
            hist = latency.group(f"ch{index}").histogram(
                "read_latency",
                "arrival-to-data latency of served reads (memory cycles)",
            )
            controller.latency_hist = hist
            self.latency_hists.append(hist)
        if self.trace is not None:
            for channel in system.channels:
                channel.trace = self.trace

        # Epoch time series.
        epochs = self.registry.group("epochs")
        mk = lambda name, desc: epochs.series(name, desc, epoch_cycles)
        self.s_ipc = mk("ipc", "aggregate IPC over each epoch (CPU cycles)")
        self.s_hit = mk("row_hit_rate", "row-buffer hit fraction per epoch")
        self.s_lat = mk("read_latency", "mean read latency per epoch (cycles)")
        self.s_crow = mk("crow_hit_rate", "CROW-table hit fraction per epoch")
        self.s_readq = mk("read_queue", "read-queue occupancy at epoch end")
        self.s_writeq = mk("write_queue", "write-queue occupancy at epoch end")
        self.s_mshr = mk("mshr", "outstanding misses (all cores) at epoch end")

        self._start = 0
        self._epoch_end = 0
        self._baseline: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Measurement lifecycle
    # ------------------------------------------------------------------
    def begin(self, now: int) -> None:
        """Start the measured region: reset live stats, arm the sampler.

        Must run *after* the system has zeroed its raw counters at the
        warm-up boundary, so epoch deltas and harvested totals agree.
        """
        self._start = now
        for hist in self.latency_hists:
            hist.reset()
        if self.trace is not None:
            self.trace.reset()
        for series in (self.s_ipc, self.s_hit, self.s_lat, self.s_crow,
                       self.s_readq, self.s_writeq, self.s_mshr):
            series.reset()
        self._baseline = self._snapshot()
        self._epoch_end = now + self.epoch_cycles
        self.system.events.schedule(self._epoch_end, self._on_epoch)

    def _snapshot(self) -> dict[str, int]:
        system = self.system
        snap = {
            "retired": sum(core.retired for core in system.cores),
            "hits": 0, "misses": 0, "conflicts": 0,
            "reads": 0, "lat_sum": 0,
            "crow_hits": 0, "crow_acts": 0,
        }
        for controller in system.controllers:
            stats = controller.stats
            snap["hits"] += stats["row_hits"]
            snap["misses"] += stats["row_misses"]
            snap["conflicts"] += stats["row_conflicts"]
            snap["reads"] += stats["reads_served"] + stats["forwarded_reads"]
            snap["lat_sum"] += stats["read_latency_sum"]
        for mechanism in system.mechanisms:
            cache = _cache_component(mechanism)
            if cache is not None:
                snap["crow_hits"] += cache.hits
                snap["crow_acts"] += cache.demand_activations
        return snap

    def _on_epoch(self, now: int) -> None:
        """Sample one epoch and re-arm (rides the system event heap)."""
        system = self.system
        prev, cur = self._baseline, self._snapshot()

        def delta(key: str) -> int:
            return cur[key] - prev[key]

        cpu_cycles = self.epoch_cycles * system.config.core.clock_ratio
        self.s_ipc.append(delta("retired") / cpu_cycles if cpu_cycles else None)
        accesses = delta("hits") + delta("misses") + delta("conflicts")
        self.s_hit.append(delta("hits") / accesses if accesses else None)
        reads = delta("reads")
        self.s_lat.append(delta("lat_sum") / reads if reads else None)
        crow_acts = delta("crow_acts")
        self.s_crow.append(
            delta("crow_hits") / crow_acts if crow_acts else None
        )
        self.s_readq.append(
            sum(len(c.read_q) for c in system.controllers)
        )
        self.s_writeq.append(
            sum(len(c.write_q) for c in system.controllers)
        )
        self.s_mshr.append(sum(core.outstanding for core in system.cores))

        self._baseline = cur
        if all(core.done for core in system.cores):
            return  # run is over; let the loop drain without us
        self._epoch_end = now + self.epoch_cycles
        system.events.schedule(self._epoch_end, self._on_epoch)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Live-instrument contents and sampler position.

        The registry *structure* (groups, stat names) is rebuilt by
        construction; harvest-time counters are populated at
        :meth:`finalize` and need no state here. The pending epoch event
        itself is serialized by the system event heap (as an ``"epoch"``
        entry), not here.
        """
        return {
            "start": self._start,
            "epoch_end": self._epoch_end,
            "baseline": dict(self._baseline),
            "latency_hists": [h.state_dict() for h in self.latency_hists],
            "series": {
                s.name: s.state_dict()
                for s in (self.s_ipc, self.s_hit, self.s_lat, self.s_crow,
                          self.s_readq, self.s_writeq, self.s_mshr)
            },
            "trace": self.trace.state_dict() if self.trace is not None else None,
        }

    def load_state_dict(self, state: dict) -> None:
        self._start = state["start"]
        self._epoch_end = state["epoch_end"]
        self._baseline = dict(state["baseline"])
        for hist, hist_state in zip(self.latency_hists, state["latency_hists"]):
            hist.load_state_dict(hist_state)
        for series in (self.s_ipc, self.s_hit, self.s_lat, self.s_crow,
                       self.s_readq, self.s_writeq, self.s_mshr):
            series.load_state_dict(state["series"][series.name])
        if self.trace is not None and state["trace"] is not None:
            self.trace.load_state_dict(state["trace"])

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------
    def finalize(self, end: int, cycles: int) -> dict:
        """Harvest raw simulator counters into the registry and export."""
        system = self.system
        self._harvest_controllers()
        self._harvest_dram(end, cycles)
        self._harvest_crow()
        self._harvest_mechanism()
        self._harvest_estimate()
        self._harvest_cpu()
        export = self.registry.export()
        if self.trace is not None:
            export["trace"] = self.trace.export()
        export["meta"] = {
            "mechanism": system.config.mechanism,
            "cores": system.config.cores,
            "epoch_cycles": self.epoch_cycles,
            "measure_start": self._start,
            "measure_end": end,
            "cycles": cycles,
        }
        return export

    def _harvest_controllers(self) -> None:
        root = self.registry.group("controller")
        for index, controller in enumerate(self.system.controllers):
            group = root.group(f"ch{index}")
            stats = controller.stats
            counters = {}
            for key in (
                "reads_served", "writes_served", "forwarded_reads",
                "row_hits", "row_misses", "row_conflicts",
                "restore_activations", "refreshes", "write_drains",
            ):
                counters[key] = group.counter(key)
                counters[key].set(stats.get(key, 0))
            group.ratio(
                "row_hit_rate",
                "column accesses served from open rows",
                numerator=counters["row_hits"],
                denominator=lambda c=counters: (
                    c["row_hits"].value + c["row_misses"].value
                    + c["row_conflicts"].value
                ),
            )
            group.ratio(
                "read_latency_avg",
                "mean arrival-to-data read latency (cycles)",
                numerator=stats["read_latency_sum"],
                denominator=stats["reads_served"] + stats["forwarded_reads"],
            )
            trfc = controller.timing.trfc
            refresh_busy = group.counter(
                "refresh_busy_cycles",
                "cycles the channel was blocked by REF (refreshes x tRFC)",
            )
            refresh_busy.set(stats["refreshes"] * trfc)

    def _harvest_dram(self, end: int, cycles: int) -> None:
        root = self.registry.group("dram")
        for index, channel in enumerate(self.system.channels):
            group = root.group(f"ch{index}")
            for kind in CommandKind:
                group.counter(f"cmd_{kind.name.lower()}").set(
                    channel.counts[kind]
                )
            banks = len(channel.banks)
            residency = group.gauge(
                "row_buffer_residency",
                "fraction of bank-cycles with an open row buffer "
                "(energy-model input)",
            )
            if cycles > 0 and banks > 0:
                residency.set(
                    round(
                        channel.open_buffer_cycles(end) / (cycles * banks), 6
                    )
                )
            bank_group = group.group("banks")
            for b, bank in enumerate(channel.banks):
                open_cycles = bank.open_cycles_total
                if bank.is_open:
                    slots = getattr(bank, "subarrays", None)
                    if slots is None:
                        open_cycles += end - bank.act_time
                    else:
                        # SALP banks keep one open epoch per subarray
                        # row buffer; sum the in-progress ones.
                        open_cycles += sum(
                            end - slot.act_time
                            for slot in slots.values()
                            if slot.is_open
                        )
                bank_group.counter(
                    f"b{b}_open_cycles",
                    "cycles this bank held an open row",
                ).set(open_cycles)

    def _harvest_crow(self) -> None:
        caches = [
            c for c in map(_cache_component, self.system.mechanisms)
            if c is not None
        ]
        refs = [
            r for r in map(_ref_component, self.system.mechanisms)
            if r is not None
        ]
        if not caches and not refs:
            return
        group = self.registry.group("crow")
        if caches:
            counters = {}
            for key in _CACHE_ATTRS + ("partial_restores",):
                counters[key] = group.counter(key)
                counters[key].set(
                    sum(getattr(c, key, 0) for c in caches)
                )
            demand = sum(c.demand_activations for c in caches)
            group.ratio(
                "hit_rate",
                "CROW-table hit rate over demand activations (Fig 8)",
                numerator=counters["hits"],
                denominator=demand,
            )
            group.ratio(
                "restore_fraction",
                "evicted-row full-restore activations over all "
                "activations (Section 8.1.1; paper bound: <= 0.006)",
                numerator=counters["restores"],
                denominator=demand + counters["restores"].value,
            )
        if refs:
            group.counter("ref_remapped_rows").set(
                sum(r.remapped_rows for r in refs)
            )
            group.counter("ref_dynamic_remaps").set(
                sum(getattr(r, "dynamic_remaps", 0) for r in refs)
            )
            group.counter("ref_remap_failures").set(
                sum(r.remap_failures for r in refs)
            )
            group.counter("ref_fallback_subarrays").set(
                sum(r.fallback_subarrays for r in refs)
            )

    def _harvest_mechanism(self) -> None:
        """Per-mechanism stat namespaces (``mech.<namespace>``).

        Opt-in via ``Mechanism.telemetry_namespace``: mechanisms that
        predate per-mechanism namespaces leave it ``None`` so the
        committed digest oracle stays byte-identical; plugins that set
        it get their :meth:`~repro.controller.mechanism.Mechanism.stats`
        summed across channels into telemetry snapshots.
        """
        mechanisms = self.system.mechanisms
        namespace = mechanisms[0].telemetry_namespace
        if namespace is None:
            return
        totals: dict[str, float] = {}
        for mechanism in mechanisms:
            for key, value in mechanism.stats().items():
                totals[key] = totals.get(key, 0.0) + value
        group = self.registry.group("mech").group(namespace)
        for key, value in totals.items():
            if value == int(value):
                group.counter(key).set(int(value))
            else:
                group.gauge(key).set(round(value, 6))

    def _harvest_estimate(self) -> None:
        """Estimator arbitration facts (``estimate.*``).

        Opt-in via ``SystemConfig.estimate_telemetry`` — the same trick
        as ``Mechanism.telemetry_namespace``, so the committed digest
        oracle stays byte-identical. Only deterministic facts are
        exported (the winning backend, its accuracy, the coefficient
        set); cache hit counters are process-local runtime state and
        would break cross-process digest stability.
        """
        system = self.system
        if not getattr(system.config, "estimate_telemetry", False):
            return
        from repro.estimate.runtime import (
            channel_coefficients,
            channel_energy_query,
            default_arbiter,
        )

        query = channel_energy_query(
            system.timing, system.energy_model.currents
        )
        rows = default_arbiter().explain(query)
        selected = next(row for row in rows if row["selected"])
        group = self.registry.group("estimate").group("channel_energy")
        group.counter(
            "capable_backends",
            "registered backends able to answer the channel energy query",
        ).set(sum(1 for row in rows if row["accuracy_percent"] > 0))
        name = str(selected["backend"]).replace("-", "_")
        group.counter(
            f"selected_{name}", "winner of accuracy arbitration"
        ).set(1)
        group.gauge("accuracy_percent").set(
            round(float(selected["accuracy_percent"]), 6)
        )
        coefficients = channel_coefficients(
            system.timing, system.energy_model.currents
        )
        coeff_group = group.group("coefficients")
        for key, value in coefficients.as_mapping().items():
            coeff_group.gauge(key).set(round(value, 6))

    def _harvest_cpu(self) -> None:
        system = self.system
        llc_group = self.registry.group("llc")
        llc = system.llc
        hits = llc_group.counter("hits")
        hits.set(llc.hits)
        misses = llc_group.counter("misses")
        misses.set(llc.misses)
        llc_group.counter("writebacks").set(llc.writebacks)
        llc_group.ratio(
            "miss_rate", "demand misses over demand accesses",
            numerator=misses,
            denominator=lambda: hits.value + misses.value,
        )
        cores_group = self.registry.group("cores")
        for core in system.cores:
            group = cores_group.group(f"c{core.core_id}")
            group.counter(
                "instructions", "instructions retired in the measured region"
            ).set(core.measured_instructions)
            group.counter(
                "mshr_stalls", "issue attempts rejected because all MSHRs "
                "were in flight",
            ).set(getattr(core, "mshr_stalls", 0))
            group.counter(
                "demand_misses"
            ).set(system.port.demand_misses_per_core[core.core_id])
            if system.prefetchers:
                prefetcher = system.prefetchers[core.core_id]
                issued = group.counter("prefetches_issued")
                issued.set(prefetcher.issued)
                useful = group.counter("prefetches_useful")
                useful.set(prefetcher.useful)
                group.ratio(
                    "prefetch_accuracy",
                    "useful prefetches over issued prefetches",
                    numerator=useful, denominator=issued,
                )
