"""Versioned, digest-stamped snapshot container format.

A snapshot file is a small self-describing binary container:

.. code-block:: text

    offset  size  field
    0       8     magic  b"CROWSNAP"
    8       4     format version (u32, big-endian)
    12      4     header length H (u32, big-endian)
    16      H     header — UTF-8 JSON, sorted keys
    16+H    8     payload length P (u64, big-endian)
    24+H    P     payload — zlib-compressed pickle
    24+H+P  32    SHA-256 over everything before the trailer

The header carries cheap-to-read metadata (snapshot kind, configuration
digest, cycle, mechanism — everything ``python -m repro snapshot
inspect`` prints) and is readable without touching the payload.  The
payload is the full component state-dict tree; pickling is safe here
because snapshots are local artifacts the same codebase wrote (the
digest trailer rejects torn or tampered files before unpickling).

Writes are atomic: the container is assembled in a process-unique
sibling file and moved into place with :func:`os.replace`, so a killed
writer can never leave a torn snapshot behind — which is exactly the
property resumable campaigns rely on.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import zlib
from pathlib import Path

from repro.errors import SnapshotError

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "write_snapshot",
    "read_header",
    "read_snapshot",
]

MAGIC = b"CROWSNAP"

#: Bump on any incompatible change to the container layout *or* to the
#: component state-dict schema the payload carries. Old snapshots are
#: rejected with a structured :class:`SnapshotError`, never misread.
FORMAT_VERSION = 1

_DIGEST_SIZE = 32


def write_snapshot(path: "str | Path", header: dict, payload: object) -> None:
    """Atomically write one snapshot container.

    ``header`` must be JSON-serializable; the ``format_version`` key is
    stamped in here and must not be supplied by the caller. ``payload``
    is an arbitrary picklable object (in practice the state-dict tree).
    """
    if "format_version" in header:
        raise SnapshotError("header key 'format_version' is reserved")
    path = Path(path)
    stamped = dict(header)
    stamped["format_version"] = FORMAT_VERSION
    header_bytes = json.dumps(stamped, sort_keys=True).encode("utf-8")
    payload_bytes = zlib.compress(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), 6
    )
    buffer = io.BytesIO()
    buffer.write(MAGIC)
    buffer.write(struct.pack(">I", FORMAT_VERSION))
    buffer.write(struct.pack(">I", len(header_bytes)))
    buffer.write(header_bytes)
    buffer.write(struct.pack(">Q", len(payload_bytes)))
    buffer.write(payload_bytes)
    body = buffer.getvalue()
    blob = body + hashlib.sha256(body).digest()
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_bytes(blob)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _read_exact(handle, n: int, what: str) -> bytes:
    data = handle.read(n)
    if len(data) != n:
        raise SnapshotError(f"truncated snapshot: short read in {what}")
    return data


def _parse_preamble(handle, path: Path) -> dict:
    """Validate magic + version and return the parsed header."""
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise SnapshotError(f"{path}: not a snapshot file (bad magic)")
    (version,) = struct.unpack(">I", _read_exact(handle, 4, "version"))
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"{path}: snapshot format v{version} is not supported "
            f"(this build reads v{FORMAT_VERSION})"
        )
    (header_len,) = struct.unpack(
        ">I", _read_exact(handle, 4, "header length")
    )
    header_bytes = _read_exact(handle, header_len, "header")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise SnapshotError(f"{path}: corrupt snapshot header") from exc
    if not isinstance(header, dict):
        raise SnapshotError(f"{path}: snapshot header is not an object")
    return header


def read_header(path: "str | Path") -> dict:
    """Parse only the (cheap) header of a snapshot file."""
    path = Path(path)
    if not path.is_file():
        raise SnapshotError(f"{path}: no such snapshot")
    with path.open("rb") as handle:
        return _parse_preamble(handle, path)


def read_snapshot(path: "str | Path") -> "tuple[dict, object]":
    """Read and verify one container; returns ``(header, payload)``.

    The SHA-256 trailer is checked over the whole body *before* the
    payload is unpickled, so a torn or tampered file fails closed.
    """
    path = Path(path)
    if not path.is_file():
        raise SnapshotError(f"{path}: no such snapshot")
    blob = path.read_bytes()
    if len(blob) < len(MAGIC) + 8 + 8 + _DIGEST_SIZE:
        raise SnapshotError(f"{path}: truncated snapshot")
    body, trailer = blob[:-_DIGEST_SIZE], blob[-_DIGEST_SIZE:]
    if hashlib.sha256(body).digest() != trailer:
        raise SnapshotError(f"{path}: snapshot digest mismatch (corrupt)")
    handle = io.BytesIO(body)
    header = _parse_preamble(handle, path)
    (payload_len,) = struct.unpack(
        ">Q", _read_exact(handle, 8, "payload length")
    )
    payload_bytes = _read_exact(handle, payload_len, "payload")
    if handle.read(1):
        raise SnapshotError(f"{path}: trailing bytes after payload")
    try:
        payload = pickle.loads(zlib.decompress(payload_bytes))
    except Exception as exc:
        raise SnapshotError(f"{path}: corrupt snapshot payload") from exc
    return header, payload
