"""Deterministic checkpoint/restore and warm-state forking.

This package provides the storage substrate for three features:

- **Checkpoint/resume** — :meth:`repro.sim.system.System.save_snapshot`
  serializes the complete simulation state (cores, LLC, controller
  queues, DRAM bank state, CROW tables, the event heap, telemetry, the
  protocol checkers) into one versioned container;
  :meth:`System.restore` rebuilds a byte-equivalent system and
  :meth:`System.resume` continues an interrupted run to completion with
  a telemetry digest identical to the uninterrupted run.
- **Warm-state forking** — :func:`repro.snapshot.warm.build_warm_image`
  captures the mechanism-invariant functional pre-warm state once so a
  configuration sweep can fork N mechanism variants from it instead of
  re-warming N times (:func:`warmup_digest` guards compatibility).
- **Inspection** — ``python -m repro snapshot`` (inspect/verify/diff/
  resume) works off :func:`read_header` / :func:`read_snapshot`.

Design rule: every stateful component exposes ``state_dict()`` /
``load_state_dict()`` returning plain value data — no component
references, no closures. Restoring always goes through ordinary
``System(config, traces)`` construction (fully deterministic) followed
by a wholesale state overwrite, so construction-time wiring (observer
hooks, bound-method callbacks) never needs to be serialized.
"""

from repro.snapshot.container import (
    FORMAT_VERSION,
    MAGIC,
    read_header,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.warm import build_warm_image, warmup_digest

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "read_header",
    "read_snapshot",
    "write_snapshot",
    "build_warm_image",
    "warmup_digest",
]
