"""Warm-state forking support.

A *warm image* is a snapshot of the functional (untimed) pre-warm state
— LLC contents, page table + frame-allocation RNG, and trace positions —
taken right after :meth:`repro.sim.system.System.prewarm` and before any
timed simulation. That state is **mechanism-invariant**: pre-warming
touches only address translation and the LLC, never the DRAM substrate,
so one image built under a shared configuration prefix can seed runs of
*every* mechanism variant. :meth:`repro.exec.parallel.ParallelCampaign.
run_forked` exploits this to pay the pre-warm cost once per sweep
instead of once per configuration.

:func:`warmup_digest` hashes exactly the configuration surface the
pre-warm state depends on. Two configs with equal warm digests produce
byte-identical pre-warm state for the same workloads and seeds (workload
identity is validated separately, by the trace streams themselves, when
an image is loaded).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["warmup_digest", "build_warm_image", "ForkGroup", "fork_groups"]

#: Bump when the pre-warm algorithm or its config surface changes.
_WARM_VERSION = 1


def warmup_digest(config) -> str:
    """Digest of the config surface that shapes functional pre-warm state.

    Covers everything :meth:`System.prewarm` reads: core count, the
    allocation seed, the LLC configuration, and the geometry fields that
    determine addressable capacity (frame allocation). Mechanism choice,
    timing knobs and controller policy are deliberately excluded — they
    cannot influence untimed warm state, and excluding them is what makes
    one image forkable across mechanism variants.
    """
    from repro.sim.campaign import _jsonable

    geometry = config.resolved_geometry()
    payload = {
        "version": _WARM_VERSION,
        "cores": config.cores,
        "seed": config.seed,
        "llc": _jsonable(config.llc_config()),
        "geometry": {
            "channels": geometry.channels,
            "ranks_per_channel": geometry.ranks_per_channel,
            "banks_per_rank": geometry.banks_per_rank,
            "rows_per_bank": geometry.rows_per_bank,
            "row_size_bytes": geometry.row_size_bytes,
            "line_size_bytes": geometry.line_size_bytes,
        },
    }
    encoded = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(encoded.encode()).hexdigest()[:20]


@dataclass(frozen=True)
class ForkGroup:
    """Specs that can fork from one shared warm image.

    ``name`` is the content-derived image file stem (callers append
    ``.warm`` and a directory); local forking and the cluster's remote
    warm-image transfer both address images by it, so an image built
    anywhere in a fleet serves every compatible spec everywhere.
    """

    name: str                  # image file stem (hash of the group key)
    warm_digest: str           # warmup_digest of the member configs
    indices: tuple[int, ...]   # positions of the members in the input
    prewarm_accesses: int

    @property
    def filename(self) -> str:
        return f"{self.name}.warm"


def fork_groups(specs, prewarm_accesses: int = 200_000) -> list[ForkGroup]:
    """Group task specs by warm-compatibility key.

    Two specs land in one group exactly when a single functional
    pre-warm can seed both: equal :func:`warmup_digest` (config surface)
    plus identical trace identity (kind, workload names, seed) and
    pre-warm length. Group naming is content-derived and process-stable,
    so independently computed groups agree on image file names.
    """
    keyed: "dict[str, tuple[str, list[int]]]" = {}
    order: list[str] = []
    for index, spec in enumerate(specs):
        warm_digest = warmup_digest(spec.config)
        key = json.dumps(
            [warm_digest, spec.kind, list(spec.names), spec.seed,
             prewarm_accesses],
            sort_keys=True,
        )
        if key not in keyed:
            keyed[key] = (warm_digest, [])
            order.append(key)
        keyed[key][1].append(index)
    groups = []
    for key in order:
        warm_digest, indices = keyed[key]
        name = hashlib.sha256(key.encode()).hexdigest()[:20]
        groups.append(ForkGroup(
            name, warm_digest, tuple(indices), prewarm_accesses
        ))
    return groups


def build_warm_image(
    path: "str | Path",
    names: "tuple[str, ...] | list[str]",
    config,
    seed: int = 0,
    kind: str = "wl",
    prewarm_accesses: int = 200_000,
) -> Path:
    """Build one warm image: construct, pre-warm, persist.

    ``kind``/``names``/``seed`` follow :class:`repro.exec.task.TaskSpec`
    semantics ('wl' = one single-core workload, 'mix' = one workload per
    core with hash-derived per-core seeds).
    """
    from dataclasses import replace

    from repro.errors import ConfigError
    from repro.sim.sweep import _stream, derive_trace_seed
    from repro.sim.system import System

    path = Path(path)
    if kind == "wl":
        if len(names) != 1:
            raise ConfigError("'wl' warm images take exactly one workload")
        config = replace(config, cores=1)
        streams = [_stream(names[0], seed)]
    elif kind == "mix":
        config = replace(config, cores=len(names))
        streams = [
            _stream(w, derive_trace_seed(seed, i))
            for i, w in enumerate(names)
        ]
    else:
        raise ConfigError(f"unknown warm-image kind {kind!r}")
    system = System(config, streams)
    system.prewarm(prewarm_accesses)
    system.save_warm_image(path, prewarm_accesses=prewarm_accesses)
    return path
