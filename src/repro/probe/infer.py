"""Inferred device profiles and the ground-truth verdict.

:class:`InferredProfile` is what a probing campaign produces: one
:class:`InferredValue` per device parameter, each carrying the inferred
value, a confidence class and a short provenance note, plus the weak-row
map and the CROW duplicate map the routines extracted.
:meth:`InferredProfile.verify_against` is the oracle step — it rebuilds
the ground truth from the generating :class:`~repro.sim.config.
SystemConfig` through the same :mod:`repro.sim.factory` path the device
was built with and diffs every probed parameter into a structured
:class:`VerifyReport`.

Confidence classes:

``exact``
    The observed behaviour pins the parameter to one value.
``derived``
    Computed from other measurements (e.g. tRC = tRAS + tRP, or the
    tCL/tCWL/tBL decomposition from latency observables).
``bound``
    The behaviour only bounds the parameter (e.g. tFAW is unobservable
    below ``4*tRRD`` — the probe reports the *effective* window).
``protocol``
    Follows observations through a documented protocol convention (the
    CROW-ref boot allocation order for the duplicate map).
``unobservable``
    No behaviour distinguishes the parameter on this device; the value
    is ``None`` and verification skips it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim import factory
from repro.sim.config import SystemConfig

__all__ = [
    "InferredValue",
    "InferredProfile",
    "ParameterDiff",
    "VerifyReport",
    "ground_truth",
]

CONFIDENCES = ("exact", "derived", "bound", "protocol", "unobservable")


@dataclass(frozen=True)
class InferredValue:
    """One inferred device parameter."""

    name: str
    value: "int | bool | None"
    confidence: str
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "value": self.value,
            "confidence": self.confidence,
            "note": self.note,
        }


@dataclass
class InferredProfile:
    """Everything a probe campaign inferred about one channel."""

    channel: int = 0
    parameters: "dict[str, InferredValue]" = field(default_factory=dict)
    #: Probed bank -> sorted bank-level weak regular row numbers.
    weak_rows: "dict[int, list[int]]" = field(default_factory=dict)
    #: Boot-time duplicate map entries: (bank, subarray, slot, bank_row).
    #: ``bank_row`` is ``None`` for a slot observed in service whose
    #: source could not be attributed.
    duplicate_map: "list[tuple[int, int, int, int | None]]" = field(
        default_factory=list
    )
    #: False when the scan could not run (e.g. no conformance
    #: observable on a CROW device); verification then skips the map.
    duplicate_map_observed: bool = True
    #: Banks the weak-row / duplicate-map scans covered.
    probed_banks: "list[int]" = field(default_factory=list)
    #: Refresh interval (ms) the weak-row experiments asked about.
    retention_interval_ms: "float | None" = None
    #: Probe command-budget counters (session telemetry projection).
    budget: "dict[str, int]" = field(default_factory=dict)

    def add(
        self,
        name: str,
        value: "int | bool | None",
        confidence: str,
        note: str = "",
    ) -> None:
        assert confidence in CONFIDENCES, confidence
        self.parameters[name] = InferredValue(name, value, confidence, note)

    def value(self, name: str) -> "int | bool | None":
        entry = self.parameters.get(name)
        return entry.value if entry is not None else None

    def to_dict(self) -> dict:
        return {
            "channel": self.channel,
            "parameters": {
                name: entry.to_dict()
                for name, entry in sorted(self.parameters.items())
            },
            "weak_rows": {
                str(bank): rows
                for bank, rows in sorted(self.weak_rows.items())
            },
            "duplicate_map": [list(entry) for entry in self.duplicate_map],
            "duplicate_map_observed": self.duplicate_map_observed,
            "probed_banks": list(self.probed_banks),
            "retention_interval_ms": self.retention_interval_ms,
            "budget": dict(sorted(self.budget.items())),
        }

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    def verify_against(
        self, config: SystemConfig, channel: "int | None" = None
    ) -> "VerifyReport":
        """Diff this profile against the config that built the device."""
        channel = self.channel if channel is None else channel
        truth = ground_truth(config, channel)
        report = VerifyReport()
        for name, entry in self.parameters.items():
            if entry.confidence == "unobservable" or entry.value is None:
                report.diffs.append(ParameterDiff(
                    name, None, truth["parameters"].get(name),
                    "skipped", entry.confidence, entry.note,
                ))
                continue
            if name not in truth["parameters"]:
                report.diffs.append(ParameterDiff(
                    name, entry.value, None, "skipped", entry.confidence,
                    "no ground-truth counterpart",
                ))
                continue
            actual = truth["parameters"][name]
            status = "match" if entry.value == actual else "mismatch"
            report.diffs.append(ParameterDiff(
                name, entry.value, actual, status, entry.confidence,
                entry.note,
            ))
        self._verify_weak_rows(truth, report)
        self._verify_duplicate_map(truth, report)
        return report

    def _verify_weak_rows(self, truth: dict, report: "VerifyReport") -> None:
        for bank in self.probed_banks:
            inferred = self.weak_rows.get(bank, [])
            actual = truth["weak_rows"].get(bank, [])
            status = "match" if inferred == actual else "mismatch"
            report.diffs.append(ParameterDiff(
                f"weak_rows[bank {bank}]", inferred, actual, status,
                "exact", "retention write/wait/read scan",
            ))

    def _verify_duplicate_map(
        self, truth: dict, report: "VerifyReport"
    ) -> None:
        if not self.duplicate_map_observed:
            report.diffs.append(ParameterDiff(
                "duplicate_map", None, None, "skipped", "unobservable",
                "duplicate-map scan did not run",
            ))
            return
        probed = set(self.probed_banks)
        inferred = sorted(
            entry for entry in self.duplicate_map if entry[0] in probed
        )
        actual = sorted(
            entry for entry in truth["duplicate_map"] if entry[0] in probed
        )
        status = "match" if inferred == actual else "mismatch"
        report.diffs.append(ParameterDiff(
            "duplicate_map", [list(e) for e in inferred],
            [list(e) for e in actual], status, "protocol",
            "in-service copy slots zipped with sorted weak rows",
        ))


@dataclass(frozen=True)
class ParameterDiff:
    """One inferred-vs-actual comparison."""

    name: str
    inferred: object
    actual: object
    status: str  # "match" | "mismatch" | "skipped"
    confidence: str = ""
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "inferred": self.inferred,
            "actual": self.actual,
            "status": self.status,
            "confidence": self.confidence,
            "note": self.note,
        }


@dataclass
class VerifyReport:
    """Structured verdict of one profile against its generating config."""

    diffs: "list[ParameterDiff]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(diff.status == "mismatch" for diff in self.diffs)

    @property
    def matched(self) -> int:
        return sum(1 for diff in self.diffs if diff.status == "match")

    @property
    def mismatched(self) -> "list[ParameterDiff]":
        return [diff for diff in self.diffs if diff.status == "mismatch"]

    @property
    def skipped(self) -> int:
        return sum(1 for diff in self.diffs if diff.status == "skipped")

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.matched} parameter(s) verified, "
                f"{self.skipped} unobservable/skipped — profile matches"
            )
        head = self.mismatched[0]
        return (
            f"{len(self.mismatched)} mismatch(es) out of "
            f"{len(self.diffs)} comparisons; first: {head.name} "
            f"inferred {head.inferred!r} != actual {head.actual!r}"
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "matched": self.matched,
            "mismatched": len(self.mismatched),
            "skipped": self.skipped,
            "diffs": [diff.to_dict() for diff in self.diffs],
        }

    def write_json(self, path: "str | Path") -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def ground_truth(config: SystemConfig, channel: int = 0) -> dict:
    """The oracle: parameters the generating config actually implies.

    Built through the same :mod:`repro.sim.factory` calls as both
    :class:`~repro.sim.system.System` and the probe session's device, so
    a ``match`` verdict means the probe recovered the real construction,
    not a parallel reimplementation of it.
    """
    geometry = config.resolved_geometry()
    base = factory.base_timing(config)
    crow = factory.build_crow_timings(config, geometry, base)
    retention = factory.build_retention(config, geometry)
    mechanism = factory.build_mechanism(
        config, geometry, base, crow, retention, channel
    )
    timing = factory.final_timing(base, [mechanism])
    if retention is None:
        retention = factory.retention_model(config, geometry)
    parameters: dict = {
        "banks": geometry.banks_per_channel,
        "rows_per_bank": geometry.rows_per_bank,
        "rows_per_subarray": geometry.rows_per_subarray,
        "subarrays_per_bank": geometry.subarrays_per_bank,
        "copy_rows_per_subarray": geometry.copy_rows_per_subarray,
        "trcd": timing.trcd,
        "tras": timing.tras,
        "trp": timing.trp,
        "trc": timing.trc,
        "trrd": timing.trrd,
        # tFAW is behaviourally masked by 4*tRRD when smaller; the probe
        # reports the effective four-activate window.
        "tfaw_effective": max(timing.tfaw, 4 * timing.trrd),
        "tccd": timing.tccd,
        "trtp": timing.trtp,
        "twr": timing.twr,
        "twtr": timing.twtr,
        "trfc": timing.trfc,
        "tcl": timing.tcl,
        "tcwl": timing.tcwl,
        "tbl": timing.tbl,
        "read_latency": timing.tcl + timing.tbl,
        "write_latency": timing.tcwl + timing.tbl,
    }
    if crow is not None:
        parameters.update({
            "trcd_act_c": crow.trcd_act_c,
            "tras_act_c_full": crow.tras_act_c_full,
            "tras_act_c_early": crow.tras_act_c_early,
            "trcd_act_t_full": crow.trcd_act_t_full,
            "trcd_act_t_partial": crow.trcd_act_t_partial,
            "tras_act_t_full": crow.tras_act_t_full,
            "tras_act_t_early": crow.tras_act_t_early,
            "tras_act_t_partial_early": crow.tras_act_t_partial_early,
            "partial_restore_signature": True,
        })
    weak_rows: dict[int, list[int]] = {}
    extended = timing.refresh_window_ms > config.refresh_window_ms
    for bank, row in factory.weak_row_set(
        # The *observable* weak set is physics, not mechanism: always
        # derived from the unconditional retention model.
        retention, geometry, channel
    ):
        weak_rows.setdefault(bank, []).append(row)
    for rows in weak_rows.values():
        rows.sort()
    duplicate_map: list[tuple[int, int, int, "int | None"]] = []
    for component in (
        mechanism,
        getattr(mechanism, "ref", None),
        getattr(mechanism, "hammer", None),
    ):
        remap = getattr(component, "remap", None)
        if isinstance(remap, dict):
            for (bank, bank_row), copy in remap.items():
                duplicate_map.append(
                    (bank, copy.subarray, copy.index, bank_row)
                )
    duplicate_map.sort()
    return {
        "parameters": parameters,
        "weak_rows": weak_rows,
        "duplicate_map": duplicate_map,
        "extended_refresh": extended,
    }
