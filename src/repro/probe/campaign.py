"""Probe campaigns: content-digested tasks over the exec engine.

A :class:`ProbeSpec` is a :class:`~repro.exec.task.TaskSpec` whose
``run()`` performs structure inference instead of a simulation, so probe
campaigns ride the whole execution stack unchanged: the
:class:`~repro.exec.parallel.ParallelCampaign` disk cache, the run
journal, and :mod:`repro.cluster` distribution (specs pickle through the
wire frames; the content digest folds in the probe-only fields, so a
probe of channel 1 or a shadow-less probe can never alias a different
campaign's cache entry).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import ConfigError
from repro.exec.task import TaskSpec
from repro.probe.infer import InferredProfile, VerifyReport
from repro.sim.campaign import task_digest
from repro.sim.config import SystemConfig

__all__ = ["ProbeSpec", "ProbeResult", "execute_probe"]


@dataclass(frozen=True)
class ProbeResult:
    """What one probe task produced.

    Carries the inferred profile, the optional verification report, and
    the session's command-budget telemetry export — the same
    ``telemetry``/``telemetry_digest()`` surface as
    :class:`~repro.sim.metrics.SimResult`, which is what the journal's
    ``task_telemetry`` events and the cluster store's conflict checks
    key on.
    """

    profile: InferredProfile
    report: "VerifyReport | None" = None
    telemetry: "dict | None" = None

    def telemetry_digest(self) -> "str | None":
        if self.telemetry is None:
            return None
        from repro.telemetry import export_digest

        return export_digest(self.telemetry)

    @property
    def ok(self) -> bool:
        """Whether verification passed (vacuously true when skipped)."""
        return self.report is None or self.report.ok

    def to_dict(self) -> dict:
        return {
            "profile": self.profile.to_dict(),
            "report": self.report.to_dict() if self.report else None,
            "telemetry_digest": self.telemetry_digest(),
        }


@dataclass(frozen=True)
class ProbeSpec(TaskSpec):
    """One deterministic structure-inference run, described by value."""

    VALID_KINDS: ClassVar[tuple[str, ...]] = ("probe",)
    result_type: ClassVar[type] = ProbeResult

    channel: int = 0
    shadow: bool = True
    probe_banks: "tuple[int, ...] | None" = None
    retention_interval_ms: "float | None" = None
    verify: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.probe_banks is not None:
            object.__setattr__(
                self, "probe_banks", tuple(self.probe_banks)
            )
        if self.channel < 0:
            raise ConfigError("channel must be non-negative")

    @classmethod
    def device(
        cls,
        config: "SystemConfig | None" = None,
        channel: int = 0,
        shadow: bool = True,
        probe_banks: "tuple[int, ...] | None" = None,
        retention_interval_ms: "float | None" = None,
        verify: bool = True,
    ) -> "ProbeSpec":
        """A probe of one channel of the device ``config`` describes."""
        return cls(
            kind="probe",
            names=("device",),
            config=config if config is not None else SystemConfig(),
            instructions=0,
            warmup_instructions=0,
            seed=config.seed if config is not None else 0,
            channel=channel,
            shadow=shadow,
            probe_banks=probe_banks,
            retention_interval_ms=retention_interval_ms,
            verify=verify,
        )

    # -- identity -------------------------------------------------------

    def digest(self) -> str:
        """Content digest folding in the probe-only identity fields."""
        base = task_digest(
            self.kind, self.names, self.config, self.instructions,
            self.warmup_instructions, self.seed,
        )
        extras = json.dumps(
            {
                "channel": self.channel,
                "shadow": self.shadow,
                "probe_banks": (
                    list(self.probe_banks)
                    if self.probe_banks is not None
                    else None
                ),
                "retention_interval_ms": self.retention_interval_ms,
                "verify": self.verify,
            },
            sort_keys=True,
        )
        return hashlib.sha256(
            f"{base}|{extras}".encode()
        ).hexdigest()[:24]

    def cache_filename(self) -> str:
        return (
            f"{self.kind}-{self.config.mechanism}-ch{self.channel}"
            f"-{self.digest()}.pkl"
        )

    # -- execution ------------------------------------------------------

    def run(self) -> ProbeResult:
        """Probe the device and (optionally) verify the inference."""
        from repro.probe.routines import discover
        from repro.probe.session import ProbeSession

        session = ProbeSession(
            self.config, channel=self.channel, shadow=self.shadow
        )
        profile = discover(
            session,
            probe_banks=(
                list(self.probe_banks)
                if self.probe_banks is not None
                else None
            ),
            retention_interval_ms=self.retention_interval_ms,
        )
        report = (
            profile.verify_against(self.config) if self.verify else None
        )
        return ProbeResult(
            profile=profile,
            report=report,
            telemetry=session.stats.export(),
        )


def execute_probe(spec: ProbeSpec) -> ProbeResult:
    """Module-level probe entry point (picklable for worker processes)."""
    return spec.run()
