"""Host-side probe routines: structure and timing inference.

Every routine here sees the device only through the
:class:`~repro.probe.session.ProbeSession` observables — command
accept/reject classes, result latencies, restoration outcomes and
retention-error experiments. None reads the generating config; the
shapes they exploit are *documented interface* knowledge a probing host
legitimately has (power-of-two address decoders, the LPDDR4 command set,
the CROW-ref boot allocation convention), in the spirit of X-ray-style
DRAM reverse engineering on a SoftMC host.

The inference techniques:

* **Address-decode boundaries** — banks, rows per bank and copy rows per
  subarray are the smallest indices whose plain activation is rejected
  in the ``address`` class (decode failure is distinguishable from
  timing/state/conformance rejection on a real bus too: the device
  aliases or NACKs rather than stalls).
* **Minimum-gap searches** — every core timing parameter is the smallest
  command spacing the device accepts, found by exponential bracketing
  plus binary search over sandboxed attempts at a fixed anchor cycle.
* **Copy-decoder echo** — rows-per-subarray on a CROW device: ``ACT-c``
  a candidate row into a fixed copy slot, precharge, and test whether a
  plain activation of *subarray 0's* slot is now accepted. The echo
  lands in subarray 0 exactly when the source row decodes there.
  Candidates are probed at power-of-two rows only (decoders are
  power-of-two), which keeps the search immune to retention-weak rows.
* **SALP interference** — on a subarray-level-parallelism device, a
  second activation in the *same* bank is accepted iff it targets a
  different subarray; the same power-of-two scan finds the boundary.
* **Retention scans** — weak rows are the rows that fail a
  write/wait/read experiment at the campaign's refresh interval.
* **In-service slots + boot convention** — the CROW-ref duplicate map:
  copy slots already activatable at power-on are in service; the
  documented boot allocation (sorted weak rows assigned to usable slots
  in ascending order) attributes each slot to its source row.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ProbeError
from repro.probe.infer import InferredProfile
from repro.probe.session import ProbeSession

__all__ = [
    "count_banks",
    "count_rows_per_bank",
    "count_copy_rows",
    "detect_salp",
    "find_rows_per_subarray",
    "measure_core_timings",
    "measure_crow_timings",
    "scan_weak_rows",
    "map_duplicates",
    "discover",
]

#: Quiet cycle offset for boot-state attempts (past the command bus).
_BOOT_AT = 64
#: Gap larger than any single inter-command constraint, small enough to
#: stay far inside the refresh cadence the shadow checker enforces.
_SETTLE = 4096
_GAP_CAP = 1 << 16
_BANK_CAP = 1 << 12
_ROW_CAP = 1 << 26


# ----------------------------------------------------------------------
# Search primitives
# ----------------------------------------------------------------------
def _min_gap(
    accept: Callable[[int], bool],
    lo: int = 1,
    cap: int = _GAP_CAP,
    what: str = "gap",
) -> int:
    """Smallest ``g >= lo`` with ``accept(g)`` true (monotone predicate).

    Exponential doubling to bracket, then binary search; every probe is
    a sandboxed attempt, so the device timeline never advances.
    """
    gap = lo
    while not accept(gap):
        gap *= 2
        if gap > cap:
            raise ProbeError(
                f"cannot bracket minimum {what}: nothing accepted "
                f"below {cap} cycles"
            )
    if gap == lo:
        return gap
    rejected, accepted = gap // 2, gap
    while accepted - rejected > 1:
        mid = (rejected + accepted) // 2
        if accept(mid):
            accepted = mid
        else:
            rejected = mid
    return accepted


def _first_rejected_index(
    rejected: Callable[[int], bool], cap: int, what: str
) -> int:
    """Smallest ``i >= 0`` with ``rejected(i)`` true (monotone boundary)."""
    if rejected(0):
        return 0
    hi = 1
    while not rejected(hi):
        hi *= 2
        if hi > cap:
            raise ProbeError(
                f"no {what} decode boundary found below {cap}"
            )
    lo = hi // 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if rejected(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _power_of_two_candidates(limit: int):
    candidate = 1
    while candidate < limit:
        yield candidate
        candidate *= 2


def _probe_row(s: ProbeSession, bank: int, rows_per_bank: int) -> int:
    """A row whose plain activation the device accepts at boot.

    Skips rows rejected for any reason (e.g. retention-weak rows under
    an extended refresh window, which the conformance observable vetoes).
    """
    for row in range(rows_per_bank):
        if s.attempt(s.cmd_act(bank, row), s.now + _BOOT_AT).accepted:
            return row
    raise ProbeError(f"no activatable row found in bank {bank}")


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------
def count_banks(s: ProbeSession) -> int:
    """Banks per channel: the ACT bank-address decode boundary."""
    def rejected(bank: int) -> bool:
        return s.attempt(
            s.cmd_act(bank, 0), s.now + _BOOT_AT
        ).reason == "address"

    return _first_rejected_index(rejected, _BANK_CAP, "bank")


def count_rows_per_bank(s: ProbeSession) -> int:
    """Rows per bank: the ACT row-address decode boundary."""
    def rejected(row: int) -> bool:
        return s.attempt(
            s.cmd_act(0, row), s.now + _BOOT_AT
        ).reason == "address"

    return _first_rejected_index(rejected, _ROW_CAP, "row")


def count_copy_rows(s: ProbeSession) -> int:
    """Copy rows per subarray: the copy-decoder boundary (0 = no CROW)."""
    def rejected(slot: int) -> bool:
        return s.attempt(
            s.cmd_act_copy(0, 0, slot), s.now + _BOOT_AT
        ).reason == "address"

    return _first_rejected_index(rejected, _BANK_CAP, "copy row")


def detect_salp(s: ProbeSession, probe_row: int) -> bool:
    """Whether column commands demand a subarray operand (SALP decode)."""
    with s.sandbox():
        t0 = s.now + _BOOT_AT
        s.step(s.cmd_act(0, probe_row), t0)
        outcome = s.attempt(s.cmd_rd(0), t0 + _SETTLE)
        return (not outcome.accepted) and outcome.reason == "state"


def _rps_salp(s: ProbeSession, rows_per_bank: int) -> int:
    """Rows per subarray via same-bank activation interference."""
    def same_subarray_as_row0(row: int) -> bool:
        with s.sandbox():
            t0 = s.now + _BOOT_AT
            s.step(s.cmd_act(0, 0), t0)
            return not s.attempt(s.cmd_act(0, row), t0 + _SETTLE).accepted

    for candidate in _power_of_two_candidates(rows_per_bank):
        if not same_subarray_as_row0(candidate):
            return candidate
    return rows_per_bank


def _rps_crow(
    s: ProbeSession, rows_per_bank: int, copy_rows: int
) -> "int | None":
    """Rows per subarray via the copy-decoder echo (module docstring)."""
    anchor = next(
        (
            slot
            for slot in range(copy_rows)
            if not s.attempt(
                s.cmd_act_copy(0, 0, slot), s.now + _BOOT_AT
            ).accepted
        ),
        None,
    )
    if anchor is None:
        # Every slot already serves a row; no free echo target.
        return None

    def in_subarray_zero(candidate: int) -> bool:
        # All rows in [candidate, 2*candidate) share the candidate's
        # subarray-0 membership (power-of-two decode), so a weak row can
        # always be sidestepped by its neighbour.
        for row in range(candidate, min(2 * candidate, rows_per_bank)):
            try:
                with s.sandbox():
                    s.step_earliest(s.cmd_act_c(0, row, anchor))
                    s.step_earliest(s.cmd_pre(0))
                    return s.attempt(
                        s.cmd_act_copy(0, 0, anchor), s.now + _SETTLE
                    ).accepted
            except ProbeError:
                continue
        raise ProbeError(
            f"no probe-able source row in [{candidate}, {2 * candidate})"
        )

    for candidate in _power_of_two_candidates(rows_per_bank):
        if not in_subarray_zero(candidate):
            return candidate
    return rows_per_bank


def find_rows_per_subarray(
    s: ProbeSession, rows_per_bank: int, copy_rows: int, salp: bool
) -> "int | None":
    """Rows per subarray, or ``None`` when no behaviour exposes it."""
    if salp:
        return _rps_salp(s, rows_per_bank)
    if copy_rows and s.checker is not None:
        return _rps_crow(s, rows_per_bank, copy_rows)
    return None


# ----------------------------------------------------------------------
# Core timings
# ----------------------------------------------------------------------
def measure_core_timings(
    s: ProbeSession,
    profile: InferredProfile,
    banks: int,
    rows_per_bank: int,
    salp: bool,
    rows_per_subarray: "int | None",
) -> None:
    """Recover the core timing set by minimum-gap searches."""
    row0 = _probe_row(s, 0, rows_per_bank)

    def sub(row: int) -> "int | None":
        if not salp:
            return None
        assert rows_per_subarray is not None
        return row // rows_per_subarray

    def gap_after_act(command, what: str) -> int:
        with s.sandbox():
            t0 = s.now + _BOOT_AT
            s.step(s.cmd_act(0, row0), t0)
            return _min_gap(
                lambda g: s.attempt(command, t0 + g).accepted, what=what
            )

    trcd = gap_after_act(s.cmd_rd(0, subarray=sub(row0)), "tRCD")
    profile.add("trcd", trcd, "exact", "min ACT->RD gap")
    tras = gap_after_act(s.cmd_pre(0, subarray=sub(row0)), "tRAS")
    profile.add("tras", tras, "exact", "min ACT->PRE gap")

    with s.sandbox():
        t0 = s.now + _BOOT_AT
        s.step(s.cmd_act(0, row0), t0)
        pre_at = t0 + tras
        s.step(s.cmd_pre(0, subarray=sub(row0)), pre_at)
        trp = _min_gap(
            lambda g: s.attempt(s.cmd_act(0, row0), pre_at + g).accepted,
            what="tRP",
        )
    profile.add("trp", trp, "exact", "min PRE->ACT gap")
    profile.add("trc", tras + trp, "derived", "tRAS + tRP")

    trrd = None
    if banks >= 2:
        row1 = _probe_row(s, 1, rows_per_bank)
        trrd = gap_after_act(s.cmd_act(1, row1), "tRRD")
        profile.add("trrd", trrd, "exact", "min cross-bank ACT->ACT gap")
    else:
        profile.add("trrd", None, "unobservable", "single-bank channel")

    if banks >= 5 and trrd is not None:
        rows = [row0, _probe_row(s, 1, rows_per_bank)] + [
            _probe_row(s, bank, rows_per_bank) for bank in range(2, 5)
        ]
        with s.sandbox():
            t0 = s.now + _BOOT_AT
            for i in range(4):
                s.step(s.cmd_act(i, rows[i]), t0 + i * trrd)
            tfaw_effective = _min_gap(
                lambda g: s.attempt(s.cmd_act(4, rows[4]), t0 + g).accepted,
                what="tFAW",
            )
        confidence = "bound" if tfaw_effective == 4 * trrd else "exact"
        profile.add(
            "tfaw_effective", tfaw_effective, confidence,
            "min first->fifth ACT gap (tFAW is masked below 4*tRRD)",
        )
    else:
        profile.add(
            "tfaw_effective", None, "unobservable",
            "needs five banks and a tRRD measurement",
        )

    with s.sandbox():
        t0 = s.now + _BOOT_AT
        s.step(s.cmd_act(0, row0), t0)
        rd_at = t0 + trcd + 8
        outcome = s.step(s.cmd_rd(0, subarray=sub(row0)), rd_at)
        assert outcome.data_at is not None
        read_latency = outcome.data_at - rd_at
        tccd = _min_gap(
            lambda g: s.attempt(
                s.cmd_rd(0, subarray=sub(row0)), rd_at + g
            ).accepted,
            what="tCCD",
        )
    profile.add("read_latency", read_latency, "exact", "RD data beat delay")
    profile.add("tccd", tccd, "exact", "min RD->RD gap")

    settled = max(trcd, tras) + 8

    with s.sandbox():
        t0 = s.now + _BOOT_AT
        s.step(s.cmd_act(0, row0), t0)
        rd_at = t0 + settled
        s.step(s.cmd_rd(0, subarray=sub(row0)), rd_at)
        trtp = _min_gap(
            lambda g: s.attempt(
                s.cmd_pre(0, subarray=sub(row0)), rd_at + g
            ).accepted,
            what="tRTP",
        )
    profile.add("trtp", trtp, "exact", "min RD->PRE gap (past tRAS)")

    with s.sandbox():
        t0 = s.now + _BOOT_AT
        s.step(s.cmd_act(0, row0), t0)
        wr_at = t0 + settled
        outcome = s.step(s.cmd_wr(0, subarray=sub(row0)), wr_at)
        assert outcome.done_at is not None
        write_latency = outcome.done_at - wr_at
        pre_gap = _min_gap(
            lambda g: s.attempt(
                s.cmd_pre(0, subarray=sub(row0)), wr_at + g
            ).accepted,
            what="tWR",
        )
        rd_gap = _min_gap(
            lambda g: s.attempt(
                s.cmd_rd(0, subarray=sub(row0)), wr_at + g
            ).accepted,
            what="tWTR",
        )
    profile.add(
        "write_latency", write_latency, "exact", "WR completion delay"
    )
    profile.add(
        "twr", pre_gap - write_latency, "derived",
        "min WR->PRE gap minus write latency",
    )
    profile.add(
        "twtr", rd_gap - write_latency, "derived",
        "min WR->RD gap minus write latency",
    )

    with s.sandbox():
        t0 = s.now + _BOOT_AT
        s.step(s.cmd_act(0, row0), t0)
        rd_at = t0 + settled
        s.step(s.cmd_rd(0, subarray=sub(row0)), rd_at)
        wr_gap = _min_gap(
            lambda g: s.attempt(
                s.cmd_wr(0, subarray=sub(row0)), rd_at + g
            ).accepted,
            what="read-write turnaround",
        )
    # Bus algebra: the RD->WR turnaround is tCL + tBL + 2 - tCWL, so the
    # three burst parameters fall out of the two latencies and the gap.
    tcwl = read_latency + 2 - wr_gap
    tbl = write_latency - tcwl
    profile.add("tcwl", tcwl, "derived", "read_latency + 2 - RD->WR gap")
    profile.add("tbl", tbl, "derived", "write_latency - tCWL")
    profile.add("tcl", read_latency - tbl, "derived", "read_latency - tBL")

    with s.sandbox():
        t0 = s.now + _BOOT_AT
        s.step(s.cmd_ref(), t0)
        trfc = _min_gap(
            lambda g: s.attempt(s.cmd_act(0, row0), t0 + g).accepted,
            what="tRFC",
        )
    profile.add("trfc", trfc, "exact", "min REF->ACT gap")


# ----------------------------------------------------------------------
# CROW timings
# ----------------------------------------------------------------------
def measure_crow_timings(
    s: ProbeSession,
    profile: InferredProfile,
    rows_per_bank: int,
) -> None:
    """Recover the ACT-c/ACT-t timing modes and the partial-restore
    signature from one duplicated probe row."""
    row0 = _probe_row(s, 0, rows_per_bank)
    slot = 0

    def act_c_gap(command_factory, early: bool, what: str) -> int:
        with s.sandbox():
            t0 = s.now + _BOOT_AT
            s.step(s.cmd_act_c(0, row0, slot, early=early), t0)
            return _min_gap(
                lambda g: s.attempt(command_factory(), t0 + g).accepted,
                what=what,
            )

    trcd_act_c = act_c_gap(lambda: s.cmd_rd(0), False, "tRCD-act-c")
    profile.add("trcd_act_c", trcd_act_c, "exact", "min ACT-c->RD gap")
    tras_act_c_full = act_c_gap(lambda: s.cmd_pre(0), False, "tRAS-act-c")
    profile.add(
        "tras_act_c_full", tras_act_c_full, "exact", "min ACT-c->PRE gap"
    )
    tras_act_c_early = act_c_gap(
        lambda: s.cmd_pre(0), True, "tRAS-act-c-early"
    )
    profile.add(
        "tras_act_c_early", tras_act_c_early, "exact",
        "min early-termination ACT-c->PRE gap",
    )

    def build_pair() -> None:
        """Commit a fully-restored duplicate of row0 into ``slot``."""
        t0 = s.now + _BOOT_AT
        s.step(s.cmd_act_c(0, row0, slot), t0)
        s.step(s.cmd_pre(0), t0 + tras_act_c_full)

    def act_t_gap(command_factory, partial, early, what) -> int:
        with s.sandbox():
            if partial:
                _leave_partial(s, row0, slot, tras_act_c_early)
            else:
                build_pair()
            at, _ = s.step_earliest(
                s.cmd_act_t(0, row0, slot, partial=partial, early=early)
            )
            return _min_gap(
                lambda g: s.attempt(command_factory(), at + g).accepted,
                what=what,
            )

    profile.add(
        "trcd_act_t_full",
        act_t_gap(lambda: s.cmd_rd(0), False, False, "tRCD-act-t"),
        "exact", "min ACT-t->RD gap",
    )
    profile.add(
        "tras_act_t_full",
        act_t_gap(lambda: s.cmd_pre(0), False, False, "tRAS-act-t"),
        "exact", "min ACT-t->PRE gap",
    )
    profile.add(
        "tras_act_t_early",
        act_t_gap(lambda: s.cmd_pre(0), False, True, "tRAS-act-t-early"),
        "exact", "min early-termination ACT-t->PRE gap",
    )
    profile.add(
        "trcd_act_t_partial",
        act_t_gap(lambda: s.cmd_rd(0), True, False, "tRCD-act-t-partial"),
        "exact", "min partial-pair ACT-t->RD gap",
    )
    profile.add(
        "tras_act_t_partial_early",
        act_t_gap(
            lambda: s.cmd_pre(0), True, True, "tRAS-act-t-partial-early"
        ),
        "exact", "min partial-pair early ACT-t->PRE gap",
    )

    if s.checker is None:
        profile.add(
            "partial_restore_signature", None, "unobservable",
            "needs the conformance observable",
        )
        return
    with s.sandbox():
        _leave_partial(s, row0, slot, tras_act_c_early)
        alone = s.attempt(s.cmd_act(0, row0), s.now + _SETTLE)
        paired = s.attempt(
            s.cmd_act_t(0, row0, slot, partial=True), s.now + _SETTLE
        )
        signature = (
            not alone.accepted
            and alone.reason == "conformance"
            and alone.category == "crow"
            and paired.accepted
        )
    profile.add(
        "partial_restore_signature", signature, "exact",
        "early-terminated pair rejects lone ACT but accepts paired ACT-t",
    )


def _leave_partial(
    s: ProbeSession, row: int, slot: int, tras_act_c_early: int
) -> None:
    """Commit an early-terminated ACT-c so the pair is partial."""
    t0 = s.now + _BOOT_AT
    s.step(s.cmd_act_c(0, row, slot, early=True), t0)
    s.step(s.cmd_pre(0), t0 + tras_act_c_early)


# ----------------------------------------------------------------------
# Retention and the duplicate map
# ----------------------------------------------------------------------
def scan_weak_rows(
    s: ProbeSession,
    banks: "list[int]",
    rows_per_bank: int,
    interval_ms: float,
) -> "dict[int, list[int]]":
    """Rows failing the write/wait/read experiment at ``interval_ms``."""
    return {
        bank: [
            row
            for row in range(rows_per_bank)
            if s.retention_errors(bank, row, interval_ms)
        ]
        for bank in banks
    }


def map_duplicates(
    s: ProbeSession,
    banks: "list[int]",
    rows_per_subarray: int,
    copy_rows: int,
    subarrays: int,
    weak_rows: "dict[int, list[int]]",
) -> "list[tuple[int, int, int, int | None]]":
    """Boot-time duplicate map from in-service copy slots.

    A copy slot whose plain activation the device accepts at power-on is
    in service. Slots cannot be interrogated for their source directly
    (activating a weak source row is itself vetoed under an extended
    refresh window), but the CROW-ref boot convention — sorted weak rows
    assigned to usable slots in ascending order — attributes them; a
    subarray where the counts disagree yields ``None`` sources.
    """
    entries: list[tuple[int, int, int, "int | None"]] = []
    at = s.now + _BOOT_AT
    for bank in banks:
        for subarray in range(subarrays):
            in_service = [
                slot
                for slot in range(copy_rows)
                if s.attempt(
                    s.cmd_act_copy(bank, subarray, slot), at
                ).accepted
            ]
            if not in_service:
                continue
            local_weak = sorted(
                row
                for row in weak_rows.get(bank, ())
                if row // rows_per_subarray == subarray
            )
            if len(local_weak) == len(in_service):
                entries.extend(
                    (bank, subarray, slot, row)
                    for slot, row in zip(in_service, local_weak)
                )
            else:
                entries.extend(
                    (bank, subarray, slot, None) for slot in in_service
                )
    return sorted(entries)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def discover(
    session: ProbeSession,
    probe_banks: "list[int] | None" = None,
    retention_interval_ms: "float | None" = None,
    max_scan_rows: int = 1 << 16,
) -> InferredProfile:
    """Run the full routine library and return the inferred profile.

    ``probe_banks`` scopes the weak-row and duplicate-map scans (default:
    every bank, unless the channel holds more than ``max_scan_rows``
    rows, in which case only bank 0 is scanned — the profile records the
    scope either way). ``retention_interval_ms`` is the refresh interval
    the retention experiments target; it defaults to the campaign's
    declared interval regime on the session.
    """
    s = session
    profile = InferredProfile(channel=s.channel_index)

    banks = count_banks(s)
    profile.add("banks", banks, "exact", "ACT bank-address decode boundary")
    rows_per_bank = count_rows_per_bank(s)
    profile.add(
        "rows_per_bank", rows_per_bank, "exact",
        "ACT row-address decode boundary",
    )
    copy_rows = count_copy_rows(s)
    profile.add(
        "copy_rows_per_subarray", copy_rows, "exact",
        "copy-decoder boundary",
    )

    salp = detect_salp(s, _probe_row(s, 0, rows_per_bank))
    rows_per_subarray = find_rows_per_subarray(
        s, rows_per_bank, copy_rows, salp
    )
    if rows_per_subarray is None:
        note = (
            "no subarray-visible behaviour (no copy decoder, no SALP"
            + (", or no conformance observable" if s.checker is None else "")
            + ")"
        )
        profile.add("rows_per_subarray", None, "unobservable", note)
        profile.add("subarrays_per_bank", None, "unobservable", note)
    else:
        technique = (
            "same-bank activation interference" if salp
            else "copy-decoder echo"
        )
        profile.add(
            "rows_per_subarray", rows_per_subarray, "exact", technique
        )
        profile.add(
            "subarrays_per_bank", rows_per_bank // rows_per_subarray,
            "derived", "rows_per_bank / rows_per_subarray",
        )

    measure_core_timings(
        s, profile, banks, rows_per_bank, salp, rows_per_subarray
    )
    if copy_rows:
        measure_crow_timings(s, profile, rows_per_bank)

    if probe_banks is None:
        if banks * rows_per_bank <= max_scan_rows:
            probe_banks = list(range(banks))
        else:
            probe_banks = [0]
    interval = (
        retention_interval_ms
        if retention_interval_ms is not None
        else s.target_retention_interval_ms
    )
    profile.probed_banks = list(probe_banks)
    profile.retention_interval_ms = interval
    profile.weak_rows = scan_weak_rows(
        s, probe_banks, rows_per_bank, interval
    )

    if copy_rows and s.checker is not None and rows_per_subarray is not None:
        profile.duplicate_map = map_duplicates(
            s, probe_banks, rows_per_subarray, copy_rows,
            rows_per_bank // rows_per_subarray, profile.weak_rows,
        )
    elif copy_rows:
        profile.duplicate_map_observed = False

    profile.budget = s.budget()
    return profile
