"""X-ray-style DRAM structure inference via raw command probing.

The probe subsystem recovers a device's geometry, timing parameters,
CROW copy-row configuration, duplicate map and weak-row set from
*observed behaviour alone* — crafted command sequences on a SoftMC-like
raw host (:class:`ProbeSession`), with the generating config consulted
only by the verification oracle (:meth:`InferredProfile.verify_against`).

Layers:

* :mod:`repro.probe.session` — the raw host: cycle-accurate command
  issue, sandboxed attempts, observable outcomes, strict conformance
  shadowing, retention experiments, command-budget telemetry.
* :mod:`repro.probe.routines` — the inference library: address-decode
  boundary searches, minimum-gap timing searches, copy-decoder echo and
  SALP interference for subarray geometry, retention scans, and the
  in-service-slot duplicate map; :func:`discover` orchestrates them.
* :mod:`repro.probe.infer` — :class:`InferredProfile` (per-parameter
  confidence classes) and the structured ground-truth diff.
* :mod:`repro.probe.campaign` — content-digested probe tasks that ride
  the :mod:`repro.exec` cache and :mod:`repro.cluster` distribution.
"""

from repro.probe.campaign import ProbeResult, ProbeSpec
from repro.probe.infer import (
    InferredProfile,
    InferredValue,
    ParameterDiff,
    VerifyReport,
    ground_truth,
)
from repro.probe.routines import discover
from repro.probe.session import ProbeOutcome, ProbeSession

__all__ = [
    "ProbeOutcome",
    "ProbeSession",
    "InferredProfile",
    "InferredValue",
    "ParameterDiff",
    "VerifyReport",
    "ground_truth",
    "discover",
    "ProbeSpec",
    "ProbeResult",
]
