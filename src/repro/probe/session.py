"""SoftMC-style raw probing host for one DRAM channel.

:class:`ProbeSession` drives :meth:`repro.dram.device.DramChannel.issue`
directly — no cores, no LLC, no controller scheduling — with
cycle-accurate control over *when* every command goes on the bus. It is
the device side of the probing experiment: built from the ground-truth
:class:`~repro.sim.config.SystemConfig` through the same
:mod:`repro.sim.factory` path as :class:`~repro.sim.system.System`
(resolved geometry, LPDDR4 timing, CROW timings, retention model, and
the mechanism whose boot-time work — e.g. CROW-ref weak-row remapping —
defines the device's power-on state).

The host-facing surface deliberately leaks none of that: routines in
:mod:`repro.probe.routines` see only *observable behaviour* —

* whether a command at a chosen cycle is **accepted** or rejected, and
  the coarse rejection class (address decode, timing, bank state,
  conformance category, data integrity),
* result latencies (read data cycle, write completion cycle),
* precharge restoration outcomes,
* retention-induced bit errors from a write/wait/read experiment at a
  chosen interval.

Every exploratory :meth:`attempt` is sandboxed: the channel (and the
optional strict shadow :class:`~repro.check.ProtocolChecker`) are
snapshotted via their ``state_dict`` support before the command and
restored after, so probing a rejection never corrupts the timeline —
exactly the mark/rollback discipline a SoftMC host applies by
re-initializing the module between experiments.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.dram import DramChannel, TimingParameters
from repro.dram.commands import ActTimings, Command, CommandKind, RowId
from repro.errors import (
    ConformanceError,
    DataIntegrityError,
    ProbeError,
    ProtocolError,
    TimingViolationError,
)
from repro.mech import get_plugin
from repro.sim import factory
from repro.sim.config import SystemConfig
from repro.telemetry import StatRegistry

__all__ = ["ProbeOutcome", "ProbeSession"]

#: Rejection classes a raw host can tell apart.
REASONS = ("ok", "address", "timing", "state", "conformance", "data")


@dataclass(frozen=True)
class ProbeOutcome:
    """What the host observed from one command attempt."""

    accepted: bool
    #: ``"ok"`` or the rejection class (see :data:`REASONS`).
    reason: str
    #: For conformance rejections: the coarse violation category the
    #: shadow checker exposes (``timing``/``state``/``refresh``/``crow``)
    #: — never the named constraint.
    category: "str | None" = None
    #: Cycle read data appears on the bus (RD commands).
    data_at: "int | None" = None
    #: Cycle the command completes (WR data tail, REF blackout end).
    done_at: "int | None" = None
    #: Whether a PRE left the row(s) fully restored.
    fully_restored: "bool | None" = None


class ProbeSession:
    """Raw command-level access to one channel of a configured device.

    :param config: ground truth the device is built from. Inference
        never reads it back — only :meth:`repro.probe.infer.
        InferredProfile.verify_against` does, as the oracle.
    :param channel: channel index to instantiate (mechanism boot state,
        retention sampling and checker seeding are all per-channel).
    :param shadow: attach a strict :class:`~repro.check.ProtocolChecker`
        so every probe sequence is conformance-validated and checker
        verdicts become observables (CROW mapping and weak-row rules are
        *only* visible through it).
    :param timing: override the device's timing parameters — a deliberate
        mis-parameterization hook for tests that need a lying device;
        ``None`` derives timing from ``config`` like ``System`` does.
    """

    def __init__(
        self,
        config: SystemConfig,
        channel: int = 0,
        shadow: bool = True,
        timing: "TimingParameters | None" = None,
    ) -> None:
        self.config = config
        self.channel_index = channel
        self.geometry = config.resolved_geometry()
        base = timing if timing is not None else factory.base_timing(config)
        self.crow_timings = factory.build_crow_timings(
            config, self.geometry, base
        )
        mechanism_retention = factory.build_retention(config, self.geometry)
        self.mechanism = factory.build_mechanism(
            config, self.geometry, base, self.crow_timings,
            mechanism_retention, channel,
        )
        self.timing = factory.final_timing(base, [self.mechanism])
        # Cell physics exists on every device, not just the mechanisms
        # that exploit it: the retention oracle is unconditional.
        self.retention = (
            mechanism_retention
            if mechanism_retention is not None
            else factory.retention_model(config, self.geometry)
        )
        plugin = get_plugin(config.mechanism)
        salp_subarrays = plugin.salp_subarrays(config, self.geometry)
        self.device = DramChannel(
            self.geometry, self.timing, salp_subarrays=salp_subarrays
        )
        self.checker = None
        if shadow:
            from repro.check import ProtocolChecker

            refresh_enabled = (
                config.refresh_enabled
                and plugin.uses_controller_refresh(config)
            )
            extended = (
                self.timing.refresh_window_ms > config.refresh_window_ms
            )
            invariant = plugin.checker_invariant(
                config, self.geometry, self.timing
            )
            self.checker = ProtocolChecker(
                self.geometry,
                self.timing,
                salp=salp_subarrays is not None,
                expect_refresh=refresh_enabled,
                extended_refresh=extended,
                weak_rows=(
                    factory.weak_row_set(
                        mechanism_retention, self.geometry, channel
                    )
                    if extended
                    else ()
                ),
                assume_ideal_duplicates=plugin.assume_ideal_duplicates(
                    config
                ),
                invariants=() if invariant is None else (invariant,),
                mode="strict",
            )
            factory.seed_checker_remaps(self.checker, self.mechanism)
            self.device.checker = self.checker
        self.now = 0
        self.stats = StatRegistry()
        probe = self.stats.group("probe")
        self._n_attempts = probe.counter(
            "attempts", "commands offered to the device (incl. sandboxed)"
        )
        self._n_commits = probe.counter(
            "commits", "commands committed to the session timeline"
        )
        self._n_restores = probe.counter(
            "restores", "state rollbacks after sandboxed attempts"
        )
        self._n_retention = probe.counter(
            "retention_probes", "write/wait/read retention experiments"
        )
        rejected = probe.group("rejected")
        self._n_rejected = {
            reason: rejected.counter(reason, f"{reason}-class rejections")
            for reason in REASONS
            if reason != "ok"
        }

    # ------------------------------------------------------------------
    # Command builders (host address space: bank + bank-level row ints)
    # ------------------------------------------------------------------
    def cmd_act(self, bank: int, row: int) -> Command:
        """Plain activate of a regular row (bank-level row number)."""
        return Command(
            CommandKind.ACT,
            bank,
            (RowId.regular(row, self.geometry.rows_per_subarray),),
        )

    def cmd_act_copy(self, bank: int, subarray: int, slot: int) -> Command:
        """Plain activate of a copy row through the CROW decoder."""
        return Command(CommandKind.ACT, bank, (RowId.copy(subarray, slot),))

    def cmd_act_c(
        self, bank: int, row: int, slot: int, early: bool = False
    ) -> Command:
        """``ACT-c``: activate ``row`` and copy it into its subarray's
        copy slot ``slot`` (early-termination mode optional)."""
        source = RowId.regular(row, self.geometry.rows_per_subarray)
        dest = RowId.copy(source.subarray, slot)
        return Command(
            CommandKind.ACT_C, bank, (source, dest),
            timings=self._act_c_timings(early),
        )

    def cmd_act_t(
        self,
        bank: int,
        row: int,
        slot: int,
        partial: bool = False,
        early: bool = False,
    ) -> Command:
        """``ACT-t``: simultaneously activate ``row`` and copy slot
        ``slot`` (which must hold its duplicate). ``partial`` selects the
        partially-restored-pair timing mode; ``early`` permits
        early-terminated restoration."""
        source = RowId.regular(row, self.geometry.rows_per_subarray)
        dest = RowId.copy(source.subarray, slot)
        return Command(
            CommandKind.ACT_T, bank, (source, dest),
            timings=self._act_t_timings(partial, early),
        )

    def cmd_rd(
        self, bank: int, col: int = 0, subarray: "int | None" = None
    ) -> Command:
        return Command(CommandKind.RD, bank, col=col, subarray=subarray)

    def cmd_wr(
        self, bank: int, col: int = 0, subarray: "int | None" = None
    ) -> Command:
        return Command(CommandKind.WR, bank, col=col, subarray=subarray)

    def cmd_pre(self, bank: int, subarray: "int | None" = None) -> Command:
        return Command(CommandKind.PRE, bank, subarray=subarray)

    def cmd_ref(self) -> Command:
        return Command(CommandKind.REF)

    def _crow(self):
        if self.crow_timings is None:
            raise ProtocolError(
                "device has no copy-row decoder (0 copy rows per subarray)"
            )
        return self.crow_timings

    def _act_c_timings(self, early: bool) -> ActTimings:
        crow = self._crow()
        if early:
            return ActTimings(
                trcd=crow.trcd_act_c,
                tras_full=crow.tras_act_c_full,
                tras_early=crow.tras_act_c_early,
                twr=crow.twr_mra_early,
                twr_full=crow.twr_mra_full,
            )
        return ActTimings(
            trcd=crow.trcd_act_c,
            tras_full=crow.tras_act_c_full,
            tras_early=crow.tras_act_c_full,
            twr=crow.twr_mra_full,
        )

    def _act_t_timings(self, partial: bool, early: bool) -> ActTimings:
        crow = self._crow()
        trcd = crow.trcd_act_t_partial if partial else crow.trcd_act_t_full
        if early:
            tras_early = (
                crow.tras_act_t_partial_early
                if partial
                else crow.tras_act_t_early
            )
            return ActTimings(
                trcd=trcd,
                tras_full=crow.tras_act_t_full,
                tras_early=tras_early,
                twr=crow.twr_mra_early,
                twr_full=crow.twr_mra_full,
            )
        return ActTimings(
            trcd=trcd,
            tras_full=crow.tras_act_t_full,
            tras_early=crow.tras_act_t_full,
            twr=crow.twr_mra_full,
        )

    # ------------------------------------------------------------------
    # Mark / restore (the SoftMC "re-initialize between experiments")
    # ------------------------------------------------------------------
    def mark(self) -> dict:
        """Snapshot the channel + shadow checker + session clock."""
        return {
            "device": self.device.state_dict(),
            "checker": (
                self.checker.state_dict()
                if self.checker is not None
                else None
            ),
            "now": self.now,
        }

    def restore(self, token: dict) -> None:
        """Roll the session back to a :meth:`mark` token."""
        self.device.load_state_dict(token["device"])
        if self.checker is not None and token["checker"] is not None:
            self.checker.load_state_dict(token["checker"])
        self.now = token["now"]
        self._n_restores.add()

    @contextmanager
    def sandbox(self):
        """Scope whose committed steps are rolled back on exit."""
        token = self.mark()
        try:
            yield
        finally:
            self.restore(token)

    # ------------------------------------------------------------------
    # Command issue
    # ------------------------------------------------------------------
    def _issue(self, command: Command, at: int) -> ProbeOutcome:
        try:
            self.device.validate_address(command)
        except ProtocolError:
            return ProbeOutcome(False, "address")
        try:
            result = self.device.issue(command, at)
        except TimingViolationError:
            return ProbeOutcome(False, "timing")
        except ProtocolError:
            return ProbeOutcome(False, "state")
        except ConformanceError as error:
            return ProbeOutcome(
                False, "conformance", category=error.violation.category
            )
        except DataIntegrityError:
            return ProbeOutcome(False, "data")
        precharge = result.precharge
        return ProbeOutcome(
            True,
            "ok",
            data_at=result.data_at,
            done_at=result.done_at,
            fully_restored=(
                precharge.fully_restored if precharge is not None else None
            ),
        )

    def attempt(self, command: Command, at: int) -> ProbeOutcome:
        """Offer ``command`` at cycle ``at``; observe, then roll back.

        Pure observation: device and checker state are restored whether
        the command was accepted or not, so searches can hammer the same
        timeline position with different gaps. The strict checker raises
        *after* the device mutates, which is exactly why the rollback is
        unconditional.
        """
        token = self.mark()
        self._n_attempts.add()
        outcome = self._issue(command, at)
        if not outcome.accepted:
            self._n_rejected[outcome.reason].add()
        self.restore(token)
        return outcome

    def step(self, command: Command, at: int) -> ProbeOutcome:
        """Commit ``command`` at cycle ``at`` to the session timeline.

        A rejected step is a routine bug, not a measurement: state is
        rolled back and :class:`~repro.errors.ProbeError` raised.
        """
        token = self.mark()
        self._n_attempts.add()
        outcome = self._issue(command, at)
        if not outcome.accepted:
            self._n_rejected[outcome.reason].add()
            self.restore(token)
            raise ProbeError(
                f"probe step rejected ({outcome.reason}): "
                f"{command.kind.name} bank {command.bank} at {at}"
            )
        self.now = max(self.now, at)
        self._n_commits.add()
        return outcome

    def step_earliest(self, command: Command) -> tuple[int, ProbeOutcome]:
        """Commit ``command`` at the first cycle the device accepts it.

        Models a host that polls the bus until the device is ready —
        setup plumbing for experiments, not a measurement (routines must
        not feed the returned cycle into inference; they *search* for
        minimum gaps via :meth:`attempt` instead).
        """
        self.device.validate_address(command)
        at = max(self.device.earliest_issue(command), self.now)
        return at, self.step(command, at)

    # ------------------------------------------------------------------
    # Retention observable
    # ------------------------------------------------------------------
    @property
    def target_retention_interval_ms(self) -> float:
        """Default refresh interval for retention experiments.

        A campaign parameter (the interval regime the experiment plan
        targets), not an inference — routines may override it per probe.
        """
        return self.retention.target_interval_ms

    def retention_errors(
        self,
        bank: int,
        row: int,
        interval_ms: float,
        copy: bool = False,
        subarray: "int | None" = None,
    ) -> bool:
        """Write/wait/read experiment: does ``row`` decay at ``interval_ms``?

        Models writing the row fully restored, pausing refresh for
        ``interval_ms``, and reading back — ``True`` when the readback
        differs (the row's retention time is shorter than the interval).
        For ``copy`` rows, ``row`` is the copy-slot index and
        ``subarray`` addresses the subarray.
        """
        self._n_retention.add()
        geometry = self.geometry
        if copy:
            if subarray is None:
                raise ProbeError("copy-row retention probe needs a subarray")
            sub, index = subarray, row
            if not 0 <= index < geometry.copy_rows_per_subarray:
                raise ProbeError(f"copy slot {index} out of range")
        else:
            if not 0 <= row < geometry.rows_per_bank:
                raise ProbeError(f"row {row} out of range")
            sub = row // geometry.rows_per_subarray
            index = row % geometry.rows_per_subarray
        if not 0 <= bank < geometry.banks_per_channel:
            raise ProbeError(f"bank {bank} out of range")
        retention_ms = self.retention.row_retention_ms(
            self.channel_index, bank, sub, index, is_copy=copy
        )
        return interval_ms > retention_ms

    # ------------------------------------------------------------------
    # Budget export
    # ------------------------------------------------------------------
    def budget(self) -> dict:
        """Flat command-budget counters (telemetry export projection)."""
        return {
            path: stat.export()["value"]
            for path, stat in self.stats.flatten()
        }
