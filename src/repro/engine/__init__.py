"""Simulation engines: interchangeable drivers for one ``System``.

An engine owns the three run phases — functional pre-warm, timed
warm-up, timed measurement — over a fully-built
:class:`~repro.sim.system.System`. Two engines exist:

* ``event`` — the reference per-event loop (the seed implementation,
  moved verbatim into :class:`~repro.engine.event.EventEngine`);
* ``batch`` — the table-driven batch engine
  (:class:`~repro.engine.batch.BatchEngine`): numpy-vectorized
  functional warming, precompiled command/timing tables
  (:mod:`repro.engine.tables`), and a min-wake window driver with the
  event heap inlined.

Both engines are *step-equivalent*: they make the identical sequence of
component ``tick()`` and event-callback calls, so every run produces
byte-identical telemetry digests regardless of engine. The engine is
selected by ``SystemConfig(engine=...)`` and deliberately excluded from
config digests — it changes how fast a result is computed, never the
result.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["ENGINE_NAMES", "get_engine"]

#: Valid values for ``SystemConfig.engine``.
ENGINE_NAMES = ("event", "batch")


def get_engine(name: str):
    """The engine class registered under ``name`` (lazily imported)."""
    if name == "event":
        from repro.engine.event import EventEngine

        return EventEngine
    if name == "batch":
        from repro.engine.batch import BatchEngine

        return BatchEngine
    raise ConfigError(
        f"unknown engine {name!r} (valid: {', '.join(ENGINE_NAMES)})"
    )
