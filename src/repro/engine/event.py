"""The reference per-event engine.

These are the seed hot loops, moved verbatim out of
``System._run_to_completion``: one :meth:`System._step` per iteration,
with the phase predicate evaluated between steps. The event engine is
the behavioural oracle every other engine is differentially tested
against — keep it boring.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["EventEngine"]

IDLE = 1 << 62


class EventEngine:
    """Drive a built :class:`~repro.sim.system.System`, one step at a time."""

    name = "event"

    def __init__(self, system) -> None:
        self.system = system

    def prewarm(self, accesses_per_core: int) -> None:
        """Functional warm-up via the scalar record-at-a-time path."""
        self.system._prewarm_scalar(accesses_per_core)

    def run_warmup(
        self, warmup_instructions: int, max_cycles: int | None
    ) -> None:
        """Step until every core has retired its warm-up quota."""
        system = self.system
        step = system._step
        cores = system.cores
        while any(core.retired < warmup_instructions for core in cores):
            step()
            if max_cycles is not None and system.now > max_cycles:
                raise ReproError("warm-up exceeded max_cycles")

    def run_measured(self, max_cycles: int | None) -> None:
        """Step until every core has retired its measured quota."""
        system = self.system
        step = system._step
        cores = system.cores
        while not all(core.done for core in cores):
            step()
            if max_cycles is not None and system.now > max_cycles:
                raise ReproError("measurement exceeded max_cycles")
