"""The table-driven batch engine.

Three changes relative to the reference event engine, none of which may
move a single observable value:

1. **Vectorized functional warming.** ``prewarm`` dominates short runs
   (it replays hundreds of thousands of accesses per core). The batch
   engine consumes whole (vaddr, is_write) column arrays from the trace
   layer (:meth:`TraceStream.take_arrays`), translates pages with one
   ``np.unique`` per chunk (allocating missing frames in first-touch
   order so the allocator RNG stream matches the scalar path draw for
   draw), and simulates the LLC's exact LRU automaton across all sets
   in parallel: accesses are grouped per set, and round ``r`` applies
   the ``r``-th access of every set at once. The final tag/dirty matrix
   is materialized back into the LLC's dict-of-sets representation —
   byte-identical to what the scalar loop leaves behind.

2. **Precompiled tables.** The per-config command-legality and
   timing-advance constants come from
   :func:`repro.engine.tables.compile_timing_tables`; the device layer
   consumes the same compiled object, so both engines read identical
   constants from one source of truth.

3. **Batched min-wake driver.** The timed loops advance ``now``
   straight to the min-wake horizon (earliest event or tickable wake),
   with the event heap and component tuple held in locals and the heap
   popped inline. The *sequence* of tick and event-callback invocations
   is exactly the reference engine's — component ticks have side
   effects (row-timeout precharges, drain-mode flips, refresh
   scheduling), so none may be skipped or reordered.

The cross-engine differential suite (``tests/engine/``) and the fuzz
harness hold this engine to byte-identical telemetry digests, results
and state trees against :class:`~repro.engine.event.EventEngine`.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.engine.tables import compile_timing_tables
from repro.errors import ReproError

__all__ = ["BatchEngine"]

IDLE = 1 << 62

#: Records pulled per core per pre-warm chunk. Larger chunks amortize
#: the per-chunk numpy fixed costs; the scalar tail below bounds the
#: LRU kernel's round count, so the chunk can be generous.
_PREWARM_CHUNK = 131072

#: When this few sets still have accesses left in a chunk, the LRU
#: kernel finishes them with per-set Python loops instead of paying a
#: full vector round's fixed cost per access. Hot-set workloads (libq)
#: concentrate hundreds of accesses on a handful of sets; without the
#: tail the round count — and with it the number of numpy dispatches —
#: scales with the hottest set's access count.
_SCALAR_TAIL_SETS = 96


class BatchEngine:
    """Vectorized driver producing the event engine's exact behaviour."""

    name = "batch"

    def __init__(self, system) -> None:
        self.system = system
        self.tables = compile_timing_tables(system.timing)

    # ------------------------------------------------------------------
    # Functional pre-warm
    # ------------------------------------------------------------------
    def prewarm(self, accesses_per_core: int) -> None:
        system = self.system
        llc = system.llc
        traces = [core.trace for core in system.cores]
        if (
            llc.hits
            or llc.misses
            or llc.writebacks
            or llc.prefetch_fills
            or any(llc._sets)
            or not all(
                getattr(trace, "supports_arrays", False) for trace in traces
            )
        ):
            # The vectorized kernel assumes a fresh LLC and array-capable
            # traces; anything else takes the reference path.
            system._prewarm_scalar(accesses_per_core)
            return

        from repro.cpu.translation import ASID_SHIFT, PAGE_MASK, PAGE_SHIFT

        vm = system.vm
        config = llc.config
        offset_bits = llc._offset_bits
        index_mask = llc._index_mask
        index_bits = llc._index_bits
        ways = llc._ways
        n_sets = config.sets
        # Page-offset bits that survive into the line base address.
        line_offset_mask = PAGE_MASK & ~(config.line_bytes - 1)

        bases = [core.core_id << ASID_SHIFT for core in system.cores]
        n_cores = len(bases)
        # Exact LRU state, all sets at once: row = one set, columns are
        # LRU→MRU left to right, -1 marks an empty way. Empty ways sit
        # at the *left*, so a miss always evicts/consumes column 0.
        tag_state = np.full((n_sets, ways), -1, dtype=np.int64)
        dirty_state = np.zeros((n_sets, ways), dtype=bool)
        col = np.arange(ways)

        remaining = accesses_per_core
        while remaining:
            n = min(_PREWARM_CHUNK, remaining)
            remaining -= n
            batches = [trace.take_arrays(n) for trace in traces]
            lengths = [len(vaddrs) for vaddrs, _ in batches]
            if not any(lengths):
                break
            # Interleave the per-core columns round-robin by access
            # index — the order the scalar loop warms in, which fixes
            # both the LRU state and the frame-allocation sequence.
            if n_cores == 1:
                vaddrs, writes = batches[0]
                keys = bases[0] | (vaddrs >> PAGE_SHIFT)
            elif all(length == n for length in lengths):
                vaddrs = np.stack(
                    [vaddrs for vaddrs, _ in batches], axis=1
                ).ravel()
                writes = np.stack(
                    [writes for _, writes in batches], axis=1
                ).ravel()
                keys = (vaddrs >> PAGE_SHIFT) | np.tile(
                    np.asarray(bases, dtype=np.int64), n
                )
            else:
                # Ragged tail: some (finite) trace ran dry mid-chunk.
                # Sorting by (access index, core) reproduces the scalar
                # order, which skips exhausted streams and keeps going.
                order = np.argsort(
                    np.concatenate(
                        [
                            np.arange(length) * n_cores + core
                            for core, length in enumerate(lengths)
                        ]
                    ),
                    kind="stable",
                )
                vaddrs = np.concatenate(
                    [vaddrs for vaddrs, _ in batches]
                )[order]
                writes = np.concatenate(
                    [writes for _, writes in batches]
                )[order]
                keys = (vaddrs >> PAGE_SHIFT) | np.concatenate(
                    [
                        np.full(length, base, dtype=np.int64)
                        for base, length in zip(bases, lengths)
                    ]
                )[order]

            # Translation: one page-table probe per distinct page, with
            # missing frames allocated in first-touch order (identical
            # np.random.Generator consumption to per-access translate).
            uniq, first_index, inverse = np.unique(
                keys, return_index=True, return_inverse=True
            )
            touch_order = np.argsort(first_index, kind="stable")
            frames_touched = vm.bulk_map(uniq[touch_order].tolist())
            frames = np.empty(len(uniq), dtype=np.int64)
            frames[touch_order] = frames_touched
            lines = (frames[inverse] << PAGE_SHIFT) | (
                vaddrs & line_offset_mask
            )

            # Exact-LRU warm kernel. Accesses are grouped per set with a
            # stable sort; round r applies the r-th access of every set
            # that has one — distinct sets, so each round is one fully
            # parallel update of the (sets, ways) state matrix.
            line_ids = lines >> offset_bits
            set_idx = line_ids & index_mask
            tags = line_ids >> index_bits
            order = np.argsort(set_idx, kind="stable")
            counts = np.bincount(set_idx, minlength=n_sets)
            starts = np.cumsum(counts) - counts
            max_rounds = int(counts.max())
            r = 0
            while r < max_rounds:
                active = np.nonzero(counts > r)[0]
                if len(active) <= _SCALAR_TAIL_SETS:
                    # Tail: few sets left — replay each set's remaining
                    # accesses with plain list ops (sets are mutually
                    # independent, so per-set completion order doesn't
                    # matter). A vector round's fixed dispatch cost
                    # would dwarf the per-access work here.
                    for s in active.tolist():
                        lo = starts[s] + r
                        pos = order[lo : starts[s] + counts[s]]
                        row = tag_state[s].tolist()
                        drow = dirty_state[s].tolist()
                        for tag, write in zip(
                            tags[pos].tolist(), writes[pos].tolist()
                        ):
                            try:
                                w = row.index(tag)
                            except ValueError:
                                w = 0
                                hit = False
                            else:
                                hit = True
                            touched = drow[w]
                            del row[w]
                            del drow[w]
                            row.append(tag)
                            drow.append(
                                (touched or write) if hit else write
                            )
                        tag_state[s] = row
                        dirty_state[s] = drow
                    break
                pos = order[starts[active] + r]
                tag = tags[pos]
                write = writes[pos]
                rows = tag_state[active]
                match = rows == tag[:, None]
                # Unified hit/miss transition: remove column p (the
                # matched way on a hit; column 0 — empty way or LRU
                # victim — on a miss, where argmax of the all-False
                # match row is already 0), close the gap, insert at MRU.
                p = match.argmax(axis=1)
                ar = np.arange(len(active))
                hit = rows[ar, p] == tag
                gather = np.where(col < p[:, None], col, col + 1)
                gather[:, ways - 1] = p
                old_dirty = dirty_state[active]
                touched_dirty = old_dirty[ar, p]
                ar = ar[:, None]
                new_rows = rows[ar, gather]
                new_dirty = old_dirty[ar, gather]
                new_rows[:, ways - 1] = tag
                new_dirty[:, ways - 1] = np.where(
                    hit, touched_dirty | write, write
                )
                tag_state[active] = new_rows
                dirty_state[active] = new_dirty
                r += 1

        # Materialize back into the LLC's dict-of-sets layout, touching
        # only the valid cells (boolean-mask indexing is row-major, so
        # per set the columns come out left to right — the LRU-first key
        # order snapshots depend on). tolist() yields plain Python
        # ints/bools.
        valid = tag_state >= 0
        sets: list[dict] = [{} for _ in range(n_sets)]
        for s, tag, dirty in zip(
            np.nonzero(valid)[0].tolist(),
            tag_state[valid].tolist(),
            dirty_state[valid].tolist(),
        ):
            sets[s][tag] = [dirty, False]
        llc._sets = sets
        llc.reset_stats()

    # ------------------------------------------------------------------
    # Timed phases
    # ------------------------------------------------------------------
    def run_warmup(
        self, warmup_instructions: int, max_cycles: int | None
    ) -> None:
        """Min-wake window loop until every core clears warm-up."""
        system = self.system
        cores = system.cores
        controllers = system.controllers
        tickables = system._tickables
        heap = system.events._heap
        pop = heapq.heappop
        limit = max_cycles if max_cycles is not None else float("inf")
        while any(core.retired < warmup_instructions for core in cores):
            t = heap[0][0] if heap else IDLE
            for component in tickables:
                wake = component.next_wake
                if wake < t:
                    t = wake
            if t >= IDLE:
                raise ReproError(system._deadlock_message())
            if t > system.now:
                system.now = t
            now = system.now
            while heap and heap[0][0] <= now:
                when, _, fn = pop(heap)
                fn(when)
            for core in cores:
                if core.next_wake <= now:
                    core.next_wake = core.tick(now)
            for controller in controllers:
                if controller.next_wake <= now:
                    controller.next_wake = controller.tick(now)
            if now > limit:
                raise ReproError("warm-up exceeded max_cycles")

    def run_measured(self, max_cycles: int | None) -> None:
        """Min-wake window loop until every core retires its quota."""
        system = self.system
        cores = system.cores
        controllers = system.controllers
        tickables = system._tickables
        heap = system.events._heap
        pop = heapq.heappop
        limit = max_cycles if max_cycles is not None else float("inf")
        while not all(core.done for core in cores):
            t = heap[0][0] if heap else IDLE
            for component in tickables:
                wake = component.next_wake
                if wake < t:
                    t = wake
            if t >= IDLE:
                raise ReproError(system._deadlock_message())
            if t > system.now:
                system.now = t
            now = system.now
            while heap and heap[0][0] <= now:
                when, _, fn = pop(heap)
                fn(when)
            for core in cores:
                if core.next_wake <= now:
                    core.next_wake = core.tick(now)
            for controller in controllers:
                if controller.next_wake <= now:
                    controller.next_wake = controller.tick(now)
            if now > limit:
                raise ReproError("measurement exceeded max_cycles")
