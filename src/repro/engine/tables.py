"""Precompiled command-legality and timing-advance tables.

Every cross-command spacing the device layer enforces is a fixed sum of
:class:`~repro.dram.timing.TimingParameters` fields, and every
activation-timing variant a mechanism can issue is a fixed function of
its :class:`~repro.dram.timing.CrowTimings` and config knobs. This
module resolves both *once per configuration*:

* :func:`compile_timing_tables` → :class:`CommandTables`, consumed by
  :class:`~repro.dram.device.DramChannel` as the single source of truth
  for its per-issue constants (the channel used to compute the same
  sums inline);
* :func:`compile_act_variants` → the named activation-timing overrides
  the configured mechanism can put on the wire, gathered through the
  :meth:`~repro.mech.plugin.MechanismPlugin.timing_variants` plugin
  hook. The differential tests cross-validate these against the live
  mechanism objects.

Because both engines (and the raw-command probe host) read their timing
constants from the same compiled tables, an engine cannot drift from
the reference without the equivalence suite catching it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from types import MappingProxyType
from typing import Mapping

from repro.dram.commands import ActTimings, CommandKind
from repro.dram.timing import TimingParameters

__all__ = [
    "CommandTables",
    "compile_timing_tables",
    "compile_act_variants",
    "COMMAND_LEGALITY",
]

#: Declarative command-legality table: the bank state each command kind
#: requires. ``closed`` — no open row in the target bank (slot);
#: ``open`` — a row must be open; ``any`` — legal either way (PRE on a
#: closed bank is a timed no-op); ``all-closed`` — every bank in the
#: channel must be precharged (REF). The bank state machine enforces
#: these; the table states them once for engines, docs and tests.
COMMAND_LEGALITY: Mapping[CommandKind, str] = MappingProxyType(
    {
        CommandKind.ACT: "closed",
        CommandKind.ACT_C: "closed",
        CommandKind.ACT_T: "closed",
        CommandKind.RD: "open",
        CommandKind.WR: "open",
        CommandKind.PRE: "any",
        CommandKind.REF: "all-closed",
    }
)


@dataclass(frozen=True)
class CommandTables:
    """Per-config timing-advance constants for one channel.

    All fields are in DRAM clock cycles. ``bus_cycles`` is indexed by
    :class:`~repro.dram.commands.CommandKind` value: CROW's ``ACT-c`` /
    ``ACT-t`` spend one extra address-transfer cycle on the command bus
    (paper footnote 3).
    """

    base_act: ActTimings
    rd_after_rd: int
    rd_after_wr: int
    wr_after_wr: int
    wr_after_rd: int
    rd_data_delay: int
    wr_done_delay: int
    trrd: int
    tfaw: int
    tfaw_window: int
    trfc: int
    bus_cycles: tuple
    legality: Mapping[CommandKind, str] = field(
        default_factory=lambda: COMMAND_LEGALITY
    )


@lru_cache(maxsize=None)
def compile_timing_tables(timing: TimingParameters) -> CommandTables:
    """Resolve every derived timing constant for ``timing``.

    Cached per (frozen, hashable) parameter set: all channels of a
    system — and all systems under one config — share one table object.
    """
    bus = [1] * len(CommandKind)
    bus[CommandKind.ACT_C] = 2
    bus[CommandKind.ACT_T] = 2
    return CommandTables(
        base_act=ActTimings(
            trcd=timing.trcd,
            tras_full=timing.tras,
            tras_early=timing.tras,
            twr=timing.twr,
        ),
        rd_after_rd=timing.tccd,
        rd_after_wr=timing.tcwl + timing.tbl + timing.twtr,
        wr_after_wr=timing.tccd,
        wr_after_rd=timing.tcl + timing.tbl + 2 - timing.tcwl,
        rd_data_delay=timing.tcl + timing.tbl,
        wr_done_delay=timing.tcwl + timing.tbl,
        trrd=timing.trrd,
        tfaw=timing.tfaw,
        tfaw_window=4,
        trfc=timing.trfc,
        bus_cycles=tuple(bus),
    )


def compile_act_variants(
    config, timing: TimingParameters, crow_timings=None
) -> "dict[str, ActTimings]":
    """Named activation-timing sets the configured mechanism may issue.

    Always contains ``"act"`` (the base single-row activation); the
    mechanism plugin contributes its overrides through the
    ``timing_variants`` hook. Used for cross-validation and docs — the
    live command path carries the same objects via ``ActivationPlan``.
    """
    from repro.mech import get_plugin

    variants = {"act": compile_timing_tables(timing).base_act}
    variants.update(
        get_plugin(config.mechanism).timing_variants(
            config, timing, crow_timings
        )
    )
    return variants
