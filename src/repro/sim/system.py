"""Full-system wiring: cores + LLC + channel controllers + mechanism.

:class:`System` builds the component graph described by a
:class:`~repro.sim.config.SystemConfig`, runs the event-paced simulation
loop (warm-up followed by a measured region, as in the paper's
methodology), and assembles a :class:`~repro.sim.metrics.SimResult`.
"""

from __future__ import annotations

import dataclasses
import gc
import heapq
from pathlib import Path
from typing import Callable, Iterator

from repro.controller import ChannelController, FrFcfsCap, MemRequest, RequestType
from repro.cpu import Core, Llc, RptPrefetcher, VirtualMemory
from repro.cpu.core import TraceRecord, _MemOp
from repro.dram import AddressMapper, CellArray, DramChannel
from repro.energy import (
    ChannelActivity,
    EnergyModel,
    IddCurrents,
    breakdown_from_coefficients,
)
from repro.estimate.runtime import channel_coefficients
from repro.errors import ConfigError, ReproError, SnapshotError
from repro.mech import get_plugin
from repro.sim import factory
from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.trace.stream import TraceStream

__all__ = ["System"]

IDLE = 1 << 62


def _fmt_wake(time: int) -> str:
    """Render a component wake time for diagnostics (IDLE -> 'idle')."""
    return "idle" if time >= IDLE else str(time)


def _prefetch_disabled(core_id: int, pc: int, vaddr: int, now: int) -> None:
    """No-op bound over MemoryPort._maybe_prefetch when prefetch is off."""


class _EventQueue:
    """Timestamped callback heap (completion events, etc.).

    Callbacks receive their own scheduled time — every event in this
    simulator is a completion firing *at* its finish cycle, so passing
    the timestamp back removes the need for per-event closures (which a
    snapshot could not serialize; see :mod:`repro.snapshot`). The heap
    therefore only ever holds three callable shapes: a
    :class:`repro.cpu.core._MemOp`, a
    :class:`repro.controller.request.MemRequest`, or the telemetry
    epoch sampler bound method.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0

    def schedule(self, time: int, fn: Callable[[int], None]) -> None:
        """Enqueue ``fn`` to run at ``time`` (called as ``fn(time)``)."""
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def next_time(self) -> int:
        """Timestamp of the earliest pending event (IDLE if none)."""
        return self._heap[0][0] if self._heap else IDLE

    def run_until(self, now: int) -> None:
        """Fire every event scheduled at or before ``now``."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            when, _, fn = heapq.heappop(heap)
            fn(when)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self, encode_event) -> dict:
        """Pending events with their exact (time, seq) ordering keys.

        ``encode_event`` maps each callable to a value encoding (the
        System owns the mapping: window refs, request state, epoch tag).
        The heap is stored sorted — sorting only compares the unique
        ``(time, seq)`` prefix, and a sorted list is a valid heap.
        """
        return {
            "heap": [
                (time, seq, encode_event(fn))
                for time, seq, fn in sorted(
                    self._heap, key=lambda event: (event[0], event[1])
                )
            ],
            "seq": self._seq,
        }

    def load_state_dict(self, state: dict, decode_event) -> None:
        self._heap = [
            (time, seq, decode_event(encoded))
            for time, seq, encoded in state["heap"]
        ]
        heapq.heapify(self._heap)
        self._seq = state["seq"]


class MemoryPort:
    """The cores' window into the memory hierarchy.

    Translates, consults the shared LLC, merges outstanding fills, drives
    the prefetcher, and hands misses/writebacks to the right channel
    controller. See :meth:`repro.cpu.core.Core._issue_access` for the
    completion-callback contract.
    """

    __slots__ = (
        "system",
        "_outstanding",
        "demand_misses_per_core",
        "demand_accesses_per_core",
        "dropped_writebacks",
        "_line_mask",
        "_maybe_prefetch",
    )

    def __init__(self, system: "System") -> None:
        self.system = system
        # line -> [issued_as_prefetch, waiter callbacks...]
        self._outstanding: dict[int, list] = {}
        self.demand_misses_per_core = [0] * system.config.cores
        self.demand_accesses_per_core = [0] * system.config.cores
        self.dropped_writebacks = 0
        self._line_mask = ~(system.llc.config.line_bytes - 1)
        # The prefetcher set is fixed at construction: bind the observe
        # hook to a no-op when disabled so the hit/miss hot path pays one
        # call, not a per-access emptiness test.
        self._maybe_prefetch = (
            self._observe_access
            if system.prefetchers
            else _prefetch_disabled
        )

    # ------------------------------------------------------------------
    def access(
        self,
        core_id: int,
        vaddr: int,
        is_write: bool,
        pc: int,
        now: int,
        on_complete: Callable[[int], None],
    ) -> str:
        """Serve one core access; returns 'hit', 'miss' or 'stall'."""
        system = self.system
        line = system.vm.translate(core_id, vaddr) & self._line_mask
        if system.llc.contains(line):
            hit, _, was_prefetched = system.llc.access(line, is_write)
            assert hit
            if was_prefetched and system.prefetchers:
                system.prefetchers[core_id].useful += 1
            finish = now + system.llc.config.hit_latency
            system.events.schedule(finish, on_complete)
            self.demand_accesses_per_core[core_id] += 1
            self._maybe_prefetch(core_id, pc, vaddr, now)
            return "hit"

        # Miss: secure queue space for the fill and any dirty writeback.
        pending = self._outstanding.get(line)
        if pending is not None:
            # Merge with the in-flight fill for this line (MSHR merge).
            system.llc.access(line, is_write)  # allocates/updates LRU
            if pending[0] and system.prefetchers:
                # The demand caught an in-flight prefetch: count it useful
                # (latency was partially hidden) exactly once.
                system.prefetchers[core_id].useful += 1
                pending[0] = False
            pending.append(on_complete)
            self.demand_accesses_per_core[core_id] += 1
            self.demand_misses_per_core[core_id] += 1
            self._maybe_prefetch(core_id, pc, vaddr, now)
            return "miss"
        controller = system.controller_for(line)
        if not controller.can_accept(RequestType.READ):
            return "stall"
        victim = system.llc.peek_victim(line)
        if victim is not None:
            wb_controller = system.controller_for(victim)
            if not wb_controller.can_accept(RequestType.WRITE):
                return "stall"
        _, writeback, _ = system.llc.access(line, is_write)
        if writeback is not None:
            self._post_writeback(writeback, now)
        self._outstanding[line] = [False, on_complete]
        request = MemRequest(
            RequestType.READ,
            line,
            system.mapper.decode(line),
            core_id=core_id,
            callback=self._fill_done,
        )
        accepted = controller.enqueue(request, now)
        assert accepted
        controller.next_wake = min(controller.next_wake, now)
        self.demand_accesses_per_core[core_id] += 1
        self.demand_misses_per_core[core_id] += 1
        self._maybe_prefetch(core_id, pc, vaddr, now)
        return "miss"

    # ------------------------------------------------------------------
    def _fill_done(self, request: MemRequest, finish: int) -> None:
        """Completion callback for every fill this port issued.

        A bound method (not a per-miss closure) so snapshots can encode
        it by name. The fill's nature is carried by the request itself:
        prefetch fills allocate at completion time and may evict a dirty
        victim; demand fills allocated at issue time. The outstanding
        entry's waiters are demand completions merged onto the fill.
        """
        line = request.address
        entry = self._outstanding.pop(line)
        if request.is_prefetch:
            writeback = self.system.llc.fill_prefetch(line)
            if writeback is not None:
                self._post_writeback(writeback, finish)
        for waiter in entry[1:]:
            waiter(finish)

    def _post_writeback(self, address: int, now: int) -> None:
        """Post a dirty eviction to its channel's write queue.

        Demand-path writebacks are guaranteed space by the peek_victim
        stall check; fill-time (prefetch) writebacks may rarely find the
        queue full and are counted — a bounded timing inaccuracy, since
        the LLC model does not carry data.
        """
        system = self.system
        controller = system.controller_for(address)
        request = MemRequest(
            RequestType.WRITE, address, system.mapper.decode(address)
        )
        if controller.enqueue(request, now):
            controller.next_wake = min(controller.next_wake, now)
        else:
            self.dropped_writebacks += 1

    def _observe_access(
        self, core_id: int, pc: int, vaddr: int, now: int
    ) -> None:
        system = self.system
        prefetcher = system.prefetchers[core_id]
        for target_vaddr in prefetcher.observe(pc, vaddr):
            line = system.vm.translate(core_id, target_vaddr) & self._line_mask
            if system.llc.contains(line) or line in self._outstanding:
                continue
            controller = system.controller_for(line)
            if not controller.can_accept(RequestType.READ):
                continue
            self._outstanding[line] = [True]
            request = MemRequest(
                RequestType.READ,
                line,
                system.mapper.decode(line),
                core_id=core_id,
                callback=self._fill_done,
                is_prefetch=True,
            )
            controller.enqueue(request, now)
            controller.next_wake = min(controller.next_wake, now)

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.demand_misses_per_core = [0] * self.system.config.cores
        self.demand_accesses_per_core = [0] * self.system.config.cores

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self, encode_op) -> dict:
        """Outstanding fills (with waiter refs) and per-core counters.

        ``encode_op`` maps each waiter ``_MemOp`` to a value encoding
        that preserves aliasing with the owning core's window (the same
        op object can sit in a window *and* on a waiter list, and its
        ``done`` flag must stay shared after a restore).
        """
        return {
            "outstanding": [
                (line, entry[0], [encode_op(op) for op in entry[1:]])
                for line, entry in self._outstanding.items()
            ],
            "demand_misses_per_core": list(self.demand_misses_per_core),
            "demand_accesses_per_core": list(self.demand_accesses_per_core),
            "dropped_writebacks": self.dropped_writebacks,
        }

    def load_state_dict(self, state: dict, decode_op) -> None:
        self._outstanding = {
            line: [was_prefetch, *(decode_op(tag) for tag in waiters)]
            for line, was_prefetch, waiters in state["outstanding"]
        }
        self.demand_misses_per_core = list(state["demand_misses_per_core"])
        self.demand_accesses_per_core = list(
            state["demand_accesses_per_core"]
        )
        self.dropped_writebacks = state["dropped_writebacks"]


class System:
    """One simulated machine, ready to run a set of traces."""

    def __init__(
        self,
        config: SystemConfig,
        traces: list[Iterator[TraceRecord]],
    ) -> None:
        if len(traces) != config.cores:
            raise ConfigError(
                f"expected {config.cores} traces, got {len(traces)}"
            )
        self.config = config
        self.geometry = config.resolved_geometry()
        self.mapper = AddressMapper(self.geometry)
        base_timing = factory.base_timing(config)
        self.crow_timings = factory.build_crow_timings(
            config, self.geometry, base_timing
        )
        self.retention = factory.build_retention(config, self.geometry)
        self.mechanisms = [
            factory.build_mechanism(
                config, self.geometry, base_timing, self.crow_timings,
                self.retention, ch,
            )
            for ch in range(self.geometry.channels)
        ]
        self.timing = factory.final_timing(base_timing, self.mechanisms)
        plugin = get_plugin(config.mechanism)
        refresh_enabled = (
            config.refresh_enabled and plugin.uses_controller_refresh(config)
        )
        salp_subarrays = plugin.salp_subarrays(config, self.geometry)
        self.cell_arrays = []
        self.channels = []
        for ch in range(self.geometry.channels):
            cell_array = None
            if config.functional_cells:
                cell_array = CellArray(
                    self.geometry,
                    clock_mhz=self.timing.clock_mhz,
                    channel=ch,
                    retention=self.retention,
                )
            self.cell_arrays.append(cell_array)
            self.channels.append(
                DramChannel(
                    self.geometry,
                    self.timing,
                    salp_subarrays=salp_subarrays,
                    cell_array=cell_array,
                )
            )
        self.recorders = []
        if config.record_commands:
            from repro.validation import CommandRecorder

            for channel in self.channels:
                recorder = CommandRecorder()
                channel.recorder = recorder
                self.recorders.append(recorder)
        self.checkers = []
        if config.check:
            from repro.check import ProtocolChecker

            extended = self.timing.refresh_window_ms > config.refresh_window_ms
            ideal = plugin.assume_ideal_duplicates(config)
            for ch, channel in enumerate(self.channels):
                # Fresh invariant per channel: invariants carry mutable
                # shadow state, one checker each.
                invariant = plugin.checker_invariant(
                    config, self.geometry, self.timing
                )
                checker = ProtocolChecker(
                    self.geometry,
                    self.timing,
                    salp=salp_subarrays is not None,
                    expect_refresh=refresh_enabled,
                    extended_refresh=extended,
                    weak_rows=(
                        factory.weak_row_set(self.retention, self.geometry, ch)
                        if extended
                        else ()
                    ),
                    assume_ideal_duplicates=ideal,
                    invariants=() if invariant is None else (invariant,),
                    mode=config.check_mode,
                )
                factory.seed_checker_remaps(checker, self.mechanisms[ch])
                channel.checker = checker
                self.checkers.append(checker)
        self.events = _EventQueue()
        controller_config = plugin.controller_config(config, config.controller)
        self.controllers = [
            ChannelController(
                channel,
                mechanism=mechanism,
                scheduler=FrFcfsCap(controller_config.fr_fcfs_cap),
                config=controller_config,
                schedule_event=self.events.schedule,
                refresh_enabled=refresh_enabled,
            )
            for channel, mechanism in zip(self.channels, self.mechanisms)
        ]
        for controller in self.controllers:
            controller.next_wake = 0
        self.llc = _PeekableLlc(config.llc_config())
        self.vm = VirtualMemory(self.geometry.capacity_bytes, seed=config.seed)
        self.prefetchers = (
            [
                RptPrefetcher(degree=config.prefetch_degree)
                for _ in range(config.cores)
            ]
            if config.prefetcher
            else []
        )
        self.port = MemoryPort(self)
        self.cores = [
            Core(i, trace, self.port, config.core)
            for i, trace in enumerate(traces)
        ]
        self.energy_model = EnergyModel(
            self.timing, IddCurrents.lpddr4(config.density_gbit)
        )
        self.telemetry = None
        if config.telemetry:
            from repro.telemetry import SystemTelemetry

            self.telemetry = SystemTelemetry(
                self,
                epoch_cycles=config.telemetry_epoch_cycles,
                trace_capacity=config.telemetry_trace_capacity,
            )
        self._measure_start: int | None = None
        # Flat wake-source tuple for the _step() hot loop: the component
        # set is fixed after construction, so the per-step candidate list
        # is replaced by an allocation-free scan over this tuple.
        self._tickables: tuple = (*self.cores, *self.controllers)
        self.now = 0
        #: The simulation engine driving the phase loops. Built last: the
        #: batch engine compiles timing tables from the final (mechanism-
        #: adjusted) timing parameters.
        self.engine = factory.build_engine(config, self)

    def check_report(self, finalize: bool = True):
        """Merged conformance report across channels (requires check=True).

        With ``finalize`` the end-of-run whole-window checks (refresh
        coverage) run first, against the current cycle.
        """
        if not self.checkers:
            raise ConfigError("check_report() requires SystemConfig.check")
        from repro.check import CheckReport

        merged = CheckReport()
        for checker in self.checkers:
            if finalize:
                checker.finalize(self.now)
            merged.merge(checker.report)
        return merged

    def controller_for(self, address: int) -> ChannelController:
        """The channel controller owning ``address``."""
        return self.controllers[self.mapper.decode(address).channel]

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def _step(self) -> None:
        # Allocation-free min-wake scan. With at most a handful of cores
        # and controllers, an inline pass over the precomputed tuple beats
        # both the per-step list build it replaces and a lazily repaired
        # heap (whose invariant every MemoryPort callback would disturb).
        t = self.events.next_time()
        for component in self._tickables:
            wake = component.next_wake
            if wake < t:
                t = wake
        if t >= IDLE:
            raise ReproError(self._deadlock_message())
        now = self.now = max(self.now, t)
        self.events.run_until(now)
        for core in self.cores:
            if core.next_wake <= now:
                core.next_wake = core.tick(now)
        for controller in self.controllers:
            if controller.next_wake <= now:
                controller.next_wake = controller.tick(now)

    def _deadlock_message(self) -> str:
        """Diagnostic for a stuck simulation: every component's wake time."""
        waits = [f"event-queue={_fmt_wake(self.events.next_time())}"]
        waits.extend(
            f"core{core.core_id}={_fmt_wake(core.next_wake)}"
            for core in self.cores
        )
        waits.extend(
            f"controller{i}={_fmt_wake(ctrl.next_wake)}"
            for i, ctrl in enumerate(self.controllers)
        )
        return (
            f"simulation deadlock at cycle {self.now}: no component has "
            f"pending work ({', '.join(waits)})"
        )

    def prewarm(self, accesses_per_core: int) -> None:
        """Functionally warm the LLC (and page table) without timing.

        Pulls the first ``accesses_per_core`` records of every core's
        trace through translation and the LLC, round-robin. This stands in
        for the paper's 100M-instruction cache warm-up, which a Python
        cycle simulator cannot afford to execute in timed mode. The
        records consumed here simply become part of the (untimed) past.

        Delegates to the configured engine: the batch engine replaces
        the scalar record loop with a vectorized kernel leaving behind
        byte-identical LLC/page-table/RNG state.
        """
        self.engine.prewarm(accesses_per_core)

    def _prewarm_scalar(self, accesses_per_core: int) -> None:
        """The reference record-at-a-time warm loop (see :meth:`prewarm`)."""
        from itertools import chain, cycle, islice

        from repro.cpu.translation import ASID_SHIFT, PAGE_MASK, PAGE_SHIFT

        line_mask = ~(self.llc.config.line_bytes - 1)
        translate = self.vm.translate
        page_table = self.vm.page_table
        warm = self.llc.warm
        streams = [
            (core.core_id, core.core_id << ASID_SHIFT, core.trace)
            for core in self.cores
        ]
        # Records are pulled in chunks (C-level islice into a list) rather
        # than one next() per access: generator resumption dominates the
        # scalar loop. The warm() call order — strict round-robin across
        # cores by access index — is preserved exactly; it determines the
        # LLC's LRU state and therefore the run's telemetry digest.
        chunk = 8192
        remaining = accesses_per_core
        while remaining:
            n = min(chunk, remaining)
            remaining -= n
            # TraceStream exposes take() so its consumed count stays exact
            # without paying a Python-level __next__ per record here.
            batches = [
                take(n) if (take := getattr(trace, "take", None)) is not None
                else list(islice(trace, n))
                for _, _, trace in streams
            ]
            if not any(batches):
                break
            if len(batches) == 1:
                pairs = zip(cycle(streams), batches[0])
            elif all(len(batch) == n for batch in batches):
                pairs = zip(
                    cycle(streams), chain.from_iterable(zip(*batches))
                )
            else:
                # Ragged tail: some (finite) trace ran dry mid-chunk. The
                # scalar order skips exhausted streams and keeps going.
                pairs = (
                    (meta, batch[i])
                    for i in range(n)
                    for meta, batch in zip(streams, batches)
                    if i < len(batch)
                )
            for (core_id, asid_base, _), record in pairs:
                vaddr = record[1]    # TraceRecord.vaddr
                # Inlined page-table hit path (64 lines share a page, so
                # nearly every probe hits); misses take the allocating
                # translate() call.
                frame = page_table.get(asid_base | (vaddr >> PAGE_SHIFT))
                if frame is None:
                    line = translate(core_id, vaddr) & line_mask
                else:
                    line = (
                        (frame << PAGE_SHIFT) | (vaddr & PAGE_MASK)
                    ) & line_mask
                warm(line, record[2])    # TraceRecord.is_write
        self.llc.reset_stats()

    def run(
        self,
        instructions: int = 100_000,
        warmup_instructions: int = 20_000,
        max_cycles: int | None = None,
        prewarm_accesses: int = 200_000,
        warm_image: "str | Path | None" = None,
        checkpoint_path: "str | Path | None" = None,
        checkpoint_every: int = 50_000,
        snapshot_at_cycle: int | None = None,
        snapshot_path: "str | Path | None" = None,
    ) -> SimResult:
        """Warm up, measure, and return the result.

        Mirrors the paper's methodology (Section 7): caches are warmed
        (functionally via ``prewarm_accesses``, then in timed mode for
        ``warmup_instructions`` per core); then statistics reset and each
        core runs for ``instructions`` more; the simulation stops when
        every core has retired its measured quota.

        Snapshot hooks (all zero-cost when left at their defaults — the
        hot loop pays one ``is not None`` test per feature per step):

        - ``warm_image``: load a pre-built functional warm image
          (:meth:`save_warm_image`) instead of running ``prewarm``.
        - ``checkpoint_path`` / ``checkpoint_every``: periodically save a
          resumable checkpoint (:meth:`System.resume` continues it); the
          checkpoint is deleted when the run completes.
        - ``snapshot_at_cycle`` / ``snapshot_path``: save one resumable
          snapshot the first time the clock reaches the given cycle, and
          keep it (restore-equivalence testing).
        """
        if instructions < 1 or warmup_instructions < 0:
            raise ConfigError("invalid instruction counts")
        if checkpoint_path is not None and checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")
        if (snapshot_at_cycle is None) != (snapshot_path is None):
            raise ConfigError(
                "snapshot_at_cycle and snapshot_path must be given together"
            )
        # The generational GC costs ~25% of a run: the hot loops allocate
        # short-lived tuples (trace records, commands, events) fast enough
        # to trigger a gen-0 collection every few hundred steps, and each
        # collection also scans the long-lived simulator object graph.
        # Nothing the simulator allocates per-step forms reference cycles,
        # so collection is safely deferred until the run completes.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if warm_image is not None:
                self.load_warm_image(warm_image, prewarm_accesses)
            elif prewarm_accesses:
                self.prewarm(prewarm_accesses)
            return self._run_to_completion(
                instructions,
                warmup_instructions,
                max_cycles,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                snapshot_at_cycle=snapshot_at_cycle,
                snapshot_path=snapshot_path,
            )
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_to_completion(
        self,
        instructions: int,
        warmup_instructions: int,
        max_cycles: int | None,
        checkpoint_path: "str | Path | None" = None,
        checkpoint_every: int = 50_000,
        snapshot_at_cycle: int | None = None,
        snapshot_path: "str | Path | None" = None,
    ) -> SimResult:
        """Drive the timed loops from the current state to the result.

        Shared by fresh runs and resumed checkpoints: the phase is
        derived from the state itself (``_measure_start is None`` means
        the warm-up loop still has work), so restoring a checkpoint and
        calling this produces the exact step sequence of the original
        run. Snapshots are only ever taken *between* ``_step()`` calls,
        where every component invariant holds.

        With both snapshot features off the loops below are the exact
        seed hot loops — the feature test happens once out here, not per
        step, so disabled snapshotting is literally zero-cost (the
        perf-regression gate enforces this).
        """
        snapshotting = (
            checkpoint_path is not None or snapshot_at_cycle is not None
        )
        run_state = None
        next_checkpoint = 0
        if snapshotting:
            run_state = {
                "instructions": instructions,
                "warmup_instructions": warmup_instructions,
                "max_cycles": max_cycles,
                "checkpoint_every": (
                    checkpoint_every if checkpoint_path is not None else None
                ),
            }
        if checkpoint_path is not None:
            next_checkpoint = self.now + checkpoint_every
        if self._measure_start is None:
            if snapshotting:
                # Phase 1, instrumented: the shared _step() loop for every
                # engine, so checkpoint cadence (and therefore checkpoint
                # contents) is engine-invariant by construction.
                while any(
                    core.retired < warmup_instructions for core in self.cores
                ):
                    self._step()
                    if max_cycles is not None and self.now > max_cycles:
                        raise ReproError("warm-up exceeded max_cycles")
                    if (checkpoint_path is not None
                            and self.now >= next_checkpoint):
                        self.save_snapshot(
                            checkpoint_path, run_state=run_state
                        )
                        next_checkpoint = self.now + checkpoint_every
                    if (snapshot_at_cycle is not None
                            and self.now >= snapshot_at_cycle):
                        self.save_snapshot(
                            snapshot_path, run_state=run_state
                        )
                        snapshot_at_cycle = None
            else:
                # Phase 1, bare: the engine's warm-up driver.
                self.engine.run_warmup(warmup_instructions, max_cycles)
            self._begin_measurement(instructions)
        if snapshotting:
            # Phase 2, instrumented: checkpoint/snapshot between steps.
            while not all(core.done for core in self.cores):
                self._step()
                if max_cycles is not None and self.now > max_cycles:
                    raise ReproError("measurement exceeded max_cycles")
                if (checkpoint_path is not None
                        and self.now >= next_checkpoint):
                    self.save_snapshot(checkpoint_path, run_state=run_state)
                    next_checkpoint = self.now + checkpoint_every
                if (snapshot_at_cycle is not None
                        and self.now >= snapshot_at_cycle):
                    self.save_snapshot(snapshot_path, run_state=run_state)
                    snapshot_at_cycle = None
        else:
            # Phase 2, bare: the engine's measurement driver.
            self.engine.run_measured(max_cycles)
        result = self._collect(instructions)
        if checkpoint_path is not None:
            # The run completed: a leftover checkpoint would make a later
            # identical run resume from mid-flight state instead of
            # recomputing (correct but surprising) — remove it.
            Path(checkpoint_path).unlink(missing_ok=True)
        return result

    def _begin_measurement(self, instructions: int) -> None:
        self._measure_start = self.now
        for core in self.cores:
            core.begin_measurement(self.now, instructions)
        for controller in self.controllers:
            for key in controller.stats:
                controller.stats[key] = 0
        for channel in self.channels:
            for kind in list(channel.counts):
                channel.counts[kind] = 0
            for bank in channel.banks:
                bank.open_cycles_total = 0
                if hasattr(bank, "subarrays"):
                    for slot in bank.subarrays.values():
                        slot.open_cycles_total = 0
        self.llc.reset_stats()
        self.port.reset_stats()
        for mechanism in self.mechanisms:
            mechanism.reset_stats()
        for prefetcher in self.prefetchers:
            prefetcher.reset_stats()
        if self.telemetry is not None:
            # After the raw counters are zeroed, so epoch deltas and the
            # end-of-run harvest both cover exactly the measured region.
            self.telemetry.begin(self.now)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _collect(self, instructions: int) -> SimResult:
        assert self._measure_start is not None
        start = self._measure_start
        end = max(core.finish_cycle or self.now for core in self.cores)
        cycles = end - start
        energy = None
        # Per-config coefficients come from the estimator framework
        # (reference backend by default — byte-identical to the old
        # direct EnergyModel call); only the per-channel activity
        # aggregation runs per task.
        coefficients = channel_coefficients(
            self.timing, self.energy_model.currents
        )
        for channel in self.channels:
            activity = ChannelActivity.from_channel(channel, cycles, self.now)
            breakdown = breakdown_from_coefficients(coefficients, activity)
            energy = breakdown if energy is None else energy + breakdown
        mechanism_stats: dict[str, float] = {}
        for mechanism in self.mechanisms:
            for key, value in mechanism.stats().items():
                mechanism_stats[key] = mechanism_stats.get(key, 0.0) + value
        hit_rates = [
            mech.hit_rate() for mech in self.mechanisms if hasattr(mech, "hit_rate")
        ]
        controller_stats: dict[str, int] = {}
        for controller in self.controllers:
            for key, value in controller.stats.items():
                controller_stats[key] = controller_stats.get(key, 0) + value
        mpki = []
        for core in self.cores:
            instr = max(1, core.measured_instructions)
            mpki.append(
                1000.0 * self.port.demand_misses_per_core[core.core_id] / instr
            )
        return SimResult(
            mechanism=self.config.mechanism,
            cores=self.config.cores,
            cycles=cycles,
            clock_ratio=self.config.core.clock_ratio,
            core_ipcs=[core.ipc(self.now) for core in self.cores],
            core_mpki=mpki,
            llc_miss_rate=self.llc.miss_rate(),
            energy=energy,
            crow_hit_rate=(sum(hit_rates) / len(hit_rates)) if hit_rates else None,
            mechanism_stats=mechanism_stats,
            controller_stats=controller_stats,
            refresh_window_ms=self.timing.refresh_window_ms,
            telemetry=(
                self.telemetry.finalize(end, cycles)
                if self.telemetry is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def _snapshot_guard(self) -> None:
        """Reject configurations whose state cannot be serialized."""
        if self.config.functional_cells:
            raise SnapshotError(
                "functional cell arrays are not snapshot-serializable; "
                "run with functional_cells=False to checkpoint"
            )
        if self.config.record_commands:
            raise SnapshotError(
                "command recorders are not snapshot-serializable; run "
                "with record_commands=False to checkpoint"
            )
        for core in self.cores:
            if not isinstance(core.trace, TraceStream):
                raise SnapshotError(
                    f"core {core.core_id} trace has no provenance (got "
                    f"{type(core.trace).__name__}); snapshots need "
                    "repro.trace.TraceStream traces (run_workload/run_mix "
                    "build these automatically)"
                )

    def _callback_tag(self, callback) -> str | None:
        """Symbolic name for a request completion callback."""
        if callback is None:
            return None
        if callback == self.port._fill_done:
            return "fill"
        raise SnapshotError(
            f"unserializable request callback {callback!r}"
        )

    def _resolve_callback(self, tag: str | None):
        if tag is None:
            return None
        if tag == "fill":
            return self.port._fill_done
        raise SnapshotError(f"unknown request callback tag {tag!r}")

    def state_dict(self) -> dict:
        """Complete mutable simulation state as plain value data.

        In-flight ``_MemOp`` completions are encoded by *reference* when
        they alias a core's instruction window — ``("win", core, index)``
        — and by value otherwise (``"free"``: store completions, which
        never enter a window). In-flight ``MemRequest`` events encode as
        ``("req", state)`` with a symbolic callback tag, and the pending
        telemetry epoch sample as ``("epoch",)``. A request is never
        simultaneously queued in a controller and scheduled on the event
        heap, and an op is never on the heap and a waiter list at once,
        so these encodings cover every aliasing pattern that exists.
        """
        window_map: dict[int, tuple] = {}
        for core in self.cores:
            for index, entry in enumerate(core._window):
                if isinstance(entry, _MemOp):
                    window_map[id(entry)] = ("win", core.core_id, index)

        def encode_op(op: _MemOp) -> tuple:
            tagged = window_map.get(id(op))
            if tagged is not None:
                return tagged
            return (
                "free", op.core.core_id, op.is_store, op.counts_mshr,
                op.done,
            )

        def encode_request(request: MemRequest) -> dict:
            return request.state_dict(self._callback_tag(request.callback))

        def encode_event(fn) -> tuple:
            if isinstance(fn, _MemOp):
                return encode_op(fn)
            if isinstance(fn, MemRequest):
                return ("req", encode_request(fn))
            if self.telemetry is not None and fn == self.telemetry._on_epoch:
                return ("epoch",)
            raise SnapshotError(
                f"event heap holds an unserializable callback {fn!r}"
            )

        return {
            "now": self.now,
            "measure_start": self._measure_start,
            "cores": [core.state_dict() for core in self.cores],
            "channels": [channel.state_dict() for channel in self.channels],
            "controllers": [
                controller.state_dict(encode_request)
                for controller in self.controllers
            ],
            "controller_wakes": [c.next_wake for c in self.controllers],
            "llc": self.llc.state_dict(),
            "vm": self.vm.state_dict(),
            "prefetchers": [p.state_dict() for p in self.prefetchers],
            "port": self.port.state_dict(encode_op),
            "events": self.events.state_dict(encode_event),
            "telemetry": (
                self.telemetry.state_dict()
                if self.telemetry is not None
                else None
            ),
            "checkers": [checker.state_dict() for checker in self.checkers],
        }

    def load_state_dict(self, state: dict) -> None:
        """Overwrite this (freshly constructed) system's mutable state.

        Cores load first so the instruction windows exist before heap and
        waiter-list references into them are decoded.
        """
        self.now = state["now"]
        self._measure_start = state["measure_start"]
        for core, core_state in zip(self.cores, state["cores"]):
            core.load_state_dict(core_state)

        def decode_op(tag: tuple) -> _MemOp:
            if tag[0] == "win":
                return self.cores[tag[1]].window_op(tag[2])
            _, core_id, is_store, counts_mshr, done = tag
            op = _MemOp(self.cores[core_id], is_store=is_store)
            op.counts_mshr = counts_mshr
            op.done = done
            return op

        def decode_request(request_state: dict) -> MemRequest:
            return MemRequest.from_state_dict(
                request_state,
                self.mapper.decode(request_state["address"]),
                self._resolve_callback(request_state["callback"]),
            )

        def decode_event(tag: tuple):
            kind = tag[0]
            if kind in ("win", "free"):
                return decode_op(tag)
            if kind == "req":
                return decode_request(tag[1])
            if kind == "epoch":
                if self.telemetry is None:
                    raise SnapshotError(
                        "snapshot holds a telemetry epoch event but this "
                        "system has telemetry disabled"
                    )
                return self.telemetry._on_epoch
            raise SnapshotError(f"unknown event encoding {kind!r}")

        for channel, channel_state in zip(self.channels, state["channels"]):
            channel.load_state_dict(channel_state)
        for controller, controller_state, wake in zip(
            self.controllers, state["controllers"], state["controller_wakes"]
        ):
            controller.load_state_dict(controller_state, decode_request)
            controller.next_wake = wake
        self.llc.load_state_dict(state["llc"])
        self.vm.load_state_dict(state["vm"])
        for prefetcher, prefetcher_state in zip(
            self.prefetchers, state["prefetchers"]
        ):
            prefetcher.load_state_dict(prefetcher_state)
        self.port.load_state_dict(state["port"], decode_op)
        self.events.load_state_dict(state["events"], decode_event)
        if state["telemetry"] is not None:
            if self.telemetry is None:
                raise SnapshotError(
                    "snapshot holds telemetry state but this system has "
                    "telemetry disabled"
                )
            self.telemetry.load_state_dict(state["telemetry"])
        for checker, checker_state in zip(self.checkers, state["checkers"]):
            checker.load_state_dict(checker_state)

    def save_snapshot(
        self, path: "str | Path", run_state: dict | None = None
    ) -> None:
        """Write a full, versioned, digest-stamped snapshot of this system.

        ``run_state`` (the loop parameters of an in-flight :meth:`run`)
        makes the snapshot *resumable*: :meth:`resume` continues it to a
        result whose telemetry digest is byte-identical to the
        uninterrupted run's.
        """
        self._snapshot_guard()
        from repro.sim.campaign import config_digest
        from repro.snapshot.container import write_snapshot

        header = {
            "kind": "full",
            "config_digest": config_digest(self.config),
            "mechanism": self.config.mechanism,
            "cores": self.config.cores,
            "cycle": self.now,
            "phase": "warmup" if self._measure_start is None else "measure",
            "workloads": [core.trace.workload_name for core in self.cores],
            "seeds": [core.trace.seed for core in self.cores],
            "resumable": run_state is not None,
        }
        payload = {
            "config": self.config,
            "state": self.state_dict(),
            "run": run_state,
        }
        write_snapshot(path, header, payload)

    @classmethod
    def _restore_with_run(
        cls,
        path: "str | Path",
        config: SystemConfig | None = None,
        engine: str | None = None,
    ) -> "tuple[System, dict | None]":
        from repro.sim.campaign import config_digest
        from repro.snapshot.container import read_snapshot

        header, payload = read_snapshot(path)
        if header.get("kind") != "full":
            raise SnapshotError(
                f"{path}: expected a full snapshot, got kind "
                f"{header.get('kind')!r} (warm images restore via "
                "load_warm_image)"
            )
        saved_config = payload["config"]
        if engine is not None:
            # Cross-engine restore: the engine is excluded from config
            # digests, so a snapshot taken under either engine resumes
            # under either. replace() only reads fields *not* being
            # overridden off the old instance, so configs pickled before
            # the engine field existed restore cleanly too.
            saved_config = dataclasses.replace(saved_config, engine=engine)
        if config is not None:
            expected = config_digest(config)
            if expected != header["config_digest"]:
                raise ConfigError(
                    f"snapshot {path} was taken under config digest "
                    f"{header['config_digest']} (mechanism "
                    f"{header.get('mechanism')!r}) but restore expected "
                    f"digest {expected} (mechanism {config.mechanism!r})"
                )
        state = payload["state"]
        traces = [
            TraceStream(
                core_state["trace"]["workload"], core_state["trace"]["seed"]
            )
            for core_state in state["cores"]
        ]
        system = cls(saved_config, traces)
        system.load_state_dict(state)
        return system, payload.get("run")

    @classmethod
    def restore(
        cls,
        path: "str | Path",
        config: SystemConfig | None = None,
        engine: str | None = None,
    ) -> "System":
        """Rebuild a system from a full snapshot.

        Construction re-runs deterministically from the embedded config
        (geometry, retention profiling, boot-time remaps), then the saved
        state overwrites everything mutable. Passing ``config`` asserts
        the snapshot is compatible with it (:class:`ConfigError` if not).
        ``engine`` overrides the saved config's engine choice — digests
        are engine-invariant, so any snapshot restores under any engine.
        """
        system, _ = cls._restore_with_run(path, config, engine=engine)
        return system

    @classmethod
    def resume(
        cls,
        path: "str | Path",
        checkpoint_every: int | None = None,
        engine: str | None = None,
    ) -> SimResult:
        """Continue a checkpointed run to completion.

        The snapshot must have been written by a checkpointing
        :meth:`run` (it carries the loop parameters). Checkpointing
        continues into the same file — at the saved cadence, or at
        ``checkpoint_every`` if given — and the file is removed when the
        run completes. ``engine`` optionally switches the engine the
        continuation runs on (the result is engine-invariant).
        """
        system, run_state = cls._restore_with_run(path, engine=engine)
        if run_state is None:
            raise SnapshotError(
                f"{path}: snapshot carries no run state and cannot be "
                "resumed (it was saved outside a checkpointing run)"
            )
        if checkpoint_every is None:
            checkpoint_every = run_state.get("checkpoint_every")
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return system._run_to_completion(
                run_state["instructions"],
                run_state["warmup_instructions"],
                run_state["max_cycles"],
                checkpoint_path=path if checkpoint_every else None,
                checkpoint_every=checkpoint_every or 50_000,
            )
        finally:
            if gc_was_enabled:
                gc.enable()

    # -- warm-state forking ---------------------------------------------
    def save_warm_image(
        self, path: "str | Path", prewarm_accesses: int | None = None
    ) -> None:
        """Persist the functional pre-warm state (LLC, VM, trace cursors).

        Must be called right after :meth:`prewarm`, before any timed
        stepping — warm images deliberately omit timing/mechanism state
        so one image can seed every mechanism variant that shares the
        same :func:`repro.snapshot.warmup_digest`.
        """
        self._snapshot_guard()
        if self.now != 0 or self._measure_start is not None:
            raise SnapshotError(
                "warm images must be saved before timed simulation starts"
            )
        from repro.snapshot.container import write_snapshot
        from repro.snapshot.warm import warmup_digest

        header = {
            "kind": "warm",
            "warmup_digest": warmup_digest(self.config),
            "cores": self.config.cores,
            "workloads": [core.trace.workload_name for core in self.cores],
            "seeds": [core.trace.seed for core in self.cores],
            "prewarm_accesses": prewarm_accesses,
        }
        payload = {
            "llc": self.llc.state_dict(),
            "vm": self.vm.state_dict(),
            "traces": [core.trace.state_dict() for core in self.cores],
        }
        write_snapshot(path, header, payload)

    def load_warm_image(
        self, path: "str | Path", prewarm_accesses: int | None = None
    ) -> None:
        """Adopt a pre-built warm image instead of running ``prewarm``.

        Compatibility is enforced twice: the warm digest must match this
        system's configuration, and each trace stream validates its own
        workload/seed identity when the cursor state loads. Both
        mismatches raise :class:`ConfigError`.
        """
        self._snapshot_guard()
        if self.now != 0 or self._measure_start is not None:
            raise SnapshotError(
                "warm images must be loaded before timed simulation starts"
            )
        from repro.snapshot.container import read_snapshot
        from repro.snapshot.warm import warmup_digest

        header, payload = read_snapshot(path)
        if header.get("kind") != "warm":
            raise SnapshotError(
                f"{path}: expected a warm image, got kind "
                f"{header.get('kind')!r}"
            )
        expected = warmup_digest(self.config)
        if header["warmup_digest"] != expected:
            raise ConfigError(
                f"warm image {path} is incompatible with this "
                f"configuration (warm digest {header['warmup_digest']} != "
                f"{expected}); rebuild the image or align the shared "
                "config prefix (cores, seed, LLC, geometry)"
            )
        saved_accesses = header.get("prewarm_accesses")
        if (
            prewarm_accesses is not None
            and saved_accesses is not None
            and saved_accesses != prewarm_accesses
        ):
            raise ConfigError(
                f"warm image {path} was built with "
                f"{saved_accesses} pre-warm accesses per core, but this "
                f"run expects {prewarm_accesses}"
            )
        self.llc.load_state_dict(payload["llc"])
        self.vm.load_state_dict(payload["vm"])
        for core, trace_state in zip(self.cores, payload["traces"]):
            core.trace.load_state_dict(trace_state)


class _PeekableLlc(Llc):
    """LLC extended with a no-mutation victim probe (stall decisions)."""

    def peek_victim(self, address: int) -> int | None:
        """Dirty-victim address a fill would evict (no mutation)."""
        entries, _tag = self._locate(address)
        if len(entries) < self.config.ways:
            return None
        victim_tag = next(iter(entries))  # LRU sits first in the set dict
        if not entries[victim_tag][0]:
            return None
        set_index = (
            address >> self._offset_bits
        ) & self._index_mask
        victim_line = (victim_tag << self._index_bits) | set_index
        return victim_line << self._offset_bits
