"""Channel-component construction shared by System and ProbeSession.

:class:`~repro.sim.system.System` and the raw probing host in
:mod:`repro.probe` must build *identical* device-side stacks from one
:class:`~repro.sim.config.SystemConfig` — same resolved geometry, same
base and CROW timing parameters, same retention model, same mechanism
(whose boot-time work, e.g. CROW-ref weak-row remapping, defines the
device's power-on state), and same shadow-checker seeding. These helpers
are that single construction path, factored out of ``System.__init__``
so the probe session cannot drift from the simulator proper.
"""

from __future__ import annotations

from repro.controller.mechanism import Mechanism
from repro.circuit import derive_crow_timing_factors
from repro.dram import CrowTimings, RetentionModel, TimingParameters
from repro.dram.geometry import DramGeometry
from repro.mech import BuildContext, get_plugin
from repro.sim.config import SystemConfig

__all__ = [
    "base_timing",
    "build_crow_timings",
    "build_retention",
    "retention_model",
    "build_mechanism",
    "build_engine",
    "final_timing",
    "weak_row_set",
    "seed_checker_remaps",
]


def build_engine(config: SystemConfig, system):
    """The simulation engine ``config`` selects, bound to ``system``.

    ``getattr`` default: configs pickled before the engine field existed
    (old snapshots, campaign queues) run on the reference engine.
    """
    from repro.engine import get_engine

    return get_engine(getattr(config, "engine", "event"))(system)


def base_timing(config: SystemConfig) -> TimingParameters:
    """The LPDDR4 timing set the config's density/refresh window implies."""
    return TimingParameters.lpddr4(
        density_gbit=config.density_gbit,
        refresh_window_ms=config.refresh_window_ms,
    )


def build_crow_timings(
    config: SystemConfig,
    geometry: DramGeometry,
    timing: TimingParameters,
) -> CrowTimings | None:
    """CROW activation timings, or ``None`` without copy rows."""
    if not geometry.copy_rows_per_subarray:
        return None
    factors = (
        derive_crow_timing_factors()
        if config.use_derived_circuit_factors
        else None
    )
    return CrowTimings.from_factors(timing, factors)


def build_retention(
    config: SystemConfig, geometry: DramGeometry
) -> RetentionModel | None:
    """The retention model the *mechanism* consumes (CROW-ref family)."""
    if not get_plugin(config.mechanism).needs_retention(config):
        return None
    return retention_model(config, geometry)


def retention_model(
    config: SystemConfig, geometry: DramGeometry
) -> RetentionModel:
    """The config's weak-row oracle, independent of mechanism choice.

    Cell physics does not depend on what the controller does about it:
    the probe session builds this unconditionally to model retention
    failures on any device, while :func:`build_retention` gates it to
    the mechanisms that actually remap weak rows.
    """
    return RetentionModel(
        geometry,
        target_interval_ms=config.target_refresh_window_ms,
        weak_rows_per_subarray=config.weak_rows_per_subarray,
        seed=config.seed,
    )


def build_mechanism(
    config: SystemConfig,
    geometry: DramGeometry,
    timing: TimingParameters,
    crow_timings: CrowTimings | None,
    retention: RetentionModel | None,
    channel: int,
) -> Mechanism:
    """The per-channel mechanism ``config`` describes (boot work included).

    Construction is delegated to the registered
    :class:`~repro.mech.MechanismPlugin` — this helper only assembles the
    :class:`~repro.mech.BuildContext` so both the simulator proper and
    the probe session hand plugins identical inputs.
    """
    return get_plugin(config.mechanism).build(
        BuildContext(
            config=config,
            geometry=geometry,
            timing=timing,
            crow_timings=crow_timings,
            retention=retention,
            channel=channel,
        )
    )


def final_timing(
    base: TimingParameters, mechanisms: "list[Mechanism]"
) -> TimingParameters:
    """Apply the refresh window the mechanisms achieved (CROW-ref)."""
    windows = [
        mech.achieved_refresh_window_ms
        for mech in mechanisms
        if hasattr(mech, "achieved_refresh_window_ms")
    ]
    if not windows:
        return base
    return base.with_refresh_window(min(windows))


def weak_row_set(
    retention: RetentionModel | None,
    geometry: DramGeometry,
    channel: int,
) -> set[tuple[int, int]]:
    """Retention-weak regular rows of one channel as ``(bank, row)``."""
    weak: set[tuple[int, int]] = set()
    if retention is None:
        return weak
    rows_per_subarray = geometry.rows_per_subarray
    for bank in range(geometry.banks_per_channel):
        for subarray in range(geometry.subarrays_per_bank):
            for index in retention.weak_regular_rows(channel, bank, subarray):
                weak.add((bank, subarray * rows_per_subarray + index))
    return weak


def seed_checker_remaps(checker, mechanism: Mechanism) -> None:
    """Register boot-time weak-row remaps (CROW-ref / RowHammer) so the
    checker accepts plain activations of the serving copy rows."""
    components = (
        mechanism,
        getattr(mechanism, "ref", None),
        getattr(mechanism, "hammer", None),
    )
    for component in components:
        remap = getattr(component, "remap", None)
        if isinstance(remap, dict):
            for (bank, bank_row), copy in remap.items():
                checker.seed_remap(bank, bank_row, copy)
