"""Full-system simulation: configuration, wiring, runner, metrics."""

from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.sim.metrics import SimResult, weighted_speedup
from repro.sim.sweep import (
    run_workload,
    run_mix,
    alone_ipcs,
    derive_trace_seed,
)
from repro.sim.campaign import Campaign

__all__ = [
    "SystemConfig",
    "System",
    "SimResult",
    "weighted_speedup",
    "run_workload",
    "run_mix",
    "alone_ipcs",
    "derive_trace_seed",
    "Campaign",
]
