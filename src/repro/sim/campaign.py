"""Disk-cached experiment campaigns.

Figure-level studies re-run many (configuration, workload) pairs, and the
baseline runs repeat across figures. :class:`Campaign` memoizes
:func:`~repro.sim.sweep.run_workload` / :func:`~repro.sim.sweep.run_mix`
results on disk, keyed by a stable digest of the configuration, the
workload names, the seeds and the run lengths — so iterating on an
experiment script only pays for the runs whose inputs actually changed.

Every simulation in this package is deterministic given its inputs, which
is what makes result caching sound.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
from pathlib import Path

from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.sweep import run_mix, run_workload
from repro.errors import ConfigError

__all__ = ["Campaign"]

#: Bump when a change invalidates previously-cached results.
CACHE_VERSION = 1


def _jsonable(value):
    """A stable, identity-free JSON projection of a config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "__dict__"):
        return {
            name: _jsonable(attr)
            for name, attr in sorted(vars(value).items())
        }
    return repr(value)


def _config_digest(config: SystemConfig) -> str:
    payload = {"version": CACHE_VERSION, "config": _jsonable(config)}
    encoded = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(encoded.encode()).hexdigest()[:20]


class Campaign:
    """A directory-backed cache of simulation results."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _key(
        self,
        kind: str,
        names: tuple[str, ...],
        config: SystemConfig,
        instructions: int,
        warmup: int,
        seed: int,
    ) -> Path:
        digest = hashlib.sha256(
            json.dumps(
                [kind, names, _config_digest(config), instructions, warmup,
                 seed],
                sort_keys=True,
            ).encode()
        ).hexdigest()[:24]
        return self.directory / f"{kind}-{'_'.join(names)[:48]}-{digest}.pkl"

    def _load_or_run(self, path: Path, runner) -> SimResult:
        if path.is_file():
            with path.open("rb") as handle:
                result = pickle.load(handle)
            if isinstance(result, SimResult):
                self.hits += 1
                return result
        result = runner()
        if not isinstance(result, SimResult):
            raise ConfigError("runner must produce a SimResult")
        with path.open("wb") as handle:
            pickle.dump(result, handle)
        self.misses += 1
        return result

    def run_workload(
        self,
        name: str,
        config: SystemConfig | None = None,
        instructions: int = 60_000,
        warmup_instructions: int = 30_000,
        seed: int = 0,
    ) -> SimResult:
        """Cached single-core run (same semantics as sweep.run_workload)."""
        config = config if config is not None else SystemConfig()
        path = self._key(
            "wl", (name,), config, instructions, warmup_instructions, seed
        )
        return self._load_or_run(
            path,
            lambda: run_workload(
                name,
                config,
                instructions=instructions,
                warmup_instructions=warmup_instructions,
                seed=seed,
            ),
        )

    def run_mix(
        self,
        names: list[str],
        config: SystemConfig | None = None,
        instructions: int = 40_000,
        warmup_instructions: int = 20_000,
        seed: int = 0,
    ) -> SimResult:
        """Cached multi-core mix run (same semantics as sweep.run_mix)."""
        config = config if config is not None else SystemConfig()
        path = self._key(
            "mix", tuple(names), config, instructions, warmup_instructions,
            seed,
        )
        return self._load_or_run(
            path,
            lambda: run_mix(
                names,
                config,
                instructions=instructions,
                warmup_instructions=warmup_instructions,
                seed=seed,
            ),
        )

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        for file in self.directory.glob("*.pkl"):
            file.unlink()
            removed += 1
        return removed
