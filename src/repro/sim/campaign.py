"""Disk-cached experiment campaigns.

Figure-level studies re-run many (configuration, workload) pairs, and the
baseline runs repeat across figures. :class:`Campaign` memoizes
:func:`~repro.sim.sweep.run_workload` / :func:`~repro.sim.sweep.run_mix`
results on disk, keyed by a stable digest of the configuration, the
workload names, the seeds and the run lengths — so iterating on an
experiment script only pays for the runs whose inputs actually changed.

Every simulation in this package is deterministic given its inputs, which
is what makes result caching sound.

The keying helpers (:func:`config_digest`, :func:`task_digest`,
:func:`cache_filename`) are module-level and process-stable on purpose:
:mod:`repro.exec` reuses them so a parallel campaign addresses exactly the
same cache entries as a serial one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import socket
import time
from pathlib import Path

from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.sweep import run_mix, run_workload
from repro.errors import ConfigError

# The projection lives in :mod:`repro.keying` so the estimator record
# cache keys values identically; the underscore alias is the historical
# import point for tests and older callers.
from repro.keying import jsonable as _jsonable

__all__ = [
    "Campaign",
    "config_digest",
    "task_digest",
    "cache_filename",
]

#: Bump when a change invalidates previously-cached results.
#: v2: identity-free projection rejects address-bearing ``repr`` fallbacks
#: and tags ``__dict__`` projections with the class name.
CACHE_VERSION = 2




def config_digest(config: SystemConfig) -> str:
    """Process-stable digest of a :class:`SystemConfig`.

    The ``engine`` field is excluded: both engines produce byte-identical
    results, so cached campaign entries, warm images and snapshots are
    valid across engines (and configs predating the field keep their
    digests).
    """
    projection = _jsonable(config)
    projection.pop("engine", None)
    payload = {"version": CACHE_VERSION, "config": projection}
    encoded = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(encoded.encode()).hexdigest()[:20]


#: Backwards-compatible alias (tests and older callers import the
#: underscore name).
_config_digest = config_digest


def task_digest(
    kind: str,
    names: tuple[str, ...],
    config: SystemConfig,
    instructions: int,
    warmup_instructions: int,
    seed: int,
) -> str:
    """Digest identifying one (kind, workloads, config, lengths, seed) run."""
    return hashlib.sha256(
        json.dumps(
            [kind, list(names), config_digest(config), instructions,
             warmup_instructions, seed],
            sort_keys=True,
        ).encode()
    ).hexdigest()[:24]


def cache_filename(
    kind: str,
    names: tuple[str, ...],
    config: SystemConfig,
    instructions: int,
    warmup_instructions: int,
    seed: int,
) -> str:
    """The cache file name a run of these inputs is stored under."""
    digest = task_digest(
        kind, names, config, instructions, warmup_instructions, seed
    )
    return f"{kind}-{'_'.join(names)[:48]}-{digest}.pkl"


class Campaign:
    """A directory-backed cache of simulation results."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(
        self,
        kind: str,
        names: tuple[str, ...],
        config: SystemConfig,
        instructions: int,
        warmup_instructions: int,
        seed: int,
    ) -> Path:
        """Cache file path for one run (shared with ParallelCampaign)."""
        return self.directory / cache_filename(
            kind, tuple(names), config, instructions, warmup_instructions,
            seed,
        )

    def load_cached(
        self, path: Path, expected: type = SimResult
    ) -> SimResult | None:
        """Return the cached result at ``path``, or ``None`` on a miss.

        Unreadable entries (torn writes from a killed process, stale
        pickles referencing renamed classes) and entries of the wrong
        type count as misses: the bad file is removed so the slot can be
        rewritten cleanly. ``expected`` is the result type the caller's
        task family produces (:class:`SimResult` for simulations; probe
        campaigns cache their own result type).
        """
        if not path.is_file():
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except Exception:
            path.unlink(missing_ok=True)
            return None
        if not isinstance(result, expected):
            path.unlink(missing_ok=True)
            return None
        return result

    def store(
        self, path: Path, result: SimResult, expected: type = SimResult
    ) -> None:
        """Atomically persist ``result`` at ``path``.

        The pickle is written to a process-unique sibling and moved into
        place with :func:`os.replace`, so a killed writer can never leave
        a torn file behind and concurrent writers of the same (identical,
        deterministic) result cannot interleave.
        """
        if not isinstance(result, expected):
            raise ConfigError(
                f"runner must produce a {expected.__name__}"
            )
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(result, handle)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def _load_or_run(self, path: Path, runner) -> SimResult:
        cached = self.load_cached(path)
        if cached is not None:
            self.hits += 1
            return cached
        result = runner()
        self.store(path, result)
        self.misses += 1
        return result

    def run_workload(
        self,
        name: str,
        config: SystemConfig | None = None,
        instructions: int = 60_000,
        warmup_instructions: int = 30_000,
        seed: int = 0,
    ) -> SimResult:
        """Cached single-core run (same semantics as sweep.run_workload)."""
        config = config if config is not None else SystemConfig()
        path = self.path_for(
            "wl", (name,), config, instructions, warmup_instructions, seed
        )
        return self._load_or_run(
            path,
            lambda: run_workload(
                name,
                config,
                instructions=instructions,
                warmup_instructions=warmup_instructions,
                seed=seed,
            ),
        )

    def run_mix(
        self,
        names: list[str],
        config: SystemConfig | None = None,
        instructions: int = 40_000,
        warmup_instructions: int = 20_000,
        seed: int = 0,
    ) -> SimResult:
        """Cached multi-core mix run (same semantics as sweep.run_mix)."""
        config = config if config is not None else SystemConfig()
        path = self.path_for(
            "mix", tuple(names), config, instructions, warmup_instructions,
            seed,
        )
        return self._load_or_run(
            path,
            lambda: run_mix(
                names,
                config,
                instructions=instructions,
                warmup_instructions=warmup_instructions,
                seed=seed,
            ),
        )

    # -- single-flight claims -------------------------------------------

    @staticmethod
    def claim_path(path: Path) -> Path:
        """The advisory claim file guarding one cache entry."""
        return path.with_name(path.name + ".claim")

    def try_claim(self, path: Path, stale_s: float = 3600.0) -> bool:
        """Atomically claim the right to compute the entry at ``path``.

        Cache *writes* are already race-free (tmp + ``os.replace``), but
        two processes missing the same entry would both simulate it.
        The claim file is the advisory dedup: it is created with
        ``O_CREAT | O_EXCL`` (atomic on POSIX and network filesystems
        that matter here) and records who holds it. Returns ``True`` if
        this process now holds the claim and should run the task;
        ``False`` if a live foreign claim exists — the caller should
        wait for the result to appear instead of computing it.

        Stale claims — older than ``stale_s`` seconds, unreadable, or
        held by a dead process on this host — are broken and re-taken.
        """
        claim = self.claim_path(path)
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "time": time.time(),
            },
            sort_keys=True,
        )
        for _ in range(2):  # second pass after breaking a stale claim
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not self._claim_stale(claim, stale_s):
                    return False
                claim.unlink(missing_ok=True)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            return True
        return False

    def release_claim(self, path: Path) -> None:
        """Drop the claim on ``path`` (idempotent)."""
        self.claim_path(path).unlink(missing_ok=True)

    def claim_holder(self, path: Path) -> "dict | None":
        """The recorded holder of the claim on ``path``, if readable."""
        return self._read_claim(self.claim_path(path))

    @staticmethod
    def _read_claim(claim: Path) -> "dict | None":
        try:
            holder = json.loads(claim.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return holder if isinstance(holder, dict) else None

    def _claim_stale(self, claim: Path, stale_s: float) -> bool:
        try:
            age = time.time() - claim.stat().st_mtime
        except OSError:
            return False  # vanished: the holder released it already
        if age > stale_s:
            return True
        holder = self._read_claim(claim)
        if holder is None:
            # Torn or unreadable claim: break it only once it has had
            # ample time to finish being written.
            return age > 5.0
        if (
            holder.get("host") == socket.gethostname()
            and isinstance(holder.get("pid"), int)
        ):
            try:
                os.kill(holder["pid"], 0)
            except ProcessLookupError:
                return True  # same host, holder process is gone
            except PermissionError:
                pass  # alive but not ours
        return False

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        for file in self.directory.glob("*.pkl"):
            file.unlink()
            removed += 1
        return removed
