"""Simulation results and metrics (IPC, weighted speedup, energy)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.model import EnergyBreakdown
from repro.errors import ConfigError

__all__ = ["SimResult", "weighted_speedup"]


@dataclass(frozen=True)
class SimResult:
    """Everything measured over the post-warm-up region of one run."""

    mechanism: str
    cores: int
    cycles: int                    # memory-clock cycles of the measured region
    clock_ratio: float             # CPU cycles per memory cycle
    core_ipcs: list[float]         # per-core IPC in CPU cycles
    core_mpki: list[float]         # per-core LLC misses per kilo-instruction
    llc_miss_rate: float
    energy: EnergyBreakdown | None
    crow_hit_rate: float | None
    mechanism_stats: dict[str, float] = field(default_factory=dict)
    controller_stats: dict[str, int] = field(default_factory=dict)
    refresh_window_ms: float = 64.0
    #: Full telemetry-registry export (``SystemConfig(telemetry=True)``
    #: runs only); a plain deterministic dict — see :mod:`repro.telemetry`.
    telemetry: "dict | None" = None

    @property
    def ipc(self) -> float:
        """Single-core IPC (raises for multi-core results)."""
        if self.cores != 1:
            raise ConfigError("ipc is a single-core metric; use core_ipcs")
        return self.core_ipcs[0]

    @property
    def ipc_sum(self) -> float:
        """Sum of per-core IPCs (multiprogrammed throughput)."""
        return sum(self.core_ipcs)

    @property
    def total_energy_nj(self) -> float:
        """Total DRAM energy over the measured region."""
        return self.energy.total_nj if self.energy is not None else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """Single-core speedup, or IPC-throughput ratio for multi-core."""
        if self.cores == 1 and baseline.cores == 1:
            return self.ipc / baseline.ipc
        return self.ipc_sum / baseline.ipc_sum

    def weighted_speedup(self, alone_ipcs: list[float]) -> float:
        """Sum of per-core IPC slowdowns versus running alone [104]."""
        return weighted_speedup(self.core_ipcs, alone_ipcs)

    def energy_ratio(self, baseline: "SimResult") -> float:
        """DRAM energy normalized to a baseline run."""
        if self.energy is None or baseline.energy is None:
            raise ConfigError("both results need energy accounting")
        return self.energy.total_nj / baseline.energy.total_nj

    def telemetry_digest(self) -> "str | None":
        """Content digest of the telemetry export (None when disabled).

        Deterministic: identical (config, seed) runs produce identical
        digests, which is how journals fingerprint a task's telemetry.
        """
        if self.telemetry is None:
            return None
        from repro.telemetry import export_digest

        return export_digest(self.telemetry)


def weighted_speedup(shared_ipcs: list[float], alone_ipcs: list[float]) -> float:
    """The multiprogrammed weighted-speedup metric (Section 7, [104])."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ConfigError("IPC lists must have the same length")
    if any(ipc <= 0 for ipc in alone_ipcs):
        raise ConfigError("alone IPCs must be positive")
    return sum(s / a for s, a in zip(shared_ipcs, alone_ipcs))
