"""Experiment helpers: run one workload or one mix under a configuration.

These wrap the System construction + run boilerplate the benchmark harness
uses; every figure script is "build config grid -> run_workload / run_mix
-> print the paper-style table".
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.sim.config import SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.system import System
from repro.trace.stream import TraceStream
from repro.trace.workloads import Workload, workload as lookup_workload

__all__ = ["run_workload", "run_mix", "alone_ipcs", "derive_trace_seed"]


def _resolve(w: "Workload | str") -> Workload:
    return lookup_workload(w) if isinstance(w, str) else w


def _stream(w: "Workload | str", seed: int) -> TraceStream:
    """A provenance-carrying trace stream for one workload (snapshot-ready)."""
    resolved = _resolve(w)
    return TraceStream(
        getattr(resolved, "name", str(w)), seed,
        _iterator=resolved.trace(seed),
    )


def derive_trace_seed(seed: int, core: int) -> int:
    """Per-core trace seed for multiprogrammed runs.

    Hash-derived so that distinct ``(seed, core)`` pairs can never collide
    (the historical ``seed * 16 + core`` scheme aliased e.g. ``(0, 16)``
    with ``(1, 0)``), and process-stable (no salted ``hash()``) so cache
    keys and parallel workers agree with serial runs.
    """
    payload = f"{seed}:{core}".encode()
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big"
    )


def run_workload(
    w: "Workload | str",
    config: SystemConfig | None = None,
    instructions: int = 60_000,
    warmup_instructions: int = 30_000,
    seed: int = 0,
    warm_image=None,
    checkpoint_path=None,
    checkpoint_every: int = 50_000,
    snapshot_at_cycle: "int | None" = None,
    snapshot_path=None,
) -> SimResult:
    """Run one workload on a single-core system.

    The snapshot keywords pass straight through to
    :meth:`repro.sim.system.System.run` (warm-image adoption, periodic
    resumable checkpoints, one-shot snapshots); all default to off.
    """
    config = config if config is not None else SystemConfig()
    config = replace(config, cores=1)
    system = System(config, [_stream(w, seed)])
    return system.run(
        instructions,
        warmup_instructions,
        warm_image=warm_image,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        snapshot_at_cycle=snapshot_at_cycle,
        snapshot_path=snapshot_path,
    )


def run_mix(
    mix: "list[Workload | str]",
    config: SystemConfig | None = None,
    instructions: int = 40_000,
    warmup_instructions: int = 20_000,
    seed: int = 0,
    warm_image=None,
    checkpoint_path=None,
    checkpoint_every: int = 50_000,
    snapshot_at_cycle: "int | None" = None,
    snapshot_path=None,
) -> SimResult:
    """Run a multiprogrammed mix (one workload per core)."""
    config = config if config is not None else SystemConfig()
    config = replace(config, cores=len(mix))
    traces = [
        _stream(w, derive_trace_seed(seed, i)) for i, w in enumerate(mix)
    ]
    system = System(config, traces)
    return system.run(
        instructions,
        warmup_instructions,
        warm_image=warm_image,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        snapshot_at_cycle=snapshot_at_cycle,
        snapshot_path=snapshot_path,
    )


def alone_ipcs(
    mix: "list[Workload | str]",
    config: SystemConfig | None = None,
    instructions: int = 40_000,
    warmup_instructions: int = 20_000,
    seed: int = 0,
) -> list[float]:
    """Per-workload IPC when run alone (weighted-speedup denominators)."""
    results = []
    for i, w in enumerate(mix):
        result = run_workload(
            w,
            config=config,
            instructions=instructions,
            warmup_instructions=warmup_instructions,
            seed=derive_trace_seed(seed, i),
        )
        results.append(result.ipc)
    return results
