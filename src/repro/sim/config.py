"""System configuration (paper Table 2 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.controller.controller import ControllerConfig
from repro.cpu.cache import CacheConfig
from repro.cpu.core import CoreConfig
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigError
from repro.mech import get_plugin, mechanism_names
from repro.units import MIB

__all__ = ["SystemConfig", "MECHANISMS"]

#: Mechanism names accepted by :class:`SystemConfig` — a snapshot of the
#: plugin registry (``repro.mech``) at import time, kept for seeded
#: samplers and back-compat. The registry is the source of truth; the
#: twelve pre-plugin names come first, in their historical order.
MECHANISMS = mechanism_names()


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`repro.sim.system.System`."""

    cores: int = 1
    mechanism: str = "baseline"
    # --- memory organization -----------------------------------------
    geometry: DramGeometry = field(default_factory=DramGeometry)
    density_gbit: int = 8
    refresh_window_ms: float = 64.0
    refresh_enabled: bool = True
    # --- CROW substrate ------------------------------------------------
    copy_rows: int = 8
    use_derived_circuit_factors: bool = False
    allow_partial_restore: bool = True
    reduced_twr: bool = True
    act_c_early_termination: bool = True
    #: 'bypass' (skip caching when all ways are partial) or 'restore'
    #: (the paper's Section 4.1.4 restore-before-evict protocol).
    evict_partial: str = "bypass"
    subarray_group_size: int = 1
    # --- CROW-ref ------------------------------------------------------
    target_refresh_window_ms: float = 128.0
    weak_rows_per_subarray: int | None = 3
    # --- RowHammer -----------------------------------------------------
    hammer_threshold: int = 2000
    # --- baselines -----------------------------------------------------
    tldram_near_rows: int = 8
    salp_subarrays_per_bank: int = 128
    salp_open_page: bool = True
    # --- related-work plugins (repro.mech) -----------------------------
    #: CnC-PRAC per-row activation-count alert threshold.
    prac_threshold: int = 512
    #: CnC-PRAC mitigation blast radius (neighbours per side).
    prac_blast_radius: int = 1
    #: CLR-DRAM full-latency activations before a row couples its pair.
    clr_promote_threshold: int = 4
    # --- processor side --------------------------------------------------
    llc_size_bytes: int = 8 * MIB
    prefetcher: bool = False
    prefetch_degree: int = 2
    core: CoreConfig = field(default_factory=CoreConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    # --- telemetry -------------------------------------------------------
    #: Collect hierarchical stats, epoch time series and (optionally) a
    #: command trace; the export rides on ``SimResult.telemetry``.
    #: Zero-cost when False: no registry is built and no hook fires.
    telemetry: bool = False
    #: Epoch length of the telemetry time series, in memory ticks.
    telemetry_epoch_cycles: int = 10_000
    #: Command-trace ring-buffer capacity (0 disables tracing).
    telemetry_trace_capacity: int = 0
    #: Export the energy-estimator arbitration (selected backend, its
    #: accuracy, the coefficient set) under an ``estimate.*`` telemetry
    #: namespace. Opt-in so legacy telemetry digests stay byte-identical
    #: (same trick as ``Mechanism.telemetry_namespace``).
    estimate_telemetry: bool = False
    # --- conformance checking --------------------------------------------
    #: Attach a repro.check.ProtocolChecker to every channel: an
    #: independent shadow oracle validating JEDEC timing, bank-state
    #: legality and CROW invariants on the issued command stream.
    check: bool = False
    #: 'strict' raises ConformanceError on the first violation; 'report'
    #: accumulates CheckViolation records on System.check_report().
    check_mode: str = "strict"
    # --- misc ------------------------------------------------------------
    functional_cells: bool = False
    #: Attach a repro.validation.CommandRecorder to every channel, so the
    #: full command stream can be replayed/validated after the run.
    record_commands: bool = False
    seed: int = 1
    #: Simulation engine: 'event' (the reference step loop) or 'batch'
    #: (table-driven, numpy-vectorized warm-up and batched min-wake
    #: stepping). Both produce byte-identical telemetry digests; the
    #: choice is a performance knob only and is therefore excluded from
    #: config/campaign digests.
    engine: str = "event"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("cores must be >= 1")
        # Raises ConfigError listing the registered names when unknown.
        get_plugin(self.mechanism)
        if self.copy_rows < 0:
            raise ConfigError("copy_rows must be non-negative")
        if self.prac_threshold < 1:
            raise ConfigError("prac_threshold must be >= 1")
        if self.prac_blast_radius < 1:
            raise ConfigError("prac_blast_radius must be >= 1")
        if self.clr_promote_threshold < 1:
            raise ConfigError("clr_promote_threshold must be >= 1")
        if self.telemetry_epoch_cycles < 1:
            raise ConfigError("telemetry_epoch_cycles must be >= 1")
        if self.telemetry_trace_capacity < 0:
            raise ConfigError("telemetry_trace_capacity must be >= 0")
        if self.check_mode not in ("strict", "report"):
            raise ConfigError(
                "check_mode must be 'strict' or 'report', "
                f"got {self.check_mode!r}"
            )
        from repro.engine import ENGINE_NAMES

        if self.engine not in ENGINE_NAMES:
            raise ConfigError(
                f"engine must be one of {ENGINE_NAMES}, got {self.engine!r}"
            )

    def resolved_geometry(self) -> DramGeometry:
        """Geometry with the mechanism plugin's structural knobs applied."""
        changes: dict = {"density_gbit": self.density_gbit}
        changes.update(get_plugin(self.mechanism).geometry_overrides(self))
        return replace(self.geometry, **changes)

    def llc_config(self) -> CacheConfig:
        """The LLC configuration implied by this system config."""
        return CacheConfig(size_bytes=self.llc_size_bytes)
