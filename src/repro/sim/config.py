"""System configuration (paper Table 2 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.controller.controller import ControllerConfig
from repro.cpu.cache import CacheConfig
from repro.cpu.core import CoreConfig
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigError
from repro.units import MIB

__all__ = ["SystemConfig", "MECHANISMS"]

#: Mechanism names accepted by :class:`SystemConfig`.
MECHANISMS = (
    "baseline",
    "crow-cache",
    "crow-ref",
    "crow-combined",
    "crow-hammer",
    "crow-full",
    "ideal-crow-cache",
    "ideal",            # ideal CROW-cache + no refresh (Figure 14 bound)
    "no-refresh",
    "tl-dram",
    "salp",
    "chargecache",
)


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`repro.sim.system.System`."""

    cores: int = 1
    mechanism: str = "baseline"
    # --- memory organization -----------------------------------------
    geometry: DramGeometry = field(default_factory=DramGeometry)
    density_gbit: int = 8
    refresh_window_ms: float = 64.0
    refresh_enabled: bool = True
    # --- CROW substrate ------------------------------------------------
    copy_rows: int = 8
    use_derived_circuit_factors: bool = False
    allow_partial_restore: bool = True
    reduced_twr: bool = True
    act_c_early_termination: bool = True
    #: 'bypass' (skip caching when all ways are partial) or 'restore'
    #: (the paper's Section 4.1.4 restore-before-evict protocol).
    evict_partial: str = "bypass"
    subarray_group_size: int = 1
    # --- CROW-ref ------------------------------------------------------
    target_refresh_window_ms: float = 128.0
    weak_rows_per_subarray: int | None = 3
    # --- RowHammer -----------------------------------------------------
    hammer_threshold: int = 2000
    # --- baselines -----------------------------------------------------
    tldram_near_rows: int = 8
    salp_subarrays_per_bank: int = 128
    salp_open_page: bool = True
    # --- processor side --------------------------------------------------
    llc_size_bytes: int = 8 * MIB
    prefetcher: bool = False
    prefetch_degree: int = 2
    core: CoreConfig = field(default_factory=CoreConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    # --- telemetry -------------------------------------------------------
    #: Collect hierarchical stats, epoch time series and (optionally) a
    #: command trace; the export rides on ``SimResult.telemetry``.
    #: Zero-cost when False: no registry is built and no hook fires.
    telemetry: bool = False
    #: Epoch length of the telemetry time series, in memory ticks.
    telemetry_epoch_cycles: int = 10_000
    #: Command-trace ring-buffer capacity (0 disables tracing).
    telemetry_trace_capacity: int = 0
    # --- conformance checking --------------------------------------------
    #: Attach a repro.check.ProtocolChecker to every channel: an
    #: independent shadow oracle validating JEDEC timing, bank-state
    #: legality and CROW invariants on the issued command stream.
    check: bool = False
    #: 'strict' raises ConformanceError on the first violation; 'report'
    #: accumulates CheckViolation records on System.check_report().
    check_mode: str = "strict"
    # --- misc ------------------------------------------------------------
    functional_cells: bool = False
    #: Attach a repro.validation.CommandRecorder to every channel, so the
    #: full command stream can be replayed/validated after the run.
    record_commands: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("cores must be >= 1")
        if self.mechanism not in MECHANISMS:
            raise ConfigError(
                f"unknown mechanism {self.mechanism!r}; one of {MECHANISMS}"
            )
        if self.copy_rows < 0:
            raise ConfigError("copy_rows must be non-negative")
        if self.telemetry_epoch_cycles < 1:
            raise ConfigError("telemetry_epoch_cycles must be >= 1")
        if self.telemetry_trace_capacity < 0:
            raise ConfigError("telemetry_trace_capacity must be >= 0")
        if self.check_mode not in ("strict", "report"):
            raise ConfigError(
                "check_mode must be 'strict' or 'report', "
                f"got {self.check_mode!r}"
            )

    def resolved_geometry(self) -> DramGeometry:
        """Geometry with the mechanism's structural knobs applied."""
        geometry = self.geometry
        changes: dict = {"density_gbit": self.density_gbit}
        if self.mechanism == "salp":
            rows_per_subarray = (
                geometry.rows_per_bank // self.salp_subarrays_per_bank
            )
            changes["rows_per_subarray"] = rows_per_subarray
            changes["copy_rows_per_subarray"] = 0
        elif self.mechanism == "tl-dram":
            changes["copy_rows_per_subarray"] = self.tldram_near_rows
        elif self.mechanism in ("baseline", "no-refresh", "chargecache"):
            changes["copy_rows_per_subarray"] = 0
        else:
            changes["copy_rows_per_subarray"] = self.copy_rows
        return replace(geometry, **changes)

    def llc_config(self) -> CacheConfig:
        """The LLC configuration implied by this system config."""
        return CacheConfig(size_bytes=self.llc_size_bytes)
