"""Unit helpers: time conversions and size literals.

The simulator's native clock is the DRAM bus clock. Timing parameters are
specified in nanoseconds in datasheets and converted to integer bus cycles
here, always rounding *up* (a constraint satisfied one cycle late is safe;
one cycle early is a timing violation).
"""

from __future__ import annotations

import math

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "ns_to_cycles",
    "cycles_to_ns",
    "ms_to_cycles",
    "us_to_cycles",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def ns_to_cycles(time_ns: float, clock_mhz: float) -> int:
    """Convert a duration in nanoseconds to bus cycles, rounding up.

    >>> ns_to_cycles(18.0, 1600.0)   # LPDDR4-3200 tRCD
    29
    """
    return math.ceil(time_ns * clock_mhz / 1000.0 - 1e-9)


def cycles_to_ns(cycles: int, clock_mhz: float) -> float:
    """Convert bus cycles to nanoseconds."""
    return cycles * 1000.0 / clock_mhz


def us_to_cycles(time_us: float, clock_mhz: float) -> int:
    """Convert microseconds to bus cycles, rounding up."""
    return ns_to_cycles(time_us * 1000.0, clock_mhz)


def ms_to_cycles(time_ms: float, clock_mhz: float) -> int:
    """Convert milliseconds to bus cycles, rounding up."""
    return ns_to_cycles(time_ms * 1_000_000.0, clock_mhz)
