"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``run`` — simulate one workload (or a mix) under a mechanism and print
  the headline metrics, optionally against a baseline run.
* ``workloads`` — list the named workload suite.
* ``timings`` — print the baseline + CROW command timing parameters.
* ``overheads`` — print the CROW substrate cost model (Section 6).
"""

from __future__ import annotations

import argparse
import sys

from repro import SystemConfig, WORKLOADS, run_mix, run_workload
from repro.analysis import TextTable
from repro.sim.config import MECHANISMS


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.workload
    config_kwargs = dict(
        mechanism=args.mechanism,
        density_gbit=args.density,
        copy_rows=args.copy_rows,
        prefetcher=args.prefetcher,
        seed=args.seed,
    )
    run_kwargs = dict(
        instructions=args.instructions,
        warmup_instructions=args.warmup,
    )

    def simulate(mechanism: str):
        config = SystemConfig(
            cores=len(names), **{**config_kwargs, "mechanism": mechanism}
        )
        if len(names) == 1:
            return run_workload(names[0], config, **run_kwargs)
        return run_mix(names, config, **run_kwargs)

    result = simulate(args.mechanism)
    table = TextTable(
        f"{'+'.join(names)} under {args.mechanism}",
        ["metric", "value"],
    )
    if len(names) == 1:
        table.add_row("IPC", result.ipc)
        table.add_row("MPKI", result.core_mpki[0])
    else:
        table.add_row("IPC (sum)", result.ipc_sum)
    table.add_row("memory cycles", result.cycles)
    table.add_row("DRAM energy (uJ)", result.total_energy_nj / 1000.0)
    table.add_row("refresh window (ms)", result.refresh_window_ms)
    if result.crow_hit_rate is not None:
        table.add_row("CROW-table hit rate", result.crow_hit_rate)
    if args.baseline and args.mechanism != "baseline":
        base = simulate("baseline")
        table.add_row("speedup vs baseline", result.speedup_over(base))
        table.add_row("energy vs baseline", result.energy_ratio(base))
    print(table.render())
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    table = TextTable(
        "named workload suite", ["name", "class", "suite", "description"]
    )
    for name in sorted(WORKLOADS):
        w = WORKLOADS[name]
        table.add_row(w.name, w.expected_class, w.suite, w.description)
    print(table.render())
    return 0


def _cmd_timings(args: argparse.Namespace) -> int:
    from repro.dram import CrowTimings, TimingParameters

    timing = TimingParameters.lpddr4(density_gbit=args.density)
    crow = CrowTimings.from_factors(timing)
    table = TextTable(
        f"LPDDR4 timings at {args.density} Gbit (cycles @ 1600 MHz)",
        ["parameter", "cycles"],
    )
    for name in ("trcd", "tras", "trp", "twr", "tcl", "trfc", "trefi"):
        table.add_row(name.upper(), getattr(timing, name))
    table.add_row("ACT-t tRCD (full pair)", crow.trcd_act_t_full)
    table.add_row("ACT-t tRAS (early term.)", crow.tras_act_t_early)
    table.add_row("ACT-c tRAS (full restore)", crow.tras_act_c_full)
    print(table.render())
    return 0


def _cmd_overheads(args: argparse.Namespace) -> int:
    from repro.circuit import DecoderAreaModel
    from repro.core import crow_table_storage_kib

    area = DecoderAreaModel()
    table = TextTable(
        f"CROW substrate overheads ({args.copy_rows} copy rows/subarray)",
        ["quantity", "value"],
    )
    table.add_row(
        "CROW-table storage / channel (KiB)",
        crow_table_storage_kib(copy_rows_per_subarray=args.copy_rows),
    )
    table.add_row(
        "decoder area overhead",
        f"{area.copy_decoder_overhead(args.copy_rows):.2%}",
    )
    table.add_row(
        "chip area overhead", f"{area.crow_chip_overhead(args.copy_rows):.2%}"
    )
    table.add_row(
        "capacity overhead",
        f"{area.crow_capacity_overhead(args.copy_rows):.2%}",
    )
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CROW (ISCA 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload or mix")
    run.add_argument("workload", nargs="+", choices=sorted(WORKLOADS),
                     metavar="workload")
    run.add_argument("--mechanism", default="crow-cache", choices=MECHANISMS)
    run.add_argument("--instructions", type=int, default=40_000)
    run.add_argument("--warmup", type=int, default=15_000)
    run.add_argument("--density", type=int, default=8,
                     choices=(8, 16, 32, 64))
    run.add_argument("--copy-rows", type=int, default=8)
    run.add_argument("--prefetcher", action="store_true")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--no-baseline", dest="baseline", action="store_false",
                     help="skip the baseline comparison run")
    run.set_defaults(func=_cmd_run)

    wl = sub.add_parser("workloads", help="list the workload suite")
    wl.set_defaults(func=_cmd_workloads)

    tm = sub.add_parser("timings", help="print timing parameters")
    tm.add_argument("--density", type=int, default=8, choices=(8, 16, 32, 64))
    tm.set_defaults(func=_cmd_timings)

    ov = sub.add_parser("overheads", help="print substrate cost model")
    ov.add_argument("--copy-rows", type=int, default=8)
    ov.set_defaults(func=_cmd_overheads)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
