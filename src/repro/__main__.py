"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``run`` — simulate one workload (or a mix) under a mechanism and print
  the headline metrics, optionally against a baseline run.
* ``stats`` — run with telemetry enabled and print the observability
  report: queue/latency/hit-rate stats, percentiles, an epoch time-series
  figure; optionally export the registry JSON and a command trace JSONL.
* ``campaign`` — sweep workloads × mechanisms on a parallel, cached,
  fault-tolerant worker pool (``repro.exec``) and print a result table.
* ``cluster`` — distribute a campaign across hosts (``repro.cluster``):
  ``serve`` a coordinator, attach pull-based ``work``-ers, ``submit``
  extra tasks to a live campaign, and watch fleet ``status``.
* ``check`` — run the protocol-conformance oracle (``repro.check``) over
  seeded random scenarios, one reproduced counterexample, or the perf
  matrix; exits non-zero on any violation.
* ``workloads`` — list the named workload suite.
* ``timings`` — print the baseline + CROW command timing parameters.
* ``overheads`` — print the CROW substrate cost model (Section 6),
  served through the estimator framework's reference backend.
* ``estimate`` — the energy/area estimator framework
  (``repro.estimate``): list backends, estimate a config, explain
  accuracy arbitration, record-cache stats, and the CI ``verify``
  smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro import SystemConfig, WORKLOADS, run_mix, run_workload
from repro.analysis import TextTable
from repro.errors import ConfigError, ReproError
from repro.mech import get_plugin, mechanism_names


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.workload
    config_kwargs = dict(
        mechanism=args.mechanism,
        density_gbit=args.density,
        copy_rows=args.copy_rows,
        prefetcher=args.prefetcher,
        seed=args.seed,
    )
    run_kwargs = dict(
        instructions=args.instructions,
        warmup_instructions=args.warmup,
    )

    def simulate(mechanism: str):
        config = SystemConfig(
            cores=len(names), **{**config_kwargs, "mechanism": mechanism}
        )
        if len(names) == 1:
            return run_workload(names[0], config, **run_kwargs)
        return run_mix(names, config, **run_kwargs)

    result = simulate(args.mechanism)
    table = TextTable(
        f"{'+'.join(names)} under {args.mechanism}",
        ["metric", "value"],
    )
    if len(names) == 1:
        table.add_row("IPC", result.ipc)
        table.add_row("MPKI", result.core_mpki[0])
    else:
        table.add_row("IPC (sum)", result.ipc_sum)
    table.add_row("memory cycles", result.cycles)
    table.add_row("DRAM energy (uJ)", result.total_energy_nj / 1000.0)
    table.add_row("refresh window (ms)", result.refresh_window_ms)
    if result.crow_hit_rate is not None:
        table.add_row("CROW-table hit rate", result.crow_hit_rate)
    if args.baseline and args.mechanism != "baseline":
        base = simulate("baseline")
        table.add_row("speedup vs baseline", result.speedup_over(base))
        table.add_row("energy vs baseline", result.energy_ratio(base))
    print(table.render())
    return 0


def _ratio_text(ratio: dict) -> str:
    """Render a telemetry Ratio export ('-' for the undefined case)."""
    value = ratio.get("value")
    return "-" if value is None else f"{value:.4f}"


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import ascii_timeseries

    names = args.workload
    trace_capacity = args.trace_capacity if args.trace else 0
    config = SystemConfig(
        cores=len(names),
        mechanism=args.mechanism,
        density_gbit=args.density,
        prefetcher=args.prefetcher,
        seed=args.seed,
        telemetry=True,
        telemetry_epoch_cycles=args.epoch,
        telemetry_trace_capacity=trace_capacity,
    )
    run_kwargs = dict(
        instructions=args.instructions, warmup_instructions=args.warmup
    )
    if len(names) == 1:
        result = run_workload(names[0], config, **run_kwargs)
    else:
        result = run_mix(names, config, **run_kwargs)
    export = result.telemetry
    assert export is not None

    channels = export["controller"]

    def total(key: str) -> int:
        return sum(ch[key]["value"] for ch in channels.values())

    table = TextTable(
        f"telemetry: {'+'.join(names)} under {args.mechanism} "
        f"(digest {result.telemetry_digest()})",
        ["stat", "value"],
    )
    table.add_row("IPC", result.ipc if len(names) == 1 else result.ipc_sum)
    table.add_row("memory cycles", export["meta"]["cycles"])
    table.add_row("reads served", total("reads_served"))
    table.add_row("writes served", total("writes_served"))
    table.add_row("write drains", total("write_drains"))
    table.add_row("refreshes", total("refreshes"))
    hits = total("row_hits")
    accesses = hits + total("row_misses") + total("row_conflicts")
    table.add_row(
        "row-buffer hit rate", f"{hits / accesses:.4f}" if accesses else "-"
    )
    # Channel 0 carries the percentile summary (single-channel config).
    latency = channels["ch0"]["read_latency"]
    for key in ("mean", "p50", "p95", "p99"):
        value = latency[key]
        table.add_row(
            f"read latency {key}",
            "-" if value is None else f"{value:.1f}",
        )
    if "crow" in export:
        crow = export["crow"]
        if "hit_rate" in crow:
            table.add_row("CROW hit rate", _ratio_text(crow["hit_rate"]))
            table.add_row(
                "CROW restore fraction (Sec 8.1.1)",
                _ratio_text(crow["restore_fraction"]),
            )
            table.add_row("CROW evictions", crow["evictions"]["value"])
        if "ref_remapped_rows" in crow:
            table.add_row("CROW-ref remapped rows",
                          crow["ref_remapped_rows"]["value"])
    table.add_row("LLC miss rate", _ratio_text(export["llc"]["miss_rate"]))
    print(table.render())

    series = export["epochs"].get(args.series)
    if series is None:
        known = ", ".join(sorted(export["epochs"]))
        print(f"unknown epoch series {args.series!r}; one of: {known}",
              file=sys.stderr)
        return 2
    print()
    samples = series["samples"]
    if any(s is not None for s in samples):
        print(
            ascii_timeseries(
                samples,
                title=(
                    f"{args.series} per epoch "
                    f"({series['epoch_cycles']} memory cycles each)"
                ),
            )
        )
    else:
        print(
            f"no complete epochs to plot ({len(samples)} sampled); "
            f"the measured run is shorter than --epoch "
            f"({series['epoch_cycles']} memory cycles) -- lower it"
        )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(export, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"\nregistry export written to {args.json}")
    if args.trace:
        events = export.get("trace", {}).get("events", [])
        with open(args.trace, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        print(f"command trace ({len(events)} events) written to {args.trace}")
    return 0


def _matrix_tasks(args: argparse.Namespace, **extra_run_kwargs) -> list:
    """Build the workloads x mechanisms TaskSpec matrix from CLI args."""
    from repro.exec import TaskSpec

    unknown = sorted(set(args.workload) - set(WORKLOADS))
    if unknown:
        raise SystemExit(
            f"unknown workload(s): {', '.join(unknown)} "
            f"(see: python -m repro workloads)"
        )
    run_kwargs = dict(
        instructions=args.instructions,
        warmup_instructions=args.warmup,
        seed=args.seed,
        **extra_run_kwargs,
    )
    tasks = []
    for mechanism in args.mechanisms:
        config = SystemConfig(
            cores=len(args.workload) if args.mix else 1,
            mechanism=mechanism,
            density_gbit=args.density,
            telemetry=args.telemetry,
        )
        if args.mix:
            tasks.append(TaskSpec.mix(args.workload, config, **run_kwargs))
        else:
            tasks.extend(
                TaskSpec.workload(name, config, **run_kwargs)
                for name in args.workload
            )
    return tasks


def _cmd_campaign(args: argparse.Namespace) -> int:
    import tempfile

    from repro.exec import ParallelCampaign

    run_kwargs = {}
    if args.checkpoint_dir is not None:
        run_kwargs["checkpoint_dir"] = args.checkpoint_dir
        run_kwargs["checkpoint_every"] = args.checkpoint_every
    tasks = _matrix_tasks(args, **run_kwargs)

    directory = args.cache_dir or tempfile.mkdtemp(prefix="repro-campaign-")
    with ParallelCampaign(
        directory,
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        journal=args.journal,
        progress=sys.stderr.isatty(),
    ) as campaign:
        if args.fork_warm is not None:
            outcomes = campaign.run_forked(tasks, args.fork_warm)
        else:
            outcomes = campaign.run(tasks)

        table = TextTable(
            f"campaign over {len(tasks)} task(s), jobs={campaign.runner.jobs}",
            ["task", "status", "IPC", "mem cycles", "energy (uJ)"],
        )
        baselines = {}
        for outcome in outcomes:
            spec, result = outcome.spec, outcome.result
            if result is not None and spec.config.mechanism == "baseline":
                baselines[spec.names] = result
        for outcome in outcomes:
            spec, result = outcome.spec, outcome.result
            if not outcome.ok:
                table.add_row(spec.label, f"FAILED ({outcome.error})",
                              "-", "-", "-")
                continue
            status = "cached" if outcome.cached else "ran"
            ipc = result.ipc if result.cores == 1 else result.ipc_sum
            base = baselines.get(spec.names)
            cell = f"{ipc:.4f}"
            if base is not None and spec.config.mechanism != "baseline":
                cell += f" ({result.speedup_over(base):.3f}x)"
            table.add_row(
                spec.label, status, cell, result.cycles,
                f"{result.total_energy_nj / 1000.0:.2f}",
            )
        print(table.render())
        failed = sum(1 for outcome in outcomes if not outcome.ok)
        print(
            f"done={len(outcomes) - failed} failed={failed} "
            f"cache hits={campaign.hits} misses={campaign.misses} "
            f"cache dir={directory}"
        )
    return 1 if failed else 0


def _connect_endpoint(value: str) -> "tuple[str, int]":
    """argparse type for ``--connect HOST:PORT``."""
    host, _, port = value.rpartition(":")
    if not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return (host or "127.0.0.1", int(port))


def _build_cluster_warm_images(state, store, prewarm_accesses: int) -> None:
    """Build shared warm images for every forkable pending-task group."""
    from repro.cluster.state import PENDING
    from repro.exec.task import TaskSpec
    from repro.snapshot.warm import build_warm_image, fork_groups

    entries = [e for e in state.tasks.values() if e.state == PENDING]
    specs = [TaskSpec.from_wire(e.wire) for e in entries]
    for group in fork_groups(specs, prewarm_accesses):
        image = store.warm_path(group.filename)
        if not image.is_file():
            if len(group.indices) < 2:
                continue  # a lone task amortizes nothing
            sample = specs[group.indices[0]]
            print(
                f"building warm image {group.filename} "
                f"({len(group.indices)} task(s), "
                f"{prewarm_accesses} accesses)...",
                flush=True,
            )
            build_warm_image(
                image, sample.names, sample.config, seed=sample.seed,
                kind=sample.kind, prewarm_accesses=prewarm_accesses,
            )
        for index in group.indices:
            state.set_warm(entries[index].digest, {
                "image": group.filename,
                "warm_digest": group.warm_digest,
            })


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.cluster import CampaignState, Coordinator, ResultStore
    from repro.exec import RunJournal, read_journal

    store = ResultStore(args.store)
    journal = None
    events: list = []
    if args.journal is not None:
        path = Path(args.journal)
        if path.exists():
            events = read_journal(path)
        journal = RunJournal(path)
    state_kwargs = dict(
        lease_timeout_s=args.lease_timeout,
        max_attempts=args.retries + 1,
        journal=journal,
    )
    if events:
        state = CampaignState.replay(events, **state_kwargs)
        counts = state.counts()
        print(
            f"journal replay: {len(state.tasks)} task(s) restored "
            f"({counts['done']} done, {counts['failed']} failed)"
        )
    else:
        state = CampaignState(**state_kwargs)
    added = sum(
        1 for spec in _matrix_tasks(args) if state.add_task(spec.to_wire())
    )
    if not state.tasks:
        print(
            "no tasks: name workloads, or point --journal at an "
            "existing campaign journal",
            file=sys.stderr,
        )
        if journal is not None:
            journal.close()
        return 2
    coordinator = Coordinator(
        state, store, host=args.host, port=args.port,
        exit_when_done=args.exit_when_done,
    )
    pruned = coordinator.prune_against_store()
    if args.fork_warm:
        _build_cluster_warm_images(state, store, args.prewarm_accesses)

    async def _serve() -> dict:
        await coordinator.start()
        counts = state.counts()
        print(
            f"coordinator on {coordinator.host}:{coordinator.port}: "
            f"{len(state.tasks)} task(s) ({added} new, "
            f"{counts['done']} done, {pruned} adopted from store)",
            flush=True,
        )
        return await coordinator.serve()

    try:
        snapshot = asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; the journal and store keep the campaign "
              "resumable")
        return 130
    finally:
        if journal is not None:
            journal.close()
    remaining = snapshot["pending"] + snapshot["leased"]
    print(
        f"campaign: {snapshot['done']}/{snapshot['total']} done, "
        f"{snapshot['failed']} failed, steals={snapshot['steals']} "
        f"retries={snapshot['retries']} expired={snapshot['expired']} "
        f"late={snapshot['late_results']}"
    )
    return 1 if snapshot["failed"] or remaining else 0


def _cmd_cluster_work(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile

    from repro.cluster import ClusterWorker
    from repro.errors import ClusterError

    host, port = args.connect
    store_dir = args.store or tempfile.mkdtemp(prefix="repro-worker-")
    worker = ClusterWorker(
        host, port, store_dir,
        worker_id=args.id,
        jobs=args.jobs,
        retries=args.retries,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        log=lambda line: print(line, flush=True),
    )
    try:
        done = asyncio.run(worker.run())
    except KeyboardInterrupt:
        return 130
    except ClusterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"worker {worker.worker_id}: delivered {done} computed + "
        f"{worker.cached_tasks} cached result(s); store={store_dir}"
    )
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import get_status
    from repro.errors import ClusterError

    host, port = args.connect
    try:
        status = get_status(host, port, timeout_s=args.timeout)
    except ClusterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status.payload, sort_keys=True, indent=2))
    else:
        print(status.render())
    return 0


def _cmd_cluster_submit(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster.protocol import read_frame, send_frame
    from repro.errors import ClusterError

    host, port = args.connect
    tasks = _matrix_tasks(args)

    async def _submit() -> "dict | None":
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await send_frame(writer, {
                "type": "submit",
                "tasks": [spec.to_wire() for spec in tasks],
            })
            return await read_frame(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    try:
        reply = asyncio.run(_submit())
    except (ConnectionError, OSError, ClusterError) as error:
        print(
            f"error: cannot reach coordinator at {host}:{port}: {error}",
            file=sys.stderr,
        )
        return 1
    if reply is None or reply.get("type") != "ack":
        print(f"error: unexpected reply {reply!r}", file=sys.stderr)
        return 1
    added = reply.get("added", 0)
    print(
        f"submitted {len(tasks)} task(s); {added} new, "
        f"{len(tasks) - added} already known"
    )
    return 0


def _diff_values(path: str, a, b, lines: list) -> None:
    """Recursive value diff; appends ``path: a != b`` leaf lines."""
    if len(lines) > 200:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            inner = f"{path}.{key}" if path else str(key)
            if key not in a:
                lines.append(f"{inner}: <absent> != {b[key]!r}")
            elif key not in b:
                lines.append(f"{inner}: {a[key]!r} != <absent>")
            else:
                _diff_values(inner, a[key], b[key], lines)
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            lines.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for i, (item_a, item_b) in enumerate(zip(a, b)):
            _diff_values(f"{path}[{i}]", item_a, item_b, lines)
        return
    if a != b:
        lines.append(f"{path}: {a!r} != {b!r}")


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.snapshot import read_header, read_snapshot

    try:
        if args.action == "inspect":
            header = read_header(args.path)
            table = TextTable(f"snapshot {args.path}", ["field", "value"])
            for key in sorted(header):
                value = header[key]
                if isinstance(value, list):
                    value = ", ".join(str(v) for v in value)
                table.add_row(key, value)
            print(table.render())
            return 0
        if args.action == "verify":
            header, payload = read_snapshot(args.path)
            kind = header.get("kind")
            print(
                f"{args.path}: OK (kind={kind}, format "
                f"v{header.get('format_version')}, "
                f"cycle={header.get('cycle', '-')})"
            )
            return 0
        if args.action == "diff":
            if args.path2 is None:
                print("diff needs two snapshot paths", file=sys.stderr)
                return 2
            header_a, payload_a = read_snapshot(args.path)
            header_b, payload_b = read_snapshot(args.path2)
            lines: list = []
            _diff_values("header", header_a, header_b, lines)
            state_a = (
                payload_a.get("state") if isinstance(payload_a, dict) else None
            )
            state_b = (
                payload_b.get("state") if isinstance(payload_b, dict) else None
            )
            if state_a is not None and state_b is not None:
                _diff_values("state", state_a, state_b, lines)
            if not lines:
                print("snapshots are identical")
                return 0
            shown = lines[: args.limit]
            for line in shown:
                print(line)
            if len(lines) > len(shown):
                print(f"... {len(lines) - len(shown)} further difference(s)")
            return 1
        # resume
        from repro.sim.system import System

        result = System.resume(args.path)
        digest = result.telemetry_digest()
        print(
            f"resumed run complete: cycles={result.cycles} "
            f"digest={digest if digest is not None else '-'}"
        )
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_workloads(args: argparse.Namespace) -> int:
    table = TextTable(
        "named workload suite", ["name", "class", "suite", "description"]
    )
    for name in sorted(WORKLOADS):
        w = WORKLOADS[name]
        table.add_row(w.name, w.expected_class, w.suite, w.description)
    print(table.render())
    return 0


def _cmd_mechanisms(args: argparse.Namespace) -> int:
    """List the mechanism registry, or verify every plugin (CI matrix).

    ``--verify`` runs each registered mechanism through a short
    strict-conformance simulation with telemetry, compares the digest
    against the committed oracle (``tests/data/expected_digests.json``)
    where an entry exists, and exits non-zero on any conformance
    violation or digest mismatch. ``--report-dir`` writes one JSON
    report per mechanism (the CI artifacts).
    """
    if not args.verify:
        table = TextTable(
            "mechanism registry", ["name", "plugin", "description"]
        )
        for name in mechanism_names():
            plugin = get_plugin(name)
            doc = (plugin.__class__.__doc__ or "").strip().splitlines()
            table.add_row(
                name, type(plugin).__name__, doc[0] if doc else ""
            )
        print(table.render())
        return 0

    from repro.check.scenarios import run_checked_case

    oracle: dict = {}
    if args.digests is not None and args.digests.exists():
        oracle = json.loads(args.digests.read_text())
    if args.report_dir is not None:
        args.report_dir.mkdir(parents=True, exist_ok=True)

    failed = []
    for name in mechanism_names():
        entry = oracle.get(f"{args.workload}-{name}")
        report: dict = {
            "mechanism": name,
            "workload": args.workload,
            "instructions": args.instructions,
            "warmup_instructions": args.warmup,
            "seed": args.seed,
        }
        try:
            result, check = run_checked_case(
                (args.workload,),
                name,
                args.instructions,
                args.warmup,
                seed=args.seed,
                mode="strict",
                telemetry=True,
            )
        except ReproError as exc:
            report["status"] = "conformance-violation"
            report["error"] = str(exc)
            failed.append(name)
        else:
            digest = result.telemetry_digest()
            report["cycles"] = result.cycles
            report["digest"] = digest
            report["commands_checked"] = check.commands
            if entry is None:
                report["status"] = "ok-no-oracle-digest"
            elif (
                digest != entry["digest"]
                or result.cycles != entry["cycles"]
            ):
                report["status"] = "digest-mismatch"
                report["expected"] = entry
                failed.append(name)
            else:
                report["status"] = "ok"
        print(f"{name:18s} {report['status']}")
        if args.report_dir is not None:
            path = args.report_dir / f"{name}.json"
            path.write_text(json.dumps(report, indent=2) + "\n")
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"all {len(mechanism_names())} mechanisms conformant")
    return 0


def _cmd_timings(args: argparse.Namespace) -> int:
    from repro.dram import CrowTimings, TimingParameters

    timing = TimingParameters.lpddr4(density_gbit=args.density)
    crow = CrowTimings.from_factors(timing)
    table = TextTable(
        f"LPDDR4 timings at {args.density} Gbit (cycles @ 1600 MHz)",
        ["parameter", "cycles"],
    )
    for name in ("trcd", "tras", "trp", "twr", "tcl", "trfc", "trefi"):
        table.add_row(name.upper(), getattr(timing, name))
    table.add_row("ACT-t tRCD (full pair)", crow.trcd_act_t_full)
    table.add_row("ACT-t tRAS (early term.)", crow.tras_act_t_early)
    table.add_row("ACT-c tRAS (full restore)", crow.tras_act_c_full)
    print(table.render())
    return 0


def _cmd_overheads(args: argparse.Namespace) -> int:
    """Substrate cost table, served by the estimator framework.

    The arbiter selects the ``circuit-reference`` backend (a byte-
    identical port of ``DecoderAreaModel``), so this output is provably
    identical to the pre-framework direct-model version — a test
    renders both and compares the strings.
    """
    from repro.core import crow_table_storage_kib
    from repro.estimate.runtime import crow_overheads

    overheads = crow_overheads(args.copy_rows)
    table = TextTable(
        f"CROW substrate overheads ({args.copy_rows} copy rows/subarray)",
        ["quantity", "value"],
    )
    table.add_row(
        "CROW-table storage / channel (KiB)",
        crow_table_storage_kib(copy_rows_per_subarray=args.copy_rows),
    )
    table.add_row(
        "decoder area overhead",
        f"{overheads['decoder_overhead']:.2%}",
    )
    table.add_row(
        "chip area overhead", f"{overheads['chip_overhead']:.2%}"
    )
    table.add_row(
        "capacity overhead",
        f"{overheads['capacity_overhead']:.2%}",
    )
    print(table.render())
    return 0


def _estimate_verify_cases() -> list[dict]:
    """The three mechanism configs the estimator smoke check covers."""
    return [
        {"key": "baseline-8g-copy8", "mechanism": "baseline",
         "density_gbit": 8, "copy_rows": 8},
        {"key": "crow-cache-16g-copy8", "mechanism": "crow-cache",
         "density_gbit": 16, "copy_rows": 8},
        {"key": "clr-dram-32g-copy4", "mechanism": "clr-dram",
         "density_gbit": 32, "copy_rows": 4},
    ]


def _cmd_estimate(args: argparse.Namespace) -> int:
    """The estimator framework front door (``repro estimate <action>``)."""
    from repro.dram.timing import TimingParameters
    from repro.energy import IddCurrents
    from repro.estimate import EstimatorArbiter, estimator_names, get_estimator
    from repro.estimate.runtime import (
        activation_power_query,
        channel_energy_query,
        crow_overheads_query,
        decoder_area_query,
        default_arbiter,
        estimate_stats,
    )
    from repro.keying import stable_digest

    def emit(payload: dict) -> None:
        if getattr(args, "json", None) is not None:
            args.json.write_text(json.dumps(payload, indent=2) + "\n")

    if args.action == "backends":
        table = TextTable(
            "estimator backend registry",
            ["name", "plugin", "components", "description"],
        )
        rows = []
        for name in estimator_names():
            plugin = get_estimator(name)
            doc = (plugin.__class__.__doc__ or "").strip().splitlines()
            components = ", ".join(plugin.supported_components())
            table.add_row(
                name, type(plugin).__name__, components,
                doc[0] if doc else "",
            )
            rows.append({
                "name": name,
                "plugin": type(plugin).__name__,
                "components": list(plugin.supported_components()),
            })
        print(table.render())
        emit({"backends": rows})
        return 0

    if args.action == "energy":
        arbiter = default_arbiter()
        if args.backend is not None:
            arbiter = EstimatorArbiter(names=(args.backend,))
        timing = TimingParameters.lpddr4(density_gbit=args.density)
        currents = IddCurrents.lpddr4(args.density)
        query = channel_energy_query(timing, currents)
        before = arbiter.served_from_cache
        estimation = arbiter.estimate(query)
        table = TextTable(
            f"DRAM channel energy coefficients at {args.density} Gbit "
            f"(backend: {estimation.backend}, "
            f"{estimation.accuracy_percent:.0f}% accuracy)",
            ["coefficient", "value"],
        )
        for key, value in estimation.mapping().items():
            table.add_row(key, f"{value:.6g}")
        print(table.render())
        if arbiter.cache is not None:
            served = arbiter.served_from_cache - before
            print(
                "record cache: hit" if served
                else "record cache: miss (record stored)"
            )
        emit({"query": query.projection(),
              "estimation": estimation.to_payload()})
        return 0

    if args.action == "area":
        arbiter = default_arbiter()
        query = crow_overheads_query(args.copy_rows)
        estimation = arbiter.estimate(query)
        overheads = estimation.mapping()
        table = TextTable(
            f"CROW substrate area ({args.copy_rows} copy rows/subarray, "
            f"backend: {estimation.backend})",
            ["quantity", "value"],
        )
        table.add_row(
            "copy-row decoder area (um^2)",
            f"{overheads['decoder_area_um2']:.4f}",
        )
        table.add_row(
            "decoder area overhead", f"{overheads['decoder_overhead']:.2%}"
        )
        table.add_row(
            "chip area overhead", f"{overheads['chip_overhead']:.2%}"
        )
        table.add_row(
            "capacity overhead", f"{overheads['capacity_overhead']:.2%}"
        )
        print(table.render())
        emit({"query": query.projection(),
              "estimation": estimation.to_payload()})
        return 0

    if args.action == "explain":
        timing = TimingParameters.lpddr4(density_gbit=args.density)
        currents = IddCurrents.lpddr4(args.density)
        queries = {
            "channel-energy": channel_energy_query(timing, currents),
            "crow-overheads": crow_overheads_query(args.copy_rows),
            "decoder-area": decoder_area_query(args.rows),
            "activation-power": activation_power_query(args.n_rows),
        }
        query = queries[args.target]
        rows = default_arbiter().explain(query)
        table = TextTable(
            f"arbitration for {query.label}",
            ["backend", "accuracy", "selected", "reason"],
        )
        for row in rows:
            table.add_row(
                row["backend"],
                f"{row['accuracy_percent']:.0f}%",
                "<-- selected" if row["selected"] else "",
                row["reason"],
            )
        print(table.render())
        emit({"query": query.projection(), "arbitration": rows})
        return 0

    if args.action == "cache":
        stats = estimate_stats()
        table = TextTable("estimator cache statistics", ["counter", "value"])
        table.add_row("backend calls", stats["backend_calls"])
        table.add_row("served from record cache", stats["served_from_cache"])
        table.add_row(
            "memoized coefficient sets", stats["memoized_coefficient_sets"]
        )
        record = stats["record_cache"]
        if record is None:
            table.add_row("record cache", "detached (REPRO_ESTIMATE_CACHE unset)")
        else:
            for key in ("directory", "entries", "bytes", "hits", "misses",
                        "stores", "repairs"):
                table.add_row(f"record cache {key}", record[key])
        print(table.render())
        emit(stats)
        return 0

    # verify: reference-backend outputs against committed expectations.
    oracle: dict = {}
    if args.expected is not None and args.expected.exists():
        oracle = json.loads(args.expected.read_text())
    if args.report_dir is not None:
        args.report_dir.mkdir(parents=True, exist_ok=True)
    arbiter = EstimatorArbiter()
    failed = []
    for case in _estimate_verify_cases():
        key = case["key"]
        timing = TimingParameters.lpddr4(density_gbit=case["density_gbit"])
        currents = IddCurrents.lpddr4(case["density_gbit"])
        energy_query = channel_energy_query(timing, currents)
        area_query = crow_overheads_query(case["copy_rows"])
        energy = arbiter.estimate(energy_query)
        area = arbiter.estimate(area_query)
        power = arbiter.estimate(activation_power_query(2))
        report: dict = {
            "case": case,
            "arbitration": {
                "channel-energy": arbiter.explain(energy_query),
                "crow-overheads": arbiter.explain(area_query),
            },
            "energy": {
                "backend": energy.backend,
                "digest": stable_digest(energy.to_payload()),
            },
            "area": {
                "backend": area.backend,
                "digest": stable_digest(area.to_payload()),
                "chip_overhead": area.mapping()["chip_overhead"],
            },
            "activation_power_2rows": power.scalar(),
        }
        problems = []
        # Figure 7 linkage: the energy coefficient set's MRA multiplier
        # must equal the arbitrated activation-power estimate.
        if energy.mapping()["mra_overhead"] != power.scalar():
            problems.append("mra_overhead != activation-power estimate")
        expected = oracle.get(key)
        if expected is None:
            report["status"] = "ok-no-expectation"
        else:
            for section in ("energy", "area"):
                for field in expected[section]:
                    if expected[section][field] != report[section][field]:
                        problems.append(
                            f"{section}.{field}: expected "
                            f"{expected[section][field]!r}, got "
                            f"{report[section][field]!r}"
                        )
            if (
                expected["activation_power_2rows"]
                != report["activation_power_2rows"]
            ):
                problems.append("activation_power_2rows mismatch")
        if problems:
            report["status"] = "mismatch"
            report["problems"] = problems
            failed.append(key)
        elif expected is not None:
            report["status"] = "ok"
        print(f"{key:24s} {report['status']}")
        if args.report_dir is not None:
            path = args.report_dir / f"{key}.json"
            path.write_text(json.dumps(report, indent=2) + "\n")
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(
        f"all {len(_estimate_verify_cases())} configs match the "
        "reference-backend expectations"
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import CheckReport
    from repro.check.scenarios import (
        Scenario,
        random_scenario,
        run_checked_case,
        run_scenario,
    )
    from repro.errors import ConformanceError

    merged = CheckReport()

    def show(report) -> None:
        for violation in report.violations:
            print(f"  {violation}")
        if report.truncated:
            print(f"  ... {report.truncated} further violation(s) truncated")

    try:
        if args.scenario is not None:
            scenario = Scenario.from_json(args.scenario)
            print(scenario.to_json())
            _, report = run_scenario(scenario, mode=args.mode)
            merged.merge(report)
            show(report)
        elif args.reproduce is not None:
            scenario = random_scenario(args.reproduce)
            print(f"case seed {args.reproduce}: {scenario.to_json()}")
            _, report = run_scenario(scenario, mode=args.mode)
            merged.merge(report)
            show(report)
        elif args.perf_matrix:
            from repro.perf.suite import CASES

            table = TextTable(
                "conformance check over the perf matrix",
                ["case", "commands", "violations"],
            )
            for case in CASES:
                _, report = run_checked_case(
                    case.workloads,
                    case.mechanism,
                    case.instructions,
                    case.warmup_instructions,
                    seed=case.seed,
                    mode=args.mode,
                )
                merged.merge(report)
                table.add_row(
                    case.name, report.commands, report.total_violations
                )
                show(report)
            print(table.render())
        else:
            table = TextTable(
                f"conformance sweep: {args.cases} scenario(s), "
                f"base seed {args.seed}",
                ["case seed", "mechanism", "workloads", "commands",
                 "violations"],
            )
            for i in range(args.cases):
                case_seed = args.seed + i
                scenario = random_scenario(case_seed)
                _, report = run_scenario(scenario, mode=args.mode)
                merged.merge(report)
                table.add_row(
                    case_seed,
                    scenario.mechanism,
                    "+".join(scenario.workloads),
                    report.commands,
                    report.total_violations,
                )
                if not report.ok:
                    print(f"case seed {case_seed}: {scenario.to_json()}")
                    show(report)
            print(table.render())
            print(
                "reproduce any case with: "
                f"python -m repro check --reproduce <case seed>"
            )
    except ConformanceError as error:
        print(f"strict-mode violation: {error}", file=sys.stderr)
        if args.report is not None:
            merged.violations.append(error.violation)
            merged.write_json(args.report)
            print(f"violation report written to {args.report}")
        return 1
    if args.report is not None:
        merged.write_json(args.report)
        print(f"violation report written to {args.report}")
    print(merged.summary())
    return 0 if merged.ok else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import compare, load_results, run_suite, write_results

    doc = run_suite(repeat=args.repeat, progress=print, engine=args.engine)
    write_results(doc, args.output)
    print(f"wrote {args.output} (composite {doc['composite']:.4f})")
    if args.compare is None:
        return 0
    return compare(doc, load_results(args.compare), threshold=args.threshold)


def _probe_config(args: argparse.Namespace) -> SystemConfig:
    """Build the device config a probe run instantiates (and verifies)."""
    from dataclasses import replace

    from repro.dram.geometry import DramGeometry

    geometry_changes = {}
    if args.banks is not None:
        geometry_changes["banks_per_rank"] = args.banks
    if args.rows_per_bank is not None:
        geometry_changes["rows_per_bank"] = args.rows_per_bank
    if args.rows_per_subarray is not None:
        geometry_changes["rows_per_subarray"] = args.rows_per_subarray
    geometry = DramGeometry(**geometry_changes) if geometry_changes else None
    kwargs = dict(
        mechanism=args.mechanism,
        density_gbit=args.density,
        copy_rows=args.copy_rows,
        refresh_window_ms=args.refresh_window,
        target_refresh_window_ms=args.target_window,
        weak_rows_per_subarray=args.weak_rows,
        seed=args.seed,
    )
    if geometry is not None:
        kwargs["geometry"] = replace(geometry, density_gbit=args.density)
    return SystemConfig(**kwargs)


def _cmd_probe(args: argparse.Namespace) -> int:
    import json

    from repro.probe import ProbeSession, discover

    config = _probe_config(args)
    session = ProbeSession(
        config, channel=args.channel, shadow=not args.no_shadow
    )
    probe_banks = (
        [int(bank) for bank in args.probe_banks.split(",")]
        if args.probe_banks
        else None
    )
    profile = discover(
        session,
        probe_banks=probe_banks,
        retention_interval_ms=args.retention_interval,
    )
    payload: dict = {"profile": profile.to_dict()}

    report = None
    if args.action in ("verify", "report"):
        report = profile.verify_against(config)
        payload["report"] = report.to_dict()
    if args.json is not None:
        from pathlib import Path

        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {path}")

    table = TextTable(
        f"inferred profile: {config.mechanism} channel {args.channel}",
        ["parameter", "value", "confidence", "technique"],
    )
    for entry in profile.parameters.values():
        table.add_row(
            entry.name,
            "?" if entry.value is None else str(entry.value),
            entry.confidence,
            entry.note,
        )
    print(table.render())
    weak_total = sum(len(rows) for rows in profile.weak_rows.values())
    print(
        f"weak rows: {weak_total} across banks {profile.probed_banks} "
        f"at {profile.retention_interval_ms} ms; duplicate map entries: "
        f"{len(profile.duplicate_map)}"
    )
    attempts = profile.budget.get("probe.attempts", 0)
    commits = profile.budget.get("probe.commits", 0)
    print(f"probe budget: {attempts} attempts, {commits} committed")

    if report is not None:
        print(report.summary())
        for diff in report.mismatched:
            print(
                f"  MISMATCH {diff.name}: inferred {diff.inferred!r} "
                f"!= actual {diff.actual!r}"
            )
        if args.action == "verify":
            return 0 if report.ok else 1
    return 0


def _add_matrix_args(parser, workloads_required: bool = True) -> None:
    """Attach the shared workloads x mechanisms task-matrix options."""
    if workloads_required:
        parser.add_argument(
            "workload", nargs="+", choices=sorted(WORKLOADS),
            metavar="workload",
        )
    else:
        # No ``choices`` here: argparse (< 3.12) rejects the empty
        # default of an optional positional against them. Validated in
        # _matrix_tasks instead.
        parser.add_argument("workload", nargs="*", metavar="workload")
    parser.add_argument(
        "--mechanisms", nargs="+", default=["baseline", "crow-cache"],
        metavar="MECH",
        help="mechanisms to sweep (default: baseline crow-cache; "
             "`repro mechanisms` lists the registry)",
    )
    parser.add_argument(
        "--mix", action="store_true",
        help="treat the workload list as one multiprogrammed mix "
             "(default: one single-core task per workload)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="collect telemetry per task (digests appear in the journal)",
    )
    parser.add_argument("--instructions", type=int, default=40_000)
    parser.add_argument("--warmup", type=int, default=15_000)
    parser.add_argument("--density", type=int, default=8,
                        choices=(8, 16, 32, 64))
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CROW (ISCA 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload or mix")
    run.add_argument("workload", nargs="+", choices=sorted(WORKLOADS),
                     metavar="workload")
    run.add_argument("--mechanism", default="crow-cache", metavar="MECH",
                     help="mechanism name (`repro mechanisms` lists them)")
    run.add_argument("--instructions", type=int, default=40_000)
    run.add_argument("--warmup", type=int, default=15_000)
    run.add_argument("--density", type=int, default=8,
                     choices=(8, 16, 32, 64))
    run.add_argument("--copy-rows", type=int, default=8)
    run.add_argument("--prefetcher", action="store_true")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--no-baseline", dest="baseline", action="store_false",
                     help="skip the baseline comparison run")
    run.set_defaults(func=_cmd_run)

    stats = sub.add_parser(
        "stats",
        help="run with telemetry and print the observability report",
    )
    stats.add_argument("workload", nargs="+", choices=sorted(WORKLOADS),
                       metavar="workload")
    stats.add_argument("--mechanism", default="crow-cache", metavar="MECH",
                       help="mechanism name (`repro mechanisms` lists them)")
    stats.add_argument("--instructions", type=int, default=40_000)
    stats.add_argument("--warmup", type=int, default=15_000)
    stats.add_argument("--density", type=int, default=8,
                       choices=(8, 16, 32, 64))
    stats.add_argument("--prefetcher", action="store_true")
    stats.add_argument("--seed", type=int, default=1)
    stats.add_argument(
        "--epoch", type=int, default=10_000, metavar="CYCLES",
        help="epoch length of the time series, in memory cycles",
    )
    stats.add_argument(
        "--series", default="ipc", metavar="NAME",
        help="epoch series to plot (ipc, row_hit_rate, read_latency, "
             "crow_hit_rate, read_queue, write_queue, mshr)",
    )
    stats.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the full registry export as JSON to FILE",
    )
    stats.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a command trace and write it as JSONL to FILE",
    )
    stats.add_argument(
        "--trace-capacity", type=int, default=4096, metavar="N",
        help="trace ring-buffer capacity (default: 4096 commands)",
    )
    stats.set_defaults(func=_cmd_stats)

    camp = sub.add_parser(
        "campaign",
        help="run a workloads x mechanisms sweep on a parallel worker pool",
    )
    _add_matrix_args(camp)
    camp.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count; 1 = serial in-process)",
    )
    camp.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget before the worker is killed",
    )
    camp.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per task after a failure (default: 2)",
    )
    camp.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append a JSONL execution journal to FILE",
    )
    camp.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache (default: fresh temp dir)",
    )
    camp.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="periodically checkpoint each task into DIR; a killed "
             "campaign resumes tasks from their latest checkpoint",
    )
    camp.add_argument(
        "--checkpoint-every", type=int, default=50_000, metavar="CYCLES",
        help="checkpoint cadence in memory cycles (default: 50000)",
    )
    camp.add_argument(
        "--fork-warm", default=None, metavar="DIR",
        help="fork mechanism variants from shared warm images kept in "
             "DIR (functional warm-up runs once per config prefix)",
    )
    camp.set_defaults(func=_cmd_campaign)

    cluster = sub.add_parser(
        "cluster",
        help="distribute a campaign across hosts: coordinator, "
             "pull-based workers, live fleet status",
    )
    csub = cluster.add_subparsers(dest="action", required=True)

    serve = csub.add_parser(
        "serve",
        help="own a campaign: journal its state, lease tasks to workers",
    )
    _add_matrix_args(serve, workloads_required=False)
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (default: 0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--store", required=True, metavar="DIR",
        help="content-addressed result + warm-image store",
    )
    serve.add_argument(
        "--journal", default=None, metavar="FILE",
        help="JSONL campaign journal; an existing file is replayed so a "
             "restarted coordinator resumes where it died",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=15.0, metavar="SECONDS",
        help="revoke a lease whose heartbeat is older than this "
             "(default: 15)",
    )
    serve.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per task after a failure (default: 2)",
    )
    serve.add_argument(
        "--exit-when-done", action="store_true",
        help="stop serving once every task is done or failed",
    )
    serve.add_argument(
        "--fork-warm", action="store_true",
        help="build shared warm images into the store; workers fork "
             "mechanism variants from them instead of re-warming",
    )
    serve.add_argument(
        "--prewarm-accesses", type=int, default=200_000, metavar="N",
        help="functional pre-warm length for --fork-warm "
             "(default: 200000)",
    )
    serve.set_defaults(func=_cmd_cluster_serve)

    work = csub.add_parser(
        "work", help="pull and execute leases from a coordinator"
    )
    work.add_argument(
        "--connect", type=_connect_endpoint, required=True,
        metavar="HOST:PORT", help="coordinator endpoint",
    )
    work.add_argument(
        "--store", default=None, metavar="DIR",
        help="local result cache (default: fresh temp dir); point "
             "workers on one host at the same DIR to share results",
    )
    work.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker name in fleet status (default: <hostname>-<pid>)",
    )
    work.add_argument(
        "--jobs", type=int, default=1,
        help="runner slots (default: 1 = in-process execution)",
    )
    work.add_argument(
        "--retries", type=int, default=0,
        help="local attempts before reporting failure (default: 0 — "
             "the coordinator already retries across the fleet)",
    )
    work.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint running tasks into DIR; re-leased tasks "
             "resume from the latest checkpoint on this host",
    )
    work.add_argument(
        "--checkpoint-every", type=int, default=50_000, metavar="CYCLES",
        help="checkpoint cadence in memory cycles (default: 50000)",
    )
    work.set_defaults(func=_cmd_cluster_work)

    status = csub.add_parser(
        "status", help="print a live fleet + campaign status report"
    )
    status.add_argument(
        "--connect", type=_connect_endpoint, required=True,
        metavar="HOST:PORT", help="coordinator endpoint",
    )
    status.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="status fetch timeout (default: 5)",
    )
    status.add_argument(
        "--json", action="store_true",
        help="print the raw status payload as JSON",
    )
    status.set_defaults(func=_cmd_cluster_status)

    submit = csub.add_parser(
        "submit", help="add a task matrix to a running campaign"
    )
    submit.add_argument(
        "--connect", type=_connect_endpoint, required=True,
        metavar="HOST:PORT", help="coordinator endpoint",
    )
    _add_matrix_args(submit)
    submit.set_defaults(func=_cmd_cluster_submit)

    snap = sub.add_parser(
        "snapshot",
        help="inspect, verify, diff, or resume snapshot files",
    )
    snap.add_argument(
        "action", choices=("inspect", "verify", "diff", "resume"),
        help="inspect: print the header; verify: check the integrity "
             "digest; diff: compare two snapshots; resume: continue a "
             "checkpointed run to completion",
    )
    snap.add_argument("path", help="snapshot file")
    snap.add_argument(
        "path2", nargs="?", default=None,
        help="second snapshot (diff only)",
    )
    snap.add_argument(
        "--limit", type=int, default=40, metavar="N",
        help="max differences to print for diff (default: 40)",
    )
    snap.set_defaults(func=_cmd_snapshot)

    wl = sub.add_parser("workloads", help="list the workload suite")
    wl.set_defaults(func=_cmd_workloads)

    mech = sub.add_parser(
        "mechanisms",
        help="list the mechanism plugin registry, or --verify every "
             "plugin against the conformance oracle + digest matrix",
    )
    mech.add_argument(
        "--verify", action="store_true",
        help="run every registered mechanism through a short strict-"
             "conformance simulation and compare telemetry digests "
             "against the committed oracle",
    )
    mech.add_argument("--workload", default="libq",
                      choices=sorted(WORKLOADS))
    mech.add_argument("--instructions", type=int, default=2_000)
    mech.add_argument("--warmup", type=int, default=500)
    mech.add_argument("--seed", type=int, default=1)
    mech.add_argument(
        "--digests", type=Path,
        default=Path("tests/data/expected_digests.json"),
        help="oracle digest file (default: tests/data/"
             "expected_digests.json)",
    )
    mech.add_argument(
        "--report-dir", type=Path, default=None, metavar="DIR",
        help="write one JSON verification report per mechanism to DIR",
    )
    mech.set_defaults(func=_cmd_mechanisms)

    tm = sub.add_parser("timings", help="print timing parameters")
    tm.add_argument("--density", type=int, default=8, choices=(8, 16, 32, 64))
    tm.set_defaults(func=_cmd_timings)

    ov = sub.add_parser("overheads", help="print substrate cost model")
    ov.add_argument("--copy-rows", type=int, default=8)
    ov.set_defaults(func=_cmd_overheads)

    est = sub.add_parser(
        "estimate",
        help="energy/area estimator framework: list backends, estimate "
             "a config, explain arbitration, cache stats, verify",
    )
    esub = est.add_subparsers(dest="action", required=True)
    backends = esub.add_parser(
        "backends", help="list the estimator backend registry"
    )
    backends.add_argument("--json", type=Path, default=None, metavar="FILE")
    energy = esub.add_parser(
        "energy", help="estimate DRAM channel energy coefficients"
    )
    energy.add_argument("--density", type=int, default=8,
                        choices=(8, 16, 32, 64))
    energy.add_argument(
        "--backend", default=None,
        help="restrict arbitration to one registered backend",
    )
    energy.add_argument("--json", type=Path, default=None, metavar="FILE")
    area = esub.add_parser(
        "area", help="estimate CROW substrate area overheads"
    )
    area.add_argument("--copy-rows", type=int, default=8)
    area.add_argument("--json", type=Path, default=None, metavar="FILE")
    explain = esub.add_parser(
        "explain", help="show the accuracy arbitration for one query"
    )
    explain.add_argument(
        "target",
        choices=("channel-energy", "crow-overheads", "decoder-area",
                 "activation-power"),
    )
    explain.add_argument("--density", type=int, default=8,
                         choices=(8, 16, 32, 64))
    explain.add_argument("--copy-rows", type=int, default=8)
    explain.add_argument("--rows", type=int, default=512)
    explain.add_argument("--n-rows", type=int, default=2)
    explain.add_argument("--json", type=Path, default=None, metavar="FILE")
    cache = esub.add_parser(
        "cache", help="estimator record-cache statistics"
    )
    cache.add_argument("--json", type=Path, default=None, metavar="FILE")
    verify = esub.add_parser(
        "verify",
        help="arbitrate 3 mechanism configs over all backends and "
             "compare reference-backend outputs against the committed "
             "expectations (the CI estimator-smoke job)",
    )
    verify.add_argument(
        "--expected", type=Path,
        default=Path("tests/data/expected_estimates.json"),
        help="expectation file (default: tests/data/"
             "expected_estimates.json)",
    )
    verify.add_argument(
        "--report-dir", type=Path, default=None, metavar="DIR",
        help="write one JSON verification report per config to DIR",
    )
    est.set_defaults(func=_cmd_estimate)

    check = sub.add_parser(
        "check",
        help="run the DRAM/CROW protocol-conformance oracle over "
             "randomized scenarios or the perf matrix",
    )
    check.add_argument(
        "--cases", type=int, default=25, metavar="N",
        help="random scenarios to sweep (default: 25)",
    )
    check.add_argument(
        "--seed", type=int, default=0,
        help="base seed; case i uses seed+i (default: 0)",
    )
    check.add_argument(
        "--reproduce", type=int, default=None, metavar="CASE_SEED",
        help="re-run one scenario from its case seed and print it",
    )
    check.add_argument(
        "--scenario", default=None, metavar="JSON",
        help="run one scenario from its JSON spec (as printed on failure)",
    )
    check.add_argument(
        "--perf-matrix", action="store_true",
        help="check the 4-case perf-suite matrix instead of random "
             "scenarios",
    )
    check.add_argument(
        "--mode", default="report", choices=("strict", "report"),
        help="strict raises on the first violation; report collects all "
             "(default: report)",
    )
    check.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the merged violation report as JSON to FILE",
    )
    check.set_defaults(func=_cmd_check)

    probe = sub.add_parser(
        "probe",
        help="infer DRAM structure/timings from raw command probing "
             "(repro.probe) and verify against the generating config",
    )
    probe.add_argument(
        "action", choices=("discover", "verify", "report"),
        help="discover prints the inferred profile; verify diffs it "
             "against the generating config and exits non-zero on any "
             "mismatch; report does the diff but always exits zero",
    )
    probe.add_argument("--mechanism", default="baseline", metavar="MECH",
                       help="mechanism name (`repro mechanisms` lists them)")
    probe.add_argument("--density", type=int, default=8,
                       choices=(8, 16, 32, 64))
    probe.add_argument("--banks", type=int, default=None, metavar="N",
                       help="banks per rank (default: geometry default)")
    probe.add_argument("--rows-per-bank", type=int, default=None,
                       metavar="N")
    probe.add_argument("--rows-per-subarray", type=int, default=None,
                       metavar="N")
    probe.add_argument("--copy-rows", type=int, default=8, metavar="N",
                       help="copy rows per subarray for CROW mechanisms")
    probe.add_argument("--weak-rows", type=int, default=3, metavar="N",
                       help="retention-weak rows per subarray")
    probe.add_argument("--refresh-window", type=float, default=64.0,
                       metavar="MS")
    probe.add_argument("--target-window", type=float, default=128.0,
                       metavar="MS",
                       help="target (extended) refresh window for "
                            "CROW-ref devices")
    probe.add_argument("--seed", type=int, default=1)
    probe.add_argument("--channel", type=int, default=0)
    probe.add_argument(
        "--no-shadow", action="store_true",
        help="drop the strict conformance shadow (CROW mapping and "
             "weak-row observables become unavailable)",
    )
    probe.add_argument(
        "--probe-banks", default=None, metavar="B0,B1,...",
        help="banks to scan for weak rows / duplicates (default: all)",
    )
    probe.add_argument(
        "--retention-interval", type=float, default=None, metavar="MS",
        help="refresh interval for retention experiments (default: the "
             "device's target window)",
    )
    probe.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the profile (and verify report) as JSON to FILE",
    )
    probe.set_defaults(func=_cmd_probe)

    perf = sub.add_parser(
        "perf",
        help="run the performance microbenchmark suite / regression gate",
    )
    perf.add_argument(
        "--output", default="BENCH_perf.json", metavar="FILE",
        help="where to write the byte-stable results JSON",
    )
    perf.add_argument(
        "--repeat", type=int, default=2, metavar="N",
        help="timed runs per case; wall time is the best-of-N (default: 2)",
    )
    perf.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare against a baseline JSON; exit 3 on composite "
             "regression, 4 on telemetry-digest mismatch",
    )
    perf.add_argument(
        "--threshold", type=float, default=0.15, metavar="FRACTION",
        help="allowed composite drop vs the baseline (default: 0.15)",
    )
    perf.add_argument(
        "--engine", default="event", choices=["event", "batch"],
        help="simulation engine to benchmark (digests are engine-"
             "invariant, so either compares against the same baseline)",
    )
    perf.set_defaults(func=_cmd_perf)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        # Bad configuration (unknown mechanism name, invalid knob):
        # argparse's convention is exit code 2 with a message on stderr.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-output: the Unix
        # convention is a quiet exit, not a traceback. Detach stdout so
        # interpreter shutdown does not raise again on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, what a killed-by-SIGPIPE shell reports


if __name__ == "__main__":
    sys.exit(main())
