"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``run`` — simulate one workload (or a mix) under a mechanism and print
  the headline metrics, optionally against a baseline run.
* ``campaign`` — sweep workloads × mechanisms on a parallel, cached,
  fault-tolerant worker pool (``repro.exec``) and print a result table.
* ``workloads`` — list the named workload suite.
* ``timings`` — print the baseline + CROW command timing parameters.
* ``overheads`` — print the CROW substrate cost model (Section 6).
"""

from __future__ import annotations

import argparse
import sys

from repro import SystemConfig, WORKLOADS, run_mix, run_workload
from repro.analysis import TextTable
from repro.sim.config import MECHANISMS


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.workload
    config_kwargs = dict(
        mechanism=args.mechanism,
        density_gbit=args.density,
        copy_rows=args.copy_rows,
        prefetcher=args.prefetcher,
        seed=args.seed,
    )
    run_kwargs = dict(
        instructions=args.instructions,
        warmup_instructions=args.warmup,
    )

    def simulate(mechanism: str):
        config = SystemConfig(
            cores=len(names), **{**config_kwargs, "mechanism": mechanism}
        )
        if len(names) == 1:
            return run_workload(names[0], config, **run_kwargs)
        return run_mix(names, config, **run_kwargs)

    result = simulate(args.mechanism)
    table = TextTable(
        f"{'+'.join(names)} under {args.mechanism}",
        ["metric", "value"],
    )
    if len(names) == 1:
        table.add_row("IPC", result.ipc)
        table.add_row("MPKI", result.core_mpki[0])
    else:
        table.add_row("IPC (sum)", result.ipc_sum)
    table.add_row("memory cycles", result.cycles)
    table.add_row("DRAM energy (uJ)", result.total_energy_nj / 1000.0)
    table.add_row("refresh window (ms)", result.refresh_window_ms)
    if result.crow_hit_rate is not None:
        table.add_row("CROW-table hit rate", result.crow_hit_rate)
    if args.baseline and args.mechanism != "baseline":
        base = simulate("baseline")
        table.add_row("speedup vs baseline", result.speedup_over(base))
        table.add_row("energy vs baseline", result.energy_ratio(base))
    print(table.render())
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import tempfile

    from repro.exec import ParallelCampaign, TaskSpec

    run_kwargs = dict(
        instructions=args.instructions,
        warmup_instructions=args.warmup,
        seed=args.seed,
    )
    tasks = []
    for mechanism in args.mechanisms:
        config = SystemConfig(
            cores=len(args.workload) if args.mix else 1,
            mechanism=mechanism,
            density_gbit=args.density,
        )
        if args.mix:
            tasks.append(TaskSpec.mix(args.workload, config, **run_kwargs))
        else:
            tasks.extend(
                TaskSpec.workload(name, config, **run_kwargs)
                for name in args.workload
            )

    directory = args.cache_dir or tempfile.mkdtemp(prefix="repro-campaign-")
    with ParallelCampaign(
        directory,
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        journal=args.journal,
        progress=sys.stderr.isatty(),
    ) as campaign:
        outcomes = campaign.run(tasks)

        table = TextTable(
            f"campaign over {len(tasks)} task(s), jobs={campaign.runner.jobs}",
            ["task", "status", "IPC", "mem cycles", "energy (uJ)"],
        )
        baselines = {}
        for outcome in outcomes:
            spec, result = outcome.spec, outcome.result
            if result is not None and spec.config.mechanism == "baseline":
                baselines[spec.names] = result
        for outcome in outcomes:
            spec, result = outcome.spec, outcome.result
            if not outcome.ok:
                table.add_row(spec.label, f"FAILED ({outcome.error})",
                              "-", "-", "-")
                continue
            status = "cached" if outcome.cached else "ran"
            ipc = result.ipc if result.cores == 1 else result.ipc_sum
            base = baselines.get(spec.names)
            cell = f"{ipc:.4f}"
            if base is not None and spec.config.mechanism != "baseline":
                cell += f" ({result.speedup_over(base):.3f}x)"
            table.add_row(
                spec.label, status, cell, result.cycles,
                f"{result.total_energy_nj / 1000.0:.2f}",
            )
        print(table.render())
        failed = sum(1 for outcome in outcomes if not outcome.ok)
        print(
            f"done={len(outcomes) - failed} failed={failed} "
            f"cache hits={campaign.hits} misses={campaign.misses} "
            f"cache dir={directory}"
        )
    return 1 if failed else 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    table = TextTable(
        "named workload suite", ["name", "class", "suite", "description"]
    )
    for name in sorted(WORKLOADS):
        w = WORKLOADS[name]
        table.add_row(w.name, w.expected_class, w.suite, w.description)
    print(table.render())
    return 0


def _cmd_timings(args: argparse.Namespace) -> int:
    from repro.dram import CrowTimings, TimingParameters

    timing = TimingParameters.lpddr4(density_gbit=args.density)
    crow = CrowTimings.from_factors(timing)
    table = TextTable(
        f"LPDDR4 timings at {args.density} Gbit (cycles @ 1600 MHz)",
        ["parameter", "cycles"],
    )
    for name in ("trcd", "tras", "trp", "twr", "tcl", "trfc", "trefi"):
        table.add_row(name.upper(), getattr(timing, name))
    table.add_row("ACT-t tRCD (full pair)", crow.trcd_act_t_full)
    table.add_row("ACT-t tRAS (early term.)", crow.tras_act_t_early)
    table.add_row("ACT-c tRAS (full restore)", crow.tras_act_c_full)
    print(table.render())
    return 0


def _cmd_overheads(args: argparse.Namespace) -> int:
    from repro.circuit import DecoderAreaModel
    from repro.core import crow_table_storage_kib

    area = DecoderAreaModel()
    table = TextTable(
        f"CROW substrate overheads ({args.copy_rows} copy rows/subarray)",
        ["quantity", "value"],
    )
    table.add_row(
        "CROW-table storage / channel (KiB)",
        crow_table_storage_kib(copy_rows_per_subarray=args.copy_rows),
    )
    table.add_row(
        "decoder area overhead",
        f"{area.copy_decoder_overhead(args.copy_rows):.2%}",
    )
    table.add_row(
        "chip area overhead", f"{area.crow_chip_overhead(args.copy_rows):.2%}"
    )
    table.add_row(
        "capacity overhead",
        f"{area.crow_capacity_overhead(args.copy_rows):.2%}",
    )
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CROW (ISCA 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload or mix")
    run.add_argument("workload", nargs="+", choices=sorted(WORKLOADS),
                     metavar="workload")
    run.add_argument("--mechanism", default="crow-cache", choices=MECHANISMS)
    run.add_argument("--instructions", type=int, default=40_000)
    run.add_argument("--warmup", type=int, default=15_000)
    run.add_argument("--density", type=int, default=8,
                     choices=(8, 16, 32, 64))
    run.add_argument("--copy-rows", type=int, default=8)
    run.add_argument("--prefetcher", action="store_true")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--no-baseline", dest="baseline", action="store_false",
                     help="skip the baseline comparison run")
    run.set_defaults(func=_cmd_run)

    camp = sub.add_parser(
        "campaign",
        help="run a workloads x mechanisms sweep on a parallel worker pool",
    )
    camp.add_argument("workload", nargs="+", choices=sorted(WORKLOADS),
                      metavar="workload")
    camp.add_argument(
        "--mechanisms", nargs="+", default=["baseline", "crow-cache"],
        choices=MECHANISMS, metavar="MECH",
        help="mechanisms to sweep (default: baseline crow-cache)",
    )
    camp.add_argument(
        "--mix", action="store_true",
        help="treat the workload list as one multiprogrammed mix "
             "(default: one single-core task per workload)",
    )
    camp.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count; 1 = serial in-process)",
    )
    camp.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget before the worker is killed",
    )
    camp.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per task after a failure (default: 2)",
    )
    camp.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append a JSONL execution journal to FILE",
    )
    camp.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache (default: fresh temp dir)",
    )
    camp.add_argument("--instructions", type=int, default=40_000)
    camp.add_argument("--warmup", type=int, default=15_000)
    camp.add_argument("--density", type=int, default=8,
                      choices=(8, 16, 32, 64))
    camp.add_argument("--seed", type=int, default=0)
    camp.set_defaults(func=_cmd_campaign)

    wl = sub.add_parser("workloads", help="list the workload suite")
    wl.set_defaults(func=_cmd_workloads)

    tm = sub.add_parser("timings", help="print timing parameters")
    tm.add_argument("--density", type=int, default=8, choices=(8, 16, 32, 64))
    tm.set_defaults(func=_cmd_timings)

    ov = sub.add_parser("overheads", help="print substrate cost model")
    ov.add_argument("--copy-rows", type=int, default=8)
    ov.set_defaults(func=_cmd_overheads)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
