"""CROW-cache and CROW-ref operating together (Section 8.3).

Both mechanisms share one copy-row pool and one CROW-table: CROW-ref pins
the copy rows it needs for weak-row remapping (and retires weak copy rows),
and CROW-cache uses whatever remains. A single extra Special bit — here
the structural :class:`~repro.core.table.EntryOwner` tag — distinguishes
the two uses of an entry.
"""

from __future__ import annotations

from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import CommandKind, RowId, RowKind
from repro.dram.retention import RetentionModel
from repro.dram.timing import CrowTimings, TimingParameters
from repro.core.cache import CrowCache
from repro.core.ref import CrowRef
from repro.core.table import CrowTable

__all__ = ["CrowCacheRef"]


class CrowCacheRef(Mechanism):
    """Combined CROW-cache + CROW-ref mechanism (one per channel)."""

    name = "crow-cache+ref"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        retention: RetentionModel,
        crow: CrowTimings | None = None,
        channel: int = 0,
        base_window_ms: float = 64.0,
        allow_partial_restore: bool = True,
        reduced_twr: bool = True,
        act_c_early_termination: bool = True,
        evict_partial: str = "bypass",
    ) -> None:
        super().__init__(geometry, timing)
        self.table = CrowTable(geometry)
        # CROW-ref profiles and pins its entries first; CROW-cache then
        # sees only the remaining free ways.
        self.ref = CrowRef(
            geometry,
            timing,
            retention,
            table=self.table,
            crow=crow,
            channel=channel,
            base_window_ms=base_window_ms,
        )
        self.cache = CrowCache(
            geometry,
            timing,
            crow=crow,
            table=self.table,
            allow_partial_restore=allow_partial_restore,
            reduced_twr=reduced_twr,
            act_c_early_termination=act_c_early_termination,
            evict_partial=evict_partial,
        )

    @property
    def achieved_refresh_window_ms(self) -> float:
        """The refresh window this channel safely runs at."""
        return self.ref.achieved_refresh_window_ms

    # ------------------------------------------------------------------
    # Mechanism interface — dispatch between the two components
    # ------------------------------------------------------------------
    def service_row(self, bank: int, row: int) -> RowId:
        """Physical row that serves requests for ``row`` (remap-aware)."""
        return self.ref.service_row(bank, row)

    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Mechanism hook: choose the activation command for ``row``."""
        if (bank, row) in self.ref.remap:
            return self.ref.plan_activation(bank, row, now)
        return self.cache.plan_activation(bank, row, now)

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        # A plain ACT whose target is a copy row is a CROW-ref redirect;
        # everything else belongs to CROW-cache.
        """Mechanism hook: an activation command was issued."""
        if plan.kind is CommandKind.ACT and plan.rows[0].kind is RowKind.COPY:
            self.ref.on_activate(bank, plan, now)
            return
        self.cache.on_activate(bank, plan, now)

    def on_precharge(self, bank: int, result, now: int) -> None:
        """Mechanism hook: a precharge closed ``result.rows``."""
        self.cache.on_precharge(bank, result, now)

    def on_refresh(self, refreshed_rows: range, now: int) -> None:
        """Mechanism hook: a REF covered ``refreshed_rows``."""
        self.cache.on_refresh(refreshed_rows, now)

    def hit_rate(self) -> float:
        """CROW-table hit rate of the cache component."""
        return self.cache.hit_rate()

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The shared table is serialized once, at this wrapper."""
        return {
            "table": self.table.state_dict(),
            "ref": self.ref.state_dict(include_table=False),
            "cache": self.cache.state_dict(include_table=False),
        }

    def load_state_dict(self, state: dict) -> None:
        self.table.load_state_dict(state["table"])
        self.ref.load_state_dict(state["ref"])
        self.cache.load_state_dict(state["cache"])

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        merged = self.cache.stats()
        merged.update(self.ref.stats())
        return merged

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.cache.reset_stats()
