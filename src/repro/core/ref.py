"""CROW-ref: weak-row remapping to extend the refresh interval (Section 4.2).

At construction ("system boot"), CROW-ref profiles every subarray through
the retention model, retires retention-weak *copy* rows from service
(footnote 5), and remaps each weak *regular* row to a strong copy row in
the same subarray. If every subarray's weak rows fit in its copy rows, the
whole channel can refresh at the extended interval (e.g. 128 ms instead of
64 ms); otherwise CROW-ref falls back to the default interval, which keeps
correctness at the cost of the energy/performance benefit (Section 4.2.1).

Remapped rows are *redirected*, not duplicated: the regular row is never
used again, so activations of a remapped row are plain ``ACT`` commands to
the copy row with conventional timings.

Dynamic (runtime/VRT) remapping is supported via :meth:`request_remap`:
the next activation of the victim row becomes a fully-restoring ``ACT-c``
that copies its data into a free copy row, after which the row is served
from the copy (Section 4.2.3).
"""

from __future__ import annotations

from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import ActTimings, CommandKind, RowId
from repro.dram.retention import RetentionModel
from repro.dram.timing import CrowTimings, TimingParameters
from repro.core.table import CrowTable, EntryOwner

__all__ = ["CrowRef"]


class CrowRef(Mechanism):
    """The CROW-ref mechanism (one instance per channel)."""

    name = "crow-ref"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        retention: RetentionModel,
        table: CrowTable | None = None,
        crow: CrowTimings | None = None,
        channel: int = 0,
        base_window_ms: float = 64.0,
    ) -> None:
        super().__init__(geometry, timing)
        self.retention = retention
        self.table = table if table is not None else CrowTable(geometry)
        self.crow = crow if crow is not None else CrowTimings.from_factors(timing)
        self.channel = channel
        self.base_window_ms = base_window_ms
        self.target_window_ms = retention.target_interval_ms
        self.remap: dict[tuple[int, int], RowId] = {}
        self.pending_remaps: set[tuple[int, int]] = set()
        self.remap_failures = 0
        self.fallback_subarrays = 0
        #: Runtime (VRT) remaps completed via ACT-c (Section 4.2.3).
        self.dynamic_remaps = 0
        self._profile()

    # ------------------------------------------------------------------
    # Boot-time profiling and remapping (Sections 4.2.1-4.2.2)
    # ------------------------------------------------------------------
    def _profile(self) -> None:
        geometry = self.geometry
        rows_per_subarray = geometry.rows_per_subarray
        for bank in range(geometry.banks_per_channel):
            for subarray in range(geometry.subarrays_per_bank):
                weak = self.retention.weak_regular_rows(
                    self.channel, bank, subarray
                )
                weak_copies = self.retention.weak_copy_rows(
                    self.channel, bank, subarray
                )
                usable_ways = [
                    w
                    for w in range(geometry.copy_rows_per_subarray)
                    if w not in weak_copies
                ]
                if len(weak) > len(usable_ways):
                    self.fallback_subarrays += 1
                    continue
                for way in weak_copies:
                    self.table.mark_unusable(bank, subarray, way)
                for index, way in zip(sorted(weak), usable_ways):
                    entry = self.table.entry_for_copy_row(bank, subarray, way)
                    self.table.allocate(
                        bank, subarray, index, EntryOwner.REF, now=0, entry=entry
                    )
                    entry.is_fully_restored = True
                    bank_row = subarray * rows_per_subarray + index
                    self.remap[(bank, bank_row)] = RowId.copy(subarray, way)

    @property
    def achieved_refresh_window_ms(self) -> float:
        """The refresh window this channel can safely run at."""
        if self.fallback_subarrays:
            return self.base_window_ms
        return self.target_window_ms

    @property
    def remapped_rows(self) -> int:
        """Weak regular rows currently remapped to copy rows."""
        return len(self.remap)

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def service_row(self, bank: int, row: int) -> RowId:
        """Physical row that serves requests for ``row`` (remap-aware)."""
        mapped = self.remap.get((bank, row))
        if mapped is not None:
            return mapped
        return RowId.regular(row, self.geometry.rows_per_subarray)

    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Mechanism hook: choose the activation command for ``row``."""
        if (bank, row) in self.pending_remaps:
            plan = self._plan_dynamic_remap(bank, row)
            if plan is not None:
                return plan
        return ActivationPlan(
            kind=CommandKind.ACT, rows=(self.service_row(bank, row),)
        )

    def _plan_dynamic_remap(self, bank: int, row: int) -> ActivationPlan | None:
        subarray, index = divmod(row, self.geometry.rows_per_subarray)
        entry = self.table.free_entry(bank, subarray)
        if entry is None:
            return None
        regular = RowId.regular(row, self.geometry.rows_per_subarray)
        # The copy must end up fully restored: it will later be activated
        # alone, so early restoration termination is forbidden here.
        timings = ActTimings(
            trcd=self.crow.trcd_act_c,
            tras_full=self.crow.tras_act_c_full,
            tras_early=self.crow.tras_act_c_full,
            twr=self.crow.twr_mra_full,
        )
        return ActivationPlan(
            kind=CommandKind.ACT_C,
            rows=(regular, RowId.copy(subarray, entry.way)),
            timings=timings,
        )

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Mechanism hook: an activation command was issued."""
        if plan.kind is not CommandKind.ACT_C:
            return
        regular, copy = plan.rows
        bank_row = regular.bank_row(self.geometry.rows_per_subarray)
        if (bank, bank_row) not in self.pending_remaps:
            return
        entry = self.table.entry_for_copy_row(bank, copy.subarray, copy.index)
        self.table.allocate(
            bank, copy.subarray, regular.index, EntryOwner.REF, now, entry
        )
        self.remap[(bank, bank_row)] = copy
        self.pending_remaps.discard((bank, bank_row))
        self.dynamic_remaps += 1

    def on_precharge(self, bank: int, result, now: int) -> None:
        """Mechanism hook: a precharge closed ``result.rows``."""
        if len(result.rows) != 2:
            return
        _regular, copy = result.rows
        entry = self.table.entry_for_copy_row(bank, copy.subarray, copy.index)
        if entry.allocated and entry.owner is EntryOwner.REF:
            entry.is_fully_restored = result.fully_restored

    # ------------------------------------------------------------------
    # Dynamic (VRT) remapping — Section 4.2.3
    # ------------------------------------------------------------------
    def request_remap(self, bank: int, row: int) -> bool:
        """Ask for ``row`` to be remapped at its next activation.

        Returns False (and counts a failure) when the subarray has no free
        copy row left.
        """
        if (bank, row) in self.remap:
            return True
        subarray = row // self.geometry.rows_per_subarray
        if self.table.free_entry(bank, subarray) is None:
            self.remap_failures += 1
            return False
        self.pending_remaps.add((bank, row))
        return True

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self, include_table: bool = True) -> dict:
        """Remap state plus (optionally) the shared CROW-table.

        Boot-time profiling (:meth:`_profile`) re-runs deterministically at
        construction; loading then overwrites the table and remap with the
        saved state, which includes both the boot remaps and any runtime
        (VRT) remaps taken since.
        """
        state = {
            "remap": dict(self.remap),
            "pending_remaps": sorted(self.pending_remaps),
            "remap_failures": self.remap_failures,
            "fallback_subarrays": self.fallback_subarrays,
            "dynamic_remaps": self.dynamic_remaps,
        }
        if include_table:
            state["table"] = self.table.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.remap = dict(state["remap"])
        self.pending_remaps = set(state["pending_remaps"])
        self.remap_failures = state["remap_failures"]
        self.fallback_subarrays = state["fallback_subarrays"]
        self.dynamic_remaps = state["dynamic_remaps"]
        if "table" in state:
            self.table.load_state_dict(state["table"])

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        return {
            "ref_remapped_rows": float(self.remapped_rows),
            "ref_fallback_subarrays": float(self.fallback_subarrays),
            "ref_achieved_window_ms": self.achieved_refresh_window_ms,
            "ref_remap_failures": float(self.remap_failures),
            "ref_dynamic_remaps": float(self.dynamic_remaps),
        }
