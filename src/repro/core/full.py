"""The full CROW substrate: cache + ref + RowHammer, simultaneously.

The paper's central flexibility claim (Section 1, contributions list) is
that one CROW substrate hosts *multiple* mechanisms at the same time: the
CROW-table's Special/owner bits say what each copy row is used for. This
mechanism composes all three on one copy-row pool:

* **CROW-ref** profiles at boot and pins copy rows for weak-row remaps
  (priority: correctness first — refresh extension needs every weak row
  covered),
* the **RowHammer mitigation** pins copy rows at runtime for detected
  victim rows (urgent ``ACT-c`` copies, served ahead of demand traffic),
* **CROW-cache** uses whatever remains for in-DRAM caching.

Row-service priority on activation: hammer remap → ref remap → cache.
"""

from __future__ import annotations

from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import CommandKind, RowId, RowKind
from repro.dram.retention import RetentionModel
from repro.dram.timing import CrowTimings, TimingParameters
from repro.core.cache import CrowCache
from repro.core.ref import CrowRef
from repro.core.rowhammer import RowHammerMitigation
from repro.core.table import CrowTable

__all__ = ["CrowFullSubstrate"]


class CrowFullSubstrate(Mechanism):
    """CROW-cache + CROW-ref + RowHammer mitigation on one table."""

    name = "crow-full"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        retention: RetentionModel,
        crow: CrowTimings | None = None,
        channel: int = 0,
        base_window_ms: float = 64.0,
        hammer_threshold: int = 2000,
        allow_partial_restore: bool = True,
        reduced_twr: bool = True,
        act_c_early_termination: bool = True,
        evict_partial: str = "bypass",
    ) -> None:
        super().__init__(geometry, timing)
        self.table = CrowTable(geometry)
        self.ref = CrowRef(
            geometry, timing, retention, table=self.table, crow=crow,
            channel=channel, base_window_ms=base_window_ms,
        )
        self.hammer = RowHammerMitigation(
            geometry, timing, table=self.table, crow=crow,
            hammer_threshold=hammer_threshold,
        )
        self.cache = CrowCache(
            geometry, timing, crow=crow, table=self.table,
            allow_partial_restore=allow_partial_restore,
            reduced_twr=reduced_twr,
            act_c_early_termination=act_c_early_termination,
            evict_partial=evict_partial,
        )

    @property
    def achieved_refresh_window_ms(self) -> float:
        """The refresh window this channel safely runs at."""
        return self.ref.achieved_refresh_window_ms

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def service_row(self, bank: int, row: int) -> RowId:
        """Physical row that serves requests for ``row`` (remap-aware)."""
        mapped = self.hammer.remap.get((bank, row))
        if mapped is not None:
            return mapped
        return self.ref.service_row(bank, row)

    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Mechanism hook: choose the activation command for ``row``."""
        if (bank, row) in self.hammer.remap or (bank, row) in self.ref.remap:
            return ActivationPlan(
                kind=CommandKind.ACT, rows=(self.service_row(bank, row),)
            )
        return self.cache.plan_activation(bank, row, now)

    def urgent_plan(self, now: int):
        """Mechanism hook: next mechanism-initiated activation, if any."""
        return self.hammer.urgent_plan(now)

    def _is_hammer_victim_copy(self, bank: int, plan: ActivationPlan) -> bool:
        if plan.kind is not CommandKind.ACT_C or not self.hammer._urgent:
            return False
        bank_row = plan.rows[0].bank_row(self.geometry.rows_per_subarray)
        return self.hammer._urgent[0] == (bank, bank_row)

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Mechanism hook: an activation command was issued."""
        if self._is_hammer_victim_copy(bank, plan):
            self.hammer.on_activate(bank, plan, now)
            return
        # Feed the hammer detector with every regular-row activation.
        first = plan.rows[0]
        if first.kind is RowKind.REGULAR:
            self.hammer.note_activation(
                bank, first.bank_row(self.geometry.rows_per_subarray), now
            )
        if plan.kind is CommandKind.ACT and first.kind is RowKind.COPY:
            return      # ref/hammer redirect: nothing to account
        self.cache.on_activate(bank, plan, now)

    def on_precharge(self, bank: int, result, now: int) -> None:
        """Mechanism hook: a precharge closed ``result.rows``."""
        self.cache.on_precharge(bank, result, now)

    def on_refresh(self, refreshed_rows: range, now: int) -> None:
        """Mechanism hook: a REF covered ``refreshed_rows``."""
        self.cache.on_refresh(refreshed_rows, now)
        self.hammer.on_refresh(refreshed_rows, now)

    def hit_rate(self) -> float:
        """Fraction of demand activations served as table hits."""
        return self.cache.hit_rate()

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The shared table is serialized once, at this wrapper."""
        return {
            "table": self.table.state_dict(),
            "ref": self.ref.state_dict(include_table=False),
            "hammer": self.hammer.state_dict(include_table=False),
            "cache": self.cache.state_dict(include_table=False),
        }

    def load_state_dict(self, state: dict) -> None:
        self.table.load_state_dict(state["table"])
        self.ref.load_state_dict(state["ref"])
        self.hammer.load_state_dict(state["hammer"])
        self.cache.load_state_dict(state["cache"])

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        merged = self.cache.stats()
        merged.update(self.ref.stats())
        merged.update(self.hammer.stats())
        return merged

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.cache.reset_stats()
