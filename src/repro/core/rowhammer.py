"""RowHammer mitigation on the CROW substrate (Section 4.3).

A counter-based detector (in the spirit of [16, 45, 62, 103]) tracks
activations per regular row within one refresh window. When a row's count
crosses the hammer threshold, the mechanism asks the controller (through
the ``urgent_plan`` hook) to issue ``ACT-c`` commands that copy the two
physically-adjacent victim rows into copy rows of their subarray. From
then on the victims are served from their copies, so further disturbance
of the original victim cells cannot corrupt live data.
"""

from __future__ import annotations

from collections import deque

from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import ActTimings, CommandKind, RowId, RowKind
from repro.dram.timing import CrowTimings, TimingParameters
from repro.core.table import CrowTable, EntryOwner

__all__ = ["RowHammerMitigation"]


class RowHammerMitigation(Mechanism):
    """Victim-row remapping RowHammer defense (one instance per channel)."""

    name = "crow-hammer"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        table: CrowTable | None = None,
        crow: CrowTimings | None = None,
        hammer_threshold: int = 2000,
    ) -> None:
        super().__init__(geometry, timing)
        self.table = table if table is not None else CrowTable(geometry)
        self.crow = crow if crow is not None else CrowTimings.from_factors(timing)
        self.hammer_threshold = hammer_threshold
        self.counters: dict[tuple[int, int], int] = {}
        self.remap: dict[tuple[int, int], RowId] = {}
        self._urgent: deque[tuple[int, int]] = deque()   # (bank, victim row)
        self.protected_victims = 0
        self.protection_failures = 0

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def service_row(self, bank: int, row: int) -> RowId:
        """Physical row that serves requests for ``row`` (remap-aware)."""
        mapped = self.remap.get((bank, row))
        if mapped is not None:
            return mapped
        return RowId.regular(row, self.geometry.rows_per_subarray)

    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Mechanism hook: choose the activation command for ``row``."""
        return ActivationPlan(
            kind=CommandKind.ACT, rows=(self.service_row(bank, row),)
        )

    def urgent_plan(self, now: int):
        """Copy the next queued victim row into a copy row."""
        while self._urgent:
            bank, victim = self._urgent[0]
            if (bank, victim) in self.remap:
                self._urgent.popleft()
                continue
            subarray, index = divmod(victim, self.geometry.rows_per_subarray)
            entry = self.table.free_entry(bank, subarray)
            if entry is None:
                self._urgent.popleft()
                self.protection_failures += 1
                continue
            regular = RowId.regular(victim, self.geometry.rows_per_subarray)
            timings = ActTimings(
                trcd=self.crow.trcd_act_c,
                tras_full=self.crow.tras_act_c_full,
                tras_early=self.crow.tras_act_c_full,
                twr=self.crow.twr_mra_full,
            )
            return bank, ActivationPlan(
                kind=CommandKind.ACT_C,
                rows=(regular, RowId.copy(subarray, entry.way)),
                timings=timings,
            )
        return None

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Mechanism hook: an activation command was issued."""
        row = plan.rows[0]
        if plan.kind is CommandKind.ACT_C:
            # Completion of a victim copy requested by urgent_plan.
            regular, copy = plan.rows
            bank_row = regular.bank_row(self.geometry.rows_per_subarray)
            if self._urgent and self._urgent[0] == (bank, bank_row):
                self._urgent.popleft()
            entry = self.table.entry_for_copy_row(bank, copy.subarray, copy.index)
            self.table.allocate(
                bank, copy.subarray, regular.index, EntryOwner.HAMMER, now, entry
            )
            self.remap[(bank, bank_row)] = copy
            self.protected_victims += 1
            return
        if row.kind is not RowKind.REGULAR:
            return
        self.note_activation(bank, row.bank_row(self.geometry.rows_per_subarray), now)

    def note_activation(self, bank: int, bank_row: int, now: int) -> None:
        """Count one activation of ``bank_row`` toward hammer detection.

        Split out so that composing mechanisms (the full substrate) can
        feed the detector without routing their own plans through
        ``on_activate``.
        """
        key = (bank, bank_row)
        count = self.counters.get(key, 0) + 1
        self.counters[key] = count
        if count == self.hammer_threshold:
            self._queue_victims(bank, bank_row)

    def _queue_victims(self, bank: int, aggressor: int) -> None:
        for victim in (aggressor - 1, aggressor + 1):
            if not 0 <= victim < self.geometry.rows_per_bank:
                continue
            if (bank, victim) in self.remap:
                continue
            if (bank, victim) not in self._urgent:
                self._urgent.append((bank, victim))

    def on_refresh(self, refreshed_rows: range, now: int) -> None:
        """Refresh restores victim cells; counters for the covered rows
        restart (the detector's window is one refresh pass)."""
        rows = set(
            r % self.geometry.rows_per_bank for r in refreshed_rows
        )
        for key in [k for k in self.counters if k[1] in rows]:
            del self.counters[key]

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self, include_table: bool = True) -> dict:
        state = {
            "counters": dict(self.counters),
            "remap": dict(self.remap),
            "urgent": list(self._urgent),
            "protected_victims": self.protected_victims,
            "protection_failures": self.protection_failures,
        }
        if include_table:
            state["table"] = self.table.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.counters = dict(state["counters"])
        self.remap = dict(state["remap"])
        self._urgent = deque(tuple(v) for v in state["urgent"])
        self.protected_victims = state["protected_victims"]
        self.protection_failures = state["protection_failures"]
        if "table" in state:
            self.table.load_state_dict(state["table"])

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        return {
            "hammer_protected_victims": float(self.protected_victims),
            "hammer_protection_failures": float(self.protection_failures),
            "hammer_remapped_rows": float(len(self.remap)),
        }
