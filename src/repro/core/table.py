"""The CROW-table: copy-row bookkeeping in the memory controller.

One table per DRAM channel (paper Section 3.3). The table is *n*-way
set-associative where *n* is the number of copy rows per subarray; a set is
indexed by (bank, subarray) — or by (bank, subarray group) when the
storage-optimised sharing mode of Section 6.1 is enabled — and way *w*
corresponds to copy row *w* of the subarray.

Each entry stores the fields the paper names: ``Allocated``,
``RegularRowID`` (a pointer to the duplicated/remapped regular row within
the subarray) and ``Special``. ``Special`` is modelled structurally as the
:class:`EntryOwner` tag (cache / ref / hammer) plus the CROW-cache
``isFullyRestored`` bit.
"""

from __future__ import annotations

import enum

from repro.dram.geometry import DramGeometry
from repro.errors import CapacityError, ConfigError

__all__ = ["EntryOwner", "CrowEntry", "CrowTable"]


class EntryOwner(enum.IntEnum):
    """Which mechanism a copy row is currently allocated to."""

    NONE = 0        # free
    CACHE = 1       # CROW-cache duplicate
    REF = 2         # CROW-ref weak-row remap (pinned)
    HAMMER = 3      # RowHammer victim remap (pinned)
    UNUSABLE = 4    # the copy row itself is retention-weak


class CrowEntry:
    """One CROW-table entry (tracks one copy row)."""

    __slots__ = (
        "subarray",
        "way",
        "allocated",
        "regular_row",
        "owner",
        "is_fully_restored",
        "last_use",
    )

    def __init__(self, subarray: int, way: int) -> None:
        self.subarray = subarray
        self.way = way
        self.allocated = False
        self.regular_row = -1
        self.owner = EntryOwner.NONE
        self.is_fully_restored = True
        self.last_use = -1

    def free(self) -> None:
        """Return the entry to the unallocated state."""
        self.allocated = False
        self.regular_row = -1
        self.owner = EntryOwner.NONE
        self.is_fully_restored = True
        self.last_use = -1

    def state_dict(self) -> tuple:
        """Compact positional encoding (tables hold thousands of these)."""
        return (
            self.subarray,
            self.allocated,
            self.regular_row,
            int(self.owner),
            self.is_fully_restored,
            self.last_use,
        )

    def load_state_dict(self, state: tuple) -> None:
        (
            self.subarray,
            self.allocated,
            self.regular_row,
            owner,
            self.is_fully_restored,
            self.last_use,
        ) = state
        self.owner = EntryOwner(owner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrowEntry(sa={self.subarray}, way={self.way}, "
            f"alloc={self.allocated}, row={self.regular_row}, "
            f"owner={self.owner.name}, full={self.is_fully_restored})"
        )


class CrowTable:
    """Per-channel CROW-table.

    Parameters
    ----------
    geometry:
        Memory organization; sizes the sets and ways.
    subarray_group_size:
        Section 6.1 storage optimisation: share one set of entries across
        this many subarrays (1 = dedicated entries per subarray). With
        sharing, at most ``ways`` copy rows can be in use across the whole
        group at once.
    """

    def __init__(self, geometry: DramGeometry, subarray_group_size: int = 1) -> None:
        if subarray_group_size < 1:
            raise ConfigError("subarray_group_size must be >= 1")
        if geometry.subarrays_per_bank % subarray_group_size:
            raise ConfigError(
                "subarray_group_size must divide the subarray count"
            )
        self.geometry = geometry
        self.group_size = subarray_group_size
        self.ways = geometry.copy_rows_per_subarray
        groups_per_bank = geometry.subarrays_per_bank // subarray_group_size
        # Sets materialize lazily on first access: a full table is banks
        # × groups × ways entries (tens of thousands), and short runs
        # touch a small fraction of the subarrays. ``None`` stands for a
        # set whose entries are all still in the freshly-constructed
        # state; :meth:`state_dict` emits the equivalent default tuples,
        # so snapshots are byte-identical to an eager table's.
        self._sets: list[list[list[CrowEntry] | None]] = [
            [None] * groups_per_bank
            for _ in range(geometry.banks_per_channel)
        ]

    # ------------------------------------------------------------------
    # Set access
    # ------------------------------------------------------------------
    def entries(self, bank: int, subarray: int) -> list[CrowEntry]:
        """The set of entries governing ``subarray`` of ``bank``."""
        group = subarray // self.group_size
        entries = self._sets[bank][group]
        if entries is None:
            entries = [
                CrowEntry(subarray=-1, way=w) for w in range(self.ways)
            ]
            self._sets[bank][group] = entries
        return entries

    def lookup(
        self, bank: int, subarray: int, regular_row: int
    ) -> CrowEntry | None:
        """Find the allocated entry duplicating/remapping ``regular_row``."""
        for entry in self.entries(bank, subarray):
            if (
                entry.allocated
                and entry.subarray == subarray
                and entry.regular_row == regular_row
            ):
                return entry
        return None

    def entry_for_copy_row(
        self, bank: int, subarray: int, way: int
    ) -> CrowEntry:
        """The entry that tracks copy row ``way`` of ``subarray``."""
        if not 0 <= way < self.ways:
            raise ConfigError(f"way {way} out of range")
        return self.entries(bank, subarray)[way]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def free_entry(self, bank: int, subarray: int) -> CrowEntry | None:
        """An unallocated entry in the set, if any."""
        for entry in self.entries(bank, subarray):
            if not entry.allocated:
                return entry
        return None

    def lru_entry(
        self,
        bank: int,
        subarray: int,
        owner: EntryOwner,
        require_restored: bool = False,
    ) -> CrowEntry | None:
        """Least-recently-used allocated entry owned by ``owner``.

        With ``require_restored`` only fully-restored entries qualify —
        used by CROW-cache to prefer victims that can be evicted without
        an extra restore activation (Section 4.1.4).
        """
        candidates = [
            entry
            for entry in self.entries(bank, subarray)
            if entry.allocated
            and entry.owner is owner
            and (entry.is_fully_restored or not require_restored)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.last_use)

    def allocate(
        self,
        bank: int,
        subarray: int,
        regular_row: int,
        owner: EntryOwner,
        now: int,
        entry: CrowEntry | None = None,
    ) -> CrowEntry:
        """Bind an entry (a copy row) to ``regular_row``.

        Raises :class:`CapacityError` when the set has no free entry and
        the caller did not provide a victim.
        """
        if entry is None:
            entry = self.free_entry(bank, subarray)
        if entry is None:
            raise CapacityError(
                f"no free copy row in bank {bank} subarray {subarray}"
            )
        entry.subarray = subarray
        entry.allocated = True
        entry.regular_row = regular_row
        entry.owner = owner
        entry.is_fully_restored = False
        entry.last_use = now
        return entry

    def mark_unusable(self, bank: int, subarray: int, way: int) -> None:
        """Retire a retention-weak copy row from service (footnote 5)."""
        entry = self.entry_for_copy_row(bank, subarray, way)
        entry.allocated = True
        entry.subarray = subarray
        entry.regular_row = -1
        entry.owner = EntryOwner.UNUSABLE
        entry.is_fully_restored = True

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Entry contents; the set/way structure is construction-fixed."""
        default_set = [
            CrowEntry(subarray=-1, way=w).state_dict()
            for w in range(self.ways)
        ]
        return {
            "sets": [
                [
                    list(default_set)
                    if entries is None
                    else [entry.state_dict() for entry in entries]
                    for entries in bank_sets
                ]
                for bank_sets in self._sets
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        for bank_sets, bank_state in zip(self._sets, state["sets"]):
            for group, entries_state in enumerate(bank_state):
                entries = bank_sets[group]
                if entries is None:
                    entries = [
                        CrowEntry(subarray=-1, way=w)
                        for w in range(self.ways)
                    ]
                    bank_sets[group] = entries
                for entry, entry_state in zip(entries, entries_state):
                    entry.load_state_dict(entry_state)

    # ------------------------------------------------------------------
    # Statistics / overhead accounting
    # ------------------------------------------------------------------
    def allocated_count(self, owner: EntryOwner | None = None) -> int:
        """Number of allocated entries (optionally per owner)."""
        total = 0
        for bank_sets in self._sets:
            for entries in bank_sets:
                if entries is None:
                    continue
                for entry in entries:
                    if entry.allocated and (owner is None or entry.owner is owner):
                        total += 1
        return total

    def storage_bits(self, special_bits: int = 1) -> int:
        """Eq. 4 storage for this table's actual configuration."""
        from repro.core.analytics import crow_table_storage_bits

        subarrays = (
            self.geometry.banks_per_channel
            * self.geometry.subarrays_per_bank
            // self.group_size
        )
        return crow_table_storage_bits(
            self.geometry.rows_per_subarray,
            self.ways,
            subarrays,
            special_bits,
        )
