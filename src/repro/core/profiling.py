"""Retention profiling (Sections 4.2.1 and 4.2.3).

:class:`RetentionProfiler` models the boot-time and periodic profiling
passes CROW-ref relies on (REAPER-style [87]): a profiling pass queries the
retention oracle for every subarray, and periodic re-profiling discovers
variable-retention-time (VRT) rows that became weak after boot. VRT
discovery feeds :meth:`repro.core.ref.CrowRef.request_remap`.

The module also exposes the *coverage* arithmetic behind multi-round
profiling: a single pass with one data pattern misses data-dependent weak
cells, so profilers run several rounds and/or test at aggressive
conditions; :func:`profiling_coverage` and :func:`recommended_rounds`
quantify the residual-miss risk that CROW-ref's fallback must absorb.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.dram.retention import RetentionModel
from repro.errors import ConfigError

__all__ = ["RetentionProfiler", "profiling_coverage", "recommended_rounds"]

#: Probability that one profiling round (one data pattern / condition
#: combination) exposes a given weak cell. REAPER-style profiling at
#: aggressive conditions pushes per-round coverage high.
DEFAULT_ROUND_COVERAGE = 0.75


def profiling_coverage(
    rounds: int, round_coverage: float = DEFAULT_ROUND_COVERAGE
) -> float:
    """Fraction of weak cells found after ``rounds`` independent rounds."""
    if rounds < 0:
        raise ConfigError("rounds must be non-negative")
    if not 0.0 < round_coverage <= 1.0:
        raise ConfigError("round_coverage must be in (0, 1]")
    return 1.0 - (1.0 - round_coverage) ** rounds


def recommended_rounds(
    target_coverage: float = 0.999,
    round_coverage: float = DEFAULT_ROUND_COVERAGE,
) -> int:
    """Rounds needed so at most ``1 - target_coverage`` weak cells escape."""
    if not 0.0 < target_coverage < 1.0:
        raise ConfigError("target_coverage must be in (0, 1)")
    if not 0.0 < round_coverage < 1.0:
        raise ConfigError("round_coverage must be in (0, 1)")
    return max(
        1,
        math.ceil(
            math.log(1.0 - target_coverage) / math.log(1.0 - round_coverage)
        ),
    )


class RetentionProfiler:
    """Boot-time and periodic retention profiling for one channel."""

    def __init__(
        self,
        geometry: DramGeometry,
        retention: RetentionModel,
        channel: int = 0,
        vrt_rate_per_pass: float = 0.0,
        seed: int = 11,
    ) -> None:
        if vrt_rate_per_pass < 0.0:
            raise ConfigError("vrt_rate_per_pass must be non-negative")
        self.geometry = geometry
        self.retention = retention
        self.channel = channel
        self.vrt_rate_per_pass = vrt_rate_per_pass
        self._rng = np.random.default_rng(seed)
        self.passes = 0
        self._vrt_rows: set[tuple[int, int]] = set()

    def boot_profile(self) -> dict[tuple[int, int], frozenset[int]]:
        """Full-device profile: weak regular rows per (bank, subarray)."""
        self.passes += 1
        result = {}
        for bank in range(self.geometry.banks_per_channel):
            for subarray in range(self.geometry.subarrays_per_bank):
                weak = self.retention.weak_regular_rows(
                    self.channel, bank, subarray
                )
                if weak:
                    result[(bank, subarray)] = weak
        return result

    def periodic_profile(self) -> list[tuple[int, int]]:
        """One re-profiling pass; returns newly-weak (bank, row) pairs.

        VRT cells transition nondeterministically; each pass discovers a
        Poisson-distributed number of new weak rows across the channel.
        """
        self.passes += 1
        discoveries = []
        count = int(self._rng.poisson(self.vrt_rate_per_pass))
        for _ in range(count):
            bank = int(self._rng.integers(self.geometry.banks_per_channel))
            row = int(self._rng.integers(self.geometry.rows_per_bank))
            if (bank, row) in self._vrt_rows:
                continue
            self._vrt_rows.add((bank, row))
            discoveries.append((bank, row))
        return discoveries

    @property
    def known_vrt_rows(self) -> frozenset[tuple[int, int]]:
        """All VRT rows discovered so far."""
        return frozenset(self._vrt_rows)
