"""Closed-form CROW analytics: Equations 1-4 of the paper.

These back both the weak-row feasibility argument for CROW-ref
(Section 4.2.1) and the CROW-table storage-overhead accounting
(Section 6.1). ``benchmarks/bench_sec4_weak_row_probability.py`` and
``bench_sec6_overheads.py`` print the paper's published values next to
these functions' outputs.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

__all__ = [
    "p_weak_row",
    "p_subarray_exceeds",
    "crow_table_entry_bits",
    "crow_table_storage_bits",
    "crow_table_storage_kib",
]


def p_weak_row(bit_error_rate: float, cells_per_row: int) -> float:
    """Eq. 1: probability that a row contains at least one weak cell."""
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ConfigError("bit_error_rate must be a probability")
    if cells_per_row < 1:
        raise ConfigError("cells_per_row must be >= 1")
    return 1.0 - (1.0 - bit_error_rate) ** cells_per_row


def p_subarray_exceeds(n: int, rows_per_subarray: int, p_row: float) -> float:
    """Eq. 2: probability a subarray has *more than* ``n`` weak rows.

    Computed as ``1 - sum_{k=0}^{n} C(N, k) p^k (1-p)^(N-k)``. For the very
    small tail probabilities the paper reports (down to 3e-11) the
    complementary sum loses precision in floating point, so the tail is
    summed directly once it is small enough.
    """
    if n < 0:
        raise ConfigError("n must be >= 0")
    if rows_per_subarray < 1:
        raise ConfigError("rows_per_subarray must be >= 1")
    if not 0.0 <= p_row <= 1.0:
        raise ConfigError("p_row must be a probability")
    head = sum(
        math.comb(rows_per_subarray, k)
        * p_row**k
        * (1.0 - p_row) ** (rows_per_subarray - k)
        for k in range(n + 1)
    )
    complement = 1.0 - head
    if complement > 1e-12:
        return complement
    # Precision-safe tail sum: terms fall off fast, 64 terms suffice.
    tail = 0.0
    for k in range(n + 1, min(rows_per_subarray, n + 64) + 1):
        tail += (
            math.comb(rows_per_subarray, k)
            * p_row**k
            * (1.0 - p_row) ** (rows_per_subarray - k)
        )
    return tail


def crow_table_entry_bits(
    regular_rows_per_subarray: int, special_bits: int = 1
) -> int:
    """Eq. 3: storage per CROW-table entry in bits.

    ``ceil(log2(RR))`` bits of RegularRowID pointer, the Special field,
    and one Allocated bit.
    """
    if regular_rows_per_subarray < 2:
        raise ConfigError("regular_rows_per_subarray must be >= 2")
    if special_bits < 0:
        raise ConfigError("special_bits must be >= 0")
    return math.ceil(math.log2(regular_rows_per_subarray)) + special_bits + 1


def crow_table_storage_bits(
    regular_rows_per_subarray: int,
    copy_rows_per_subarray: int,
    subarrays: int,
    special_bits: int = 1,
) -> int:
    """Eq. 4: total CROW-table storage in bits for one channel."""
    if copy_rows_per_subarray < 0 or subarrays < 1:
        raise ConfigError("invalid copy row / subarray counts")
    entry = crow_table_entry_bits(regular_rows_per_subarray, special_bits)
    return entry * copy_rows_per_subarray * subarrays


def crow_table_storage_kib(
    regular_rows_per_subarray: int = 512,
    copy_rows_per_subarray: int = 8,
    subarrays: int = 1024,
    special_bits: int = 1,
) -> float:
    """Eq. 4 in KiB; the paper's configuration gives ~11 KiB per channel.

    (The paper quotes 11.3, counting kilobytes as 1000 bytes: 90112 bits =
    11264 bytes = 11.26 kB = 11.0 KiB.)
    """
    bits = crow_table_storage_bits(
        regular_rows_per_subarray, copy_rows_per_subarray, subarrays, special_bits
    )
    return bits / 8.0 / 1024.0
