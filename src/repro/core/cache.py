"""CROW-cache: in-DRAM caching of recently-activated rows (Section 4.1).

The mechanism maintains, per subarray, duplicates of the most-recently-
activated regular rows in the subarray's copy rows:

* **hit** — the activated row has a duplicate: issue ``ACT-t`` to open both
  rows simultaneously with reduced tRCD (-38% when the pair is fully
  restored, -21% when partially restored), and optionally terminate
  restoration early (tRAS -33%, tWR -13%).
* **miss, free/clean victim** — issue ``ACT-c`` to open the demand row and
  duplicate it into a copy row (tRAS +18%, or -7% with early termination).
* **miss, partially-restored victim** — the victim pair must first be
  fully restored before eviction (a single-row activation of a partially
  restored row would corrupt data): issue a full-tRAS ``ACT-t`` on the
  victim (``is_restore=True``), after which the demand activation replays
  and takes the clean-victim path.
"""

from __future__ import annotations

from functools import lru_cache

from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.errors import ConfigError
from repro.dram.commands import ActTimings, CommandKind, RowId
from repro.dram.timing import CrowTimings, TimingParameters
from repro.core.table import CrowTable, EntryOwner

__all__ = [
    "CrowCache",
    "crow_act_t_timings",
    "crow_act_c_timings",
]


def _twr_pair(crow: CrowTimings, reduced_twr: bool) -> "tuple[int, int | None]":
    if reduced_twr:
        return crow.twr_mra_early, crow.twr_mra_full
    return crow.twr_mra_full, None


@lru_cache(maxsize=None)
def crow_act_t_timings(
    crow: CrowTimings,
    allow_partial_restore: bool,
    reduced_twr: bool,
    fully_restored: bool,
    force_full: bool = False,
) -> ActTimings:
    """``ACT-t`` timing set for a given pair restoration state.

    Pure function of the CROW timing factors and the config knobs — the
    single source both the live mechanism (:class:`CrowCache`) and the
    compiled engine tables (:mod:`repro.engine.tables`) derive from.
    Cached: the controller re-plans candidate activations every
    scheduling pass, and all inputs are frozen dataclasses or bools.
    """
    trcd = crow.trcd_act_t_full if fully_restored else crow.trcd_act_t_partial
    if force_full:
        return ActTimings(
            trcd=trcd,
            tras_full=crow.tras_act_t_full,
            tras_early=crow.tras_act_t_full,
            twr=crow.twr_mra_full,
        )
    if allow_partial_restore:
        tras_early = (
            crow.tras_act_t_early
            if fully_restored
            else crow.tras_act_t_partial_early
        )
    else:
        tras_early = crow.tras_act_t_full
    twr, twr_full = _twr_pair(crow, reduced_twr)
    return ActTimings(
        trcd=trcd,
        tras_full=crow.tras_act_t_full,
        tras_early=tras_early,
        twr=twr,
        twr_full=twr_full,
    )


@lru_cache(maxsize=None)
def crow_act_c_timings(
    crow: CrowTimings,
    allow_partial_restore: bool,
    reduced_twr: bool,
    act_c_early_termination: bool,
) -> ActTimings:
    """``ACT-c`` (duplicating activation) timing set (cached, pure)."""
    tras_early = (
        crow.tras_act_c_early
        if allow_partial_restore and act_c_early_termination
        else crow.tras_act_c_full
    )
    twr, twr_full = _twr_pair(crow, reduced_twr)
    return ActTimings(
        trcd=crow.trcd_act_c,
        tras_full=crow.tras_act_c_full,
        tras_early=tras_early,
        twr=twr,
        twr_full=twr_full,
    )


class CrowCache(Mechanism):
    """The CROW-cache mechanism (one instance per channel)."""

    name = "crow-cache"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        crow: CrowTimings | None = None,
        table: CrowTable | None = None,
        allow_partial_restore: bool = True,
        reduced_twr: bool = True,
        act_c_early_termination: bool = True,
        evict_partial: str = "bypass",
    ) -> None:
        super().__init__(geometry, timing)
        self.crow = crow if crow is not None else CrowTimings.from_factors(timing)
        self.table = table if table is not None else CrowTable(geometry)
        self.allow_partial_restore = allow_partial_restore
        self.reduced_twr = reduced_twr
        self.act_c_early_termination = act_c_early_termination
        # Eviction policy when every cache way of a set is partially
        # restored (no victim can be evicted safely):
        #   'bypass'  — serve the demand with a plain ACT and skip caching
        #               it this time; the partial entries recover to fully-
        #               restored on a later full-tRAS precharge or refresh.
        #   'restore' — the paper's Section 4.1.4 protocol: spend an extra
        #               full-tRAS ACT-t + PRE to restore the LRU victim,
        #               then cache the demand on the retry. This preserves
        #               MRU insertion exactly but can cascade into extra
        #               activations on low-reuse, conflict-heavy streams.
        # Either way, fully-restored victims are always preferred first.
        if evict_partial not in ("bypass", "restore"):
            raise ConfigError(
                f"evict_partial must be 'bypass' or 'restore', got "
                f"{evict_partial!r}"
            )
        self.evict_partial = evict_partial
        self.hits = 0
        self.misses = 0
        self.uncached = 0
        self.restores = 0
        self.evictions = 0
        self.partial_restores = 0

    # ------------------------------------------------------------------
    # Timing selection
    # ------------------------------------------------------------------
    def act_t_timings(
        self, fully_restored: bool, force_full: bool = False
    ) -> ActTimings:
        """Timings for ``ACT-t`` given the pair's restoration state."""
        return crow_act_t_timings(
            self.crow,
            self.allow_partial_restore,
            self.reduced_twr,
            fully_restored,
            force_full,
        )

    def act_c_timings(self) -> ActTimings:
        """Timings for the ``ACT-c`` duplication command."""
        return crow_act_c_timings(
            self.crow,
            self.allow_partial_restore,
            self.reduced_twr,
            self.act_c_early_termination,
        )

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Mechanism hook: choose the activation command for ``row``."""
        rows_per_subarray = self.geometry.rows_per_subarray
        subarray, index = divmod(row, rows_per_subarray)
        # The base-class service_row memo returns exactly
        # RowId.regular(row, rows_per_subarray) — reuse it instead of
        # constructing a fresh RowId on every (re-)planning pass.
        regular = self.service_row(bank, row)
        entry = self.table.lookup(bank, subarray, index)
        if entry is not None and entry.owner is EntryOwner.CACHE:
            return ActivationPlan(
                kind=CommandKind.ACT_T,
                rows=(regular, RowId.copy(subarray, entry.way)),
                timings=self.act_t_timings(entry.is_fully_restored),
            )
        victim = self.table.free_entry(bank, subarray)
        if victim is None:
            # Prefer a fully-restored victim: it can be evicted without an
            # extra restore activation (Section 4.1.4).
            victim = self.table.lru_entry(
                bank, subarray, EntryOwner.CACHE, require_restored=True
            )
        if victim is None and self.evict_partial == "restore":
            lru = self.table.lru_entry(bank, subarray, EntryOwner.CACHE)
            if lru is not None:
                # Safe-eviction protocol: fully restore the pair first.
                victim_regular = RowId.regular(
                    lru.subarray * rows_per_subarray + lru.regular_row,
                    rows_per_subarray,
                )
                return ActivationPlan(
                    kind=CommandKind.ACT_T,
                    rows=(victim_regular, RowId.copy(lru.subarray, lru.way)),
                    timings=self.act_t_timings(
                        fully_restored=False, force_full=True
                    ),
                    is_restore=True,
                )
        if victim is None:
            # All ways pinned/partial: serve conventionally, skip caching.
            return ActivationPlan(kind=CommandKind.ACT, rows=(regular,))
        return ActivationPlan(
            kind=CommandKind.ACT_C,
            rows=(regular, RowId.copy(subarray, victim.way)),
            timings=self.act_c_timings(),
        )

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Mechanism hook: an activation command was issued."""
        if plan.kind is CommandKind.ACT_T:
            if plan.is_restore:
                self.restores += 1
                return
            regular, _copy = plan.rows
            entry = self.table.lookup(bank, regular.subarray, regular.index)
            if entry is not None:
                entry.last_use = now
            self.hits += 1
        elif plan.kind is CommandKind.ACT_C:
            regular, copy = plan.rows
            entry = self.table.entry_for_copy_row(bank, copy.subarray, copy.index)
            if entry.allocated and entry.owner is EntryOwner.CACHE:
                self.evictions += 1
            self.table.allocate(
                bank, copy.subarray, regular.index, EntryOwner.CACHE, now, entry
            )
            self.misses += 1
        else:
            self.uncached += 1

    def on_precharge(self, bank: int, result, now: int) -> None:
        """Mechanism hook: a precharge closed ``result.rows``."""
        if len(result.rows) != 2:
            return
        regular, copy = result.rows
        entry = self.table.entry_for_copy_row(bank, copy.subarray, copy.index)
        if (
            entry.allocated
            and entry.owner is EntryOwner.CACHE
            and entry.subarray == copy.subarray
            and entry.regular_row == regular.index
        ):
            entry.is_fully_restored = result.fully_restored
            if not result.fully_restored:
                self.partial_restores += 1

    def on_refresh(self, refreshed_rows: range, now: int) -> None:
        """Refresh fully restores the covered rows (and, with them, the
        pairs tracked in the CROW-table — see Section 4.1.4)."""
        rows_per_subarray = self.geometry.rows_per_subarray
        for row in refreshed_rows:
            subarray, index = divmod(row % self.geometry.rows_per_bank,
                                     rows_per_subarray)
            for bank in range(self.geometry.banks_per_channel):
                entry = self.table.lookup(bank, subarray, index)
                if entry is not None and entry.owner is EntryOwner.CACHE:
                    entry.is_fully_restored = True

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self, include_table: bool = True) -> dict:
        """Counters plus (optionally) the shared CROW-table.

        Composite mechanisms (:class:`~repro.core.combined.CrowCacheRef`)
        share one table across sub-mechanisms and serialize it exactly
        once at the wrapper, passing ``include_table=False`` here.
        """
        state = {
            "hits": self.hits,
            "misses": self.misses,
            "uncached": self.uncached,
            "restores": self.restores,
            "evictions": self.evictions,
            "partial_restores": self.partial_restores,
        }
        if include_table:
            state["table"] = self.table.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.uncached = state["uncached"]
        self.restores = state["restores"]
        self.evictions = state["evictions"]
        self.partial_restores = state["partial_restores"]
        if "table" in state:
            self.table.load_state_dict(state["table"])

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def demand_activations(self) -> int:
        """Activations that served demand requests."""
        return self.hits + self.misses + self.uncached

    def hit_rate(self) -> float:
        """The paper's CROW-table hit rate (Figure 8, bottom)."""
        total = self.demand_activations
        return self.hits / total if total else 0.0

    def restore_fraction(self) -> float:
        """Eviction-restore activations over all activations (Sec 8.1.1)."""
        total = self.demand_activations + self.restores
        return self.restores / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.hits = 0
        self.misses = 0
        self.uncached = 0
        self.restores = 0
        self.evictions = 0
        self.partial_restores = 0

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        return {
            "crow_hits": self.hits,
            "crow_misses": self.misses,
            "crow_uncached": self.uncached,
            "crow_restores": self.restores,
            "crow_evictions": self.evictions,
            "crow_partial_restores": self.partial_restores,
            "crow_hit_rate": self.hit_rate(),
            "crow_restore_fraction": self.restore_fraction(),
        }
