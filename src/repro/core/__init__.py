"""CROW core: the paper's primary contribution.

* :mod:`repro.core.table` — the CROW-table, the set-associative structure
  in the memory controller that tracks which regular row each copy row
  duplicates or replaces (paper Section 3.3).
* :mod:`repro.core.cache` — CROW-cache, the in-DRAM caching mechanism that
  duplicates recently-activated rows and activates pairs with ``ACT-t``
  (Section 4.1).
* :mod:`repro.core.ref` — CROW-ref, the weak-row remapping scheme that
  extends the refresh interval (Section 4.2).
* :mod:`repro.core.rowhammer` — the RowHammer mitigation that remaps victim
  rows of detected aggressors (Section 4.3).
* :mod:`repro.core.combined` — CROW-cache and CROW-ref operating together
  on one copy-row pool (Section 8.3).
* :mod:`repro.core.analytics` — the paper's closed-form overhead and
  weak-row probability models (Eqs. 1-4, Sections 4.2.1 and 6.1).
* :mod:`repro.core.profiling` — boot-time and periodic (VRT-aware)
  retention profiling (Sections 4.2.1, 4.2.3).
"""

from repro.core.table import CrowTable, CrowEntry, EntryOwner
from repro.core.cache import CrowCache
from repro.core.ref import CrowRef
from repro.core.rowhammer import RowHammerMitigation
from repro.core.combined import CrowCacheRef
from repro.core.full import CrowFullSubstrate
from repro.core.analytics import (
    crow_table_entry_bits,
    crow_table_storage_bits,
    crow_table_storage_kib,
    p_subarray_exceeds,
    p_weak_row,
)
from repro.core.profiling import RetentionProfiler

__all__ = [
    "CrowTable",
    "CrowEntry",
    "EntryOwner",
    "CrowCache",
    "CrowRef",
    "RowHammerMitigation",
    "CrowCacheRef",
    "CrowFullSubstrate",
    "crow_table_entry_bits",
    "crow_table_storage_bits",
    "crow_table_storage_kib",
    "p_subarray_exceeds",
    "p_weak_row",
    "RetentionProfiler",
]
