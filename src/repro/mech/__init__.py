"""Mechanism plugin registry (`repro.mech`).

Every DRAM mechanism the simulator can run — the CROW substrate family,
the related-work baselines, and any future addition — is a
:class:`MechanismPlugin` registered under a stable name with
:func:`register_mechanism`. The plugin owns everything that used to be
hand-wired, name-by-name, through ``sim/config.py``, ``sim/factory.py``
and ``sim/system.py``:

* **construction** — :meth:`MechanismPlugin.build` turns a
  :class:`BuildContext` into the per-channel
  :class:`~repro.controller.mechanism.Mechanism` hook object (which in
  turn owns command rewriting, timing overrides and urgent plans);
* **structure** — :meth:`~MechanismPlugin.geometry_overrides` (copy-row
  provisioning, SALP subarray sizing) and
  :meth:`~MechanismPlugin.salp_subarrays`;
* **refresh policy** — :meth:`~MechanismPlugin.uses_controller_refresh`
  decides whether the controller runs the periodic all-bank REF loop
  (HiRA turns it off and refreshes via hidden row activations instead);
* **conformance** — :meth:`~MechanismPlugin.checker_invariant` attaches
  a per-plugin :class:`~repro.check.invariants.CheckerInvariant` to the
  shadow oracle, and :meth:`~MechanismPlugin.assume_ideal_duplicates`
  relaxes the CROW duplicate rule for the ideal bounds;
* **telemetry** — a mechanism class with a ``telemetry_namespace``
  exports its counters under ``mech.<namespace>`` in the registry dump.

Lookup failures and duplicate registrations raise
:class:`~repro.errors.ConfigError` naming the registered mechanisms, so
a typo on the CLI (``--mechanism nope``) produces an actionable message
instead of a traceback.
"""

from repro.mech.plugin import BuildContext, MechanismPlugin
from repro.mech.registry import (
    get_plugin,
    mechanism_names,
    register_mechanism,
)

__all__ = [
    "BuildContext",
    "MechanismPlugin",
    "get_plugin",
    "mechanism_names",
    "register_mechanism",
]
