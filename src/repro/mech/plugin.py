"""The mechanism plugin interface.

A plugin is a small stateless object describing one mechanism *name*:
how to build the per-channel :class:`~repro.controller.mechanism.Mechanism`
hook, what the name does to the DRAM geometry, whether the controller
runs the REF loop, and which conformance invariants the shadow checker
should enforce on top of the JEDEC/CROW rules. The plugin itself holds
no run state — everything mutable lives on the ``Mechanism`` instances
it builds (one per channel), which snapshot with the controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.check.invariants import CheckerInvariant
    from repro.controller.controller import ControllerConfig
    from repro.controller.mechanism import Mechanism
    from repro.dram import CrowTimings, RetentionModel, TimingParameters
    from repro.dram.geometry import DramGeometry
    from repro.sim.config import SystemConfig

__all__ = ["BuildContext", "MechanismPlugin"]


@dataclass(frozen=True)
class BuildContext:
    """Everything :meth:`MechanismPlugin.build` may consume.

    Assembled by :mod:`repro.sim.factory` from one
    :class:`~repro.sim.config.SystemConfig`; identical for the simulator
    proper and the probe session, so a plugin cannot make the two drift.
    """

    config: "SystemConfig"
    geometry: "DramGeometry"
    timing: "TimingParameters"
    crow_timings: "CrowTimings | None"
    retention: "RetentionModel | None"
    channel: int


class MechanismPlugin:
    """One registered mechanism: construction + system-wiring hooks.

    Subclasses override :meth:`build` (mandatory) and whichever wiring
    hooks differ from conventional DRAM. Defaults reproduce the
    baseline: copy rows provisioned per config, controller-driven REF,
    no SALP row buffers, no extra checker invariants.
    """

    #: Registry name; assigned by :func:`repro.mech.register_mechanism`.
    name: str = ""

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, ctx: BuildContext) -> "Mechanism":
        """The per-channel mechanism instance (boot-time work included)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def geometry_overrides(self, config: "SystemConfig") -> dict:
        """Geometry field overrides this mechanism requires.

        The default provisions ``config.copy_rows`` copy rows per
        subarray (the CROW substrate); mechanisms on conventional arrays
        return ``{"copy_rows_per_subarray": 0}``.
        """
        return {"copy_rows_per_subarray": config.copy_rows}

    def salp_subarrays(
        self, config: "SystemConfig", geometry: "DramGeometry"
    ) -> int | None:
        """Per-subarray row buffers to model, or ``None`` (one per bank)."""
        return None

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    def needs_retention(self, config: "SystemConfig") -> bool:
        """Whether :meth:`build` consumes a retention model (CROW-ref)."""
        return False

    def uses_controller_refresh(self, config: "SystemConfig") -> bool:
        """Whether the controller runs the periodic all-bank REF loop.

        Returning ``False`` disables REF *and* the checker's refresh
        cadence/coverage rules: the mechanism either needs no refresh
        (ideal bounds) or provides it itself (HiRA), in which case its
        :meth:`checker_invariant` should enforce the replacement policy.
        """
        return True

    def controller_config(
        self, config: "SystemConfig", controller_config: "ControllerConfig"
    ) -> "ControllerConfig":
        """Adjust the controller policy (e.g. SALP's open-page rows)."""
        return controller_config

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def timing_variants(
        self,
        config: "SystemConfig",
        timing: "TimingParameters",
        crow_timings: "CrowTimings | None",
    ) -> dict:
        """Named activation-timing overrides this mechanism can issue.

        Consumed by :func:`repro.engine.tables.compile_act_variants`:
        the returned ``{name: ActTimings}`` mapping must cover every
        timing override the mechanism puts on an ``ActivationPlan``, so
        the compiled engine tables (and the differential tests built on
        them) enumerate the full per-config timing universe. The
        default — no overrides — matches mechanisms that only ever
        issue base-timing activations.
        """
        return {}

    # ------------------------------------------------------------------
    # Conformance
    # ------------------------------------------------------------------
    def assume_ideal_duplicates(self, config: "SystemConfig") -> bool:
        """Relax the checker's CROW duplicate rule (ideal bounds only)."""
        return False

    def checker_invariant(
        self,
        config: "SystemConfig",
        geometry: "DramGeometry",
        timing: "TimingParameters",
    ) -> "CheckerInvariant | None":
        """A per-plugin invariant for the shadow checker, or ``None``."""
        return None
