"""CLR-DRAM: dynamic capacity–latency reconfigurable rows.

Models CLR-DRAM (Luo et al., related work): a pair of adjacent rows can
be *coupled* into a single max-latency-mode row whose doubled cell
capacitance and doubled sense-amplifier drive cut activation and
restoration latency dramatically, at the cost of the neighbour's
capacity. This plugin couples row pairs adaptively: a row that keeps
getting activated earns coupling (its pair neighbour is sacrificed);
touching the sacrificed neighbour demotes the pair back to capacity
mode.

The mode switch is visible on the command stream as an activation-timing
override, so :class:`ClrInvariant` can mirror the promotion/demotion
automaton on the shadow checker and verify every fast activation targets
a row the observed history actually promoted.
"""

from __future__ import annotations

from repro.check.invariants import CheckerInvariant
from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import ActTimings, CommandKind, RowKind
from repro.dram.timing import TimingParameters, scale_cycles
from repro.errors import ConfigError
from repro.mech.plugin import BuildContext, MechanismPlugin
from repro.mech.registry import register_mechanism

__all__ = ["ClrDram", "ClrInvariant"]

#: Latency scaling in max-latency (coupled) mode, per the CLR-DRAM
#: paper's SPICE results: tRCD -60%, tRAS -64%, tWR -35%.
TRCD_FACTOR = 0.40
TRAS_FACTOR = 0.36
TWR_FACTOR = 0.65


def fast_timings(timing: TimingParameters) -> ActTimings:
    """The activation timing set for a coupled (max-latency-mode) row.

    ``tras_early == tras_full``: a coupled activation always restores
    fully, so precharge must never mark the row partially restored.
    """
    tras = scale_cycles(timing.tras, TRAS_FACTOR)
    return ActTimings(
        trcd=scale_cycles(timing.trcd, TRCD_FACTOR),
        tras_full=tras,
        tras_early=tras,
        twr=scale_cycles(timing.twr, TWR_FACTOR),
    )


class ClrDram(Mechanism):
    """Adaptive row-pair coupling for capacity–latency reconfiguration."""

    name = "clr-dram"
    telemetry_namespace = "clr_dram"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        promote_threshold: int = 4,
    ) -> None:
        super().__init__(geometry, timing)
        if promote_threshold < 1:
            raise ConfigError("promote_threshold must be >= 1")
        if geometry.rows_per_subarray < 2:
            raise ConfigError("clr-dram needs >= 2 rows per subarray")
        self.promote_threshold = promote_threshold
        self._fast = fast_timings(timing)
        #: (bank, pair_index) -> owning bank_row. The pair partner
        #: (owner ^ 1) is sacrificed while the entry exists. Pair index
        #: is bank_row >> 1; rows_per_subarray is a power of two >= 2,
        #: so a pair never straddles a subarray boundary.
        self.coupled: dict[tuple[int, int], int] = {}
        #: (bank, bank_row) -> full-latency activations since the last
        #: couple/demote touching the pair.
        self.counters: dict[tuple[int, int], int] = {}
        self.fast_acts = 0
        self.promotions = 0
        self.demotions = 0

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        regular = self.service_row(bank, row)
        if self.coupled.get((bank, row >> 1)) == row:
            return ActivationPlan(
                kind=CommandKind.ACT, rows=(regular,), timings=self._fast
            )
        return ActivationPlan(kind=CommandKind.ACT, rows=(regular,))

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        if plan.timings is self._fast:
            self.fast_acts += 1
            return
        row = plan.rows[0]
        if row.kind is not RowKind.REGULAR:
            return
        bank_row = row.bank_row(self.geometry.rows_per_subarray)
        pair = (bank, bank_row >> 1)
        owner = self.coupled.get(pair)
        if owner is not None:
            if owner != bank_row:
                # Demand for the sacrificed partner: decouple the pair
                # (its data must live in capacity mode again).
                del self.coupled[pair]
                self.counters.pop((bank, owner), None)
                self.counters.pop((bank, bank_row), None)
                self.demotions += 1
            # owner == bank_row with full timings only happens in the
            # same scheduling pass that promoted it; nothing to count.
            return
        key = (bank, bank_row)
        count = self.counters.get(key, 0) + 1
        if count >= self.promote_threshold:
            self.coupled[pair] = bank_row
            self.counters.pop(key, None)
            self.counters.pop((bank, bank_row ^ 1), None)
            self.promotions += 1
        else:
            self.counters[key] = count

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "coupled": list(self.coupled.items()),
            "counters": list(self.counters.items()),
            "fast_acts": self.fast_acts,
            "promotions": self.promotions,
            "demotions": self.demotions,
        }

    def load_state_dict(self, state: dict) -> None:
        self.coupled = {
            tuple(key): owner for key, owner in state["coupled"]
        }
        self.counters = {
            tuple(key): count for key, count in state["counters"]
        }
        self.fast_acts = state["fast_acts"]
        self.promotions = state["promotions"]
        self.demotions = state["demotions"]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        return {
            "clr_fast_acts": float(self.fast_acts),
            "clr_promotions": float(self.promotions),
            "clr_demotions": float(self.demotions),
            "clr_coupled_pairs": float(len(self.coupled)),
        }

    def reset_stats(self) -> None:
        self.fast_acts = 0
        self.promotions = 0
        self.demotions = 0


class ClrInvariant(CheckerInvariant):
    """Shadow mirror of the CLR-DRAM coupling automaton.

    Replays promotion/demotion from the observed full-latency ACTs and
    checks every timing-overridden activation: the override must be
    exactly the CLR fast set, and its target must currently own its
    coupled pair. CLR-DRAM runs have no copy rows, so every ACT carrying
    a timing override in the stream is a CLR fast activation.
    """

    name = "clr-dram"

    def __init__(self, geometry, timing: TimingParameters, threshold: int):
        self.geometry = geometry
        self.threshold = threshold
        self._fast = fast_timings(timing)
        self._coupled: dict[tuple[int, int], int] = {}
        self._counters: dict[tuple[int, int], int] = {}

    def on_command(self, checker, now, command) -> None:
        if command.kind is not CommandKind.ACT:
            return
        row = command.rows[0]
        if row.kind is not RowKind.REGULAR:
            return
        bank_row = row.bank_row(self.geometry.rows_per_subarray)
        bank = command.bank
        pair = (bank, bank_row >> 1)
        timings = command.timings
        if timings is not None:
            expected = self._fast
            if (
                timings.trcd != expected.trcd
                or timings.tras_full != expected.tras_full
                or timings.tras_early != expected.tras_early
                or timings.twr != expected.twr
            ):
                checker.violate(
                    now, bank, "clr-timing-override", "ACT",
                    message=(
                        f"activation timing override {timings} does not "
                        f"match the CLR-DRAM max-latency-mode set "
                        f"{expected}"
                    ),
                )
            if self._coupled.get(pair) != bank_row:
                checker.violate(
                    now, bank, "clr-fast-act-uncoupled", "ACT",
                    message=(
                        f"fast activation of row {bank_row} in bank "
                        f"{bank}, but the observed stream never promoted "
                        f"it (pair owner: {self._coupled.get(pair)})"
                    ),
                )
            return
        owner = self._coupled.get(pair)
        if owner is not None:
            if owner != bank_row:
                del self._coupled[pair]
                self._counters.pop((bank, owner), None)
                self._counters.pop((bank, bank_row), None)
            return
        key = (bank, bank_row)
        count = self._counters.get(key, 0) + 1
        if count >= self.threshold:
            self._coupled[pair] = bank_row
            self._counters.pop(key, None)
            self._counters.pop((bank, bank_row ^ 1), None)
        else:
            self._counters[key] = count

    def state_dict(self) -> dict:
        return {
            "coupled": list(self._coupled.items()),
            "counters": list(self._counters.items()),
        }

    def load_state_dict(self, state: dict) -> None:
        self._coupled = {
            tuple(key): owner for key, owner in state["coupled"]
        }
        self._counters = {
            tuple(key): count for key, count in state["counters"]
        }


@register_mechanism("clr-dram")
class ClrDramPlugin(MechanismPlugin):
    """CLR-DRAM: adaptive capacity–latency row-pair coupling."""

    def build(self, ctx: BuildContext):
        return ClrDram(
            ctx.geometry,
            ctx.timing,
            promote_threshold=ctx.config.clr_promote_threshold,
        )

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}

    def checker_invariant(self, config, geometry, timing):
        return ClrInvariant(
            geometry, timing, threshold=config.clr_promote_threshold
        )

    def timing_variants(self, config, timing, crow_timings) -> dict:
        return {"act-coupled": fast_timings(timing)}
