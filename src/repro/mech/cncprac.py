"""CnC-PRAC: per-row activation counting with coalesced mitigation.

Models a PRAC-style in-DRAM defense (Lin et al., related work): every
row carries an activation counter; when a row's count reaches the alert
threshold, its physically-adjacent neighbours are queued for a
charge-restoring mitigation activation, and the aggressor's counter
resets. Queued mitigations are *coalesced*: a victim already pending is
not enqueued again, so a burst of alerts from neighbouring aggressors
collapses into one restoration pass. The controller serves mitigations
through the ``urgent_plan`` hook, ahead of demand traffic.

The policy is deliberately a pure function of the observed command
stream — any plain activation of a pending victim (mitigation *or*
demand: both restore the victim's charge) retires the obligation, and
REF coverage clears the counters of the refreshed rows — so
:class:`PracInvariant` can mirror it exactly on the shadow checker and
enforce the mitigation deadline independently of the mechanism's code.
"""

from __future__ import annotations

from repro.check.invariants import CheckerInvariant
from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import CommandKind, RowId, RowKind
from repro.dram.timing import REF_COMMANDS_PER_WINDOW, TimingParameters
from repro.mech.plugin import BuildContext, MechanismPlugin
from repro.mech.registry import register_mechanism

__all__ = ["CncPrac", "PracInvariant"]

#: A pending mitigation must be observed within this many tREFI of the
#: alert; urgent plans preempt demand, so real lateness is tens of
#: cycles — the slack absorbs refresh blackouts and queue contention.
MITIGATION_DEADLINE_TREFI = 2


class CncPrac(Mechanism):
    """Per-row activation counters + coalesced neighbour mitigation."""

    name = "cnc-prac"
    telemetry_namespace = "cnc_prac"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        threshold: int = 512,
        blast_radius: int = 1,
    ) -> None:
        super().__init__(geometry, timing)
        self.threshold = threshold
        self.blast_radius = blast_radius
        #: (bank, bank_row) -> activations since last reset. State, not
        #: a statistic: survives the warm-up boundary and snapshots.
        self.counters: dict[tuple[int, int], int] = {}
        #: Pending victim mitigations in alert order (dict = FIFO + set).
        self.pending: dict[tuple[int, int], bool] = {}
        self._rows_per_ref = max(
            1, geometry.rows_per_bank // REF_COMMANDS_PER_WINDOW
        )
        self.alerts = 0
        self.mitigations = 0
        self.coalesced = 0
        self.ref_absorbed = 0

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def urgent_plan(self, now: int):
        """Restore the oldest pending victim with a full activation."""
        if not self.pending:
            return None
        bank, victim = next(iter(self.pending))
        return bank, ActivationPlan(
            kind=CommandKind.ACT,
            rows=(RowId.regular(victim, self.geometry.rows_per_subarray),),
        )

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        row = plan.rows[0]
        if row.kind is not RowKind.REGULAR:
            return
        bank_row = row.bank_row(self.geometry.rows_per_subarray)
        key = (bank, bank_row)
        if self.pending.pop(key, None) is not None:
            # The activation restored a pending victim (whether issued
            # by urgent_plan or by a demand access — both recharge it).
            self.mitigations += 1
            self.counters[key] = 0
            return
        count = self.counters.get(key, 0) + 1
        if count >= self.threshold:
            self.counters[key] = 0
            self.alerts += 1
            self._queue_victims(bank, bank_row)
        else:
            self.counters[key] = count

    def _queue_victims(self, bank: int, aggressor: int) -> None:
        for offset in range(1, self.blast_radius + 1):
            for victim in (aggressor - offset, aggressor + offset):
                if not 0 <= victim < self.geometry.rows_per_bank:
                    continue
                if (bank, victim) in self.pending:
                    self.coalesced += 1
                    continue
                self.pending[(bank, victim)] = True

    def on_refresh(self, refreshed_rows: range, now: int) -> None:
        """REF restores the covered rows: reset counters, absorb pending."""
        rows = {r % self.geometry.rows_per_bank for r in refreshed_rows}
        for key in [k for k in self.counters if k[1] in rows]:
            del self.counters[key]
        for key in [k for k in self.pending if k[1] in rows]:
            del self.pending[key]
            self.ref_absorbed += 1

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "counters": list(self.counters.items()),
            "pending": list(self.pending),
            "alerts": self.alerts,
            "mitigations": self.mitigations,
            "coalesced": self.coalesced,
            "ref_absorbed": self.ref_absorbed,
        }

    def load_state_dict(self, state: dict) -> None:
        self.counters = {
            tuple(key): count for key, count in state["counters"]
        }
        self.pending = {tuple(key): True for key in state["pending"]}
        self.alerts = state["alerts"]
        self.mitigations = state["mitigations"]
        self.coalesced = state["coalesced"]
        self.ref_absorbed = state["ref_absorbed"]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        return {
            "prac_alerts": float(self.alerts),
            "prac_mitigations": float(self.mitigations),
            "prac_coalesced": float(self.coalesced),
            "prac_ref_absorbed": float(self.ref_absorbed),
            "prac_pending": float(len(self.pending)),
        }

    def reset_stats(self) -> None:
        self.alerts = 0
        self.mitigations = 0
        self.coalesced = 0
        self.ref_absorbed = 0


class PracInvariant(CheckerInvariant):
    """Shadow mirror of the CnC-PRAC alert/mitigation contract.

    Re-derives the per-row counters and the pending-victim set from the
    observed stream with the same pure rules the mechanism uses, stamps
    each alert with a deadline, and flags any victim whose restoring
    activation was not observed in time.
    """

    name = "cnc-prac"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        threshold: int,
        blast_radius: int,
    ) -> None:
        self.geometry = geometry
        self.threshold = threshold
        self.blast_radius = blast_radius
        self.deadline_cycles = MITIGATION_DEADLINE_TREFI * timing.trefi
        self._counters: dict[tuple[int, int], int] = {}
        #: (bank, victim) -> deadline cycle, in alert order (so the
        #: first entry always carries the earliest deadline).
        self._pending: dict[tuple[int, int], int] = {}
        self._refresh_cursor = 0
        self._rows_per_ref = max(
            1, geometry.rows_per_bank // REF_COMMANDS_PER_WINDOW
        )

    def _check_deadline(self, checker, now: int) -> None:
        if not self._pending:
            return
        key, deadline = next(iter(self._pending.items()))
        if now > deadline:
            del self._pending[key]
            checker.violate(
                now, key[0], "cnc-prac-mitigation-deadline", "ACT",
                required=deadline, actual=now,
                message=(
                    f"victim row {key[1]} of bank {key[0]} was alerted "
                    f"but not restored within {self.deadline_cycles} "
                    f"cycles"
                ),
            )

    def on_command(self, checker, now, command) -> None:
        self._check_deadline(checker, now)
        kind = command.kind
        if kind is CommandKind.REF:
            start = self._refresh_cursor
            stop = start + self._rows_per_ref
            self._refresh_cursor = stop % self.geometry.rows_per_bank
            rows = {
                r % self.geometry.rows_per_bank for r in range(start, stop)
            }
            for key in [k for k in self._counters if k[1] in rows]:
                del self._counters[key]
            for key in [k for k in self._pending if k[1] in rows]:
                del self._pending[key]
            return
        if kind is not CommandKind.ACT:
            return
        row = command.rows[0]
        if row.kind is not RowKind.REGULAR:
            return
        bank_row = row.bank_row(self.geometry.rows_per_subarray)
        key = (command.bank, bank_row)
        if self._pending.pop(key, None) is not None:
            self._counters[key] = 0
            return
        count = self._counters.get(key, 0) + 1
        if count >= self.threshold:
            self._counters[key] = 0
            deadline = now + self.deadline_cycles
            for offset in range(1, self.blast_radius + 1):
                for victim in (bank_row - offset, bank_row + offset):
                    if not 0 <= victim < self.geometry.rows_per_bank:
                        continue
                    vkey = (command.bank, victim)
                    if vkey not in self._pending:
                        self._pending[vkey] = deadline
        else:
            self._counters[key] = count

    def finalize(self, checker, end_cycle: int) -> None:
        for key, deadline in list(self._pending.items()):
            if end_cycle > deadline:
                del self._pending[key]
                checker.violate(
                    end_cycle, key[0], "cnc-prac-mitigation-deadline",
                    "ACT", required=deadline, actual=end_cycle,
                    message=(
                        f"victim row {key[1]} of bank {key[0]} was still "
                        f"unmitigated {end_cycle - deadline} cycles past "
                        f"its deadline at end of run"
                    ),
                )

    def state_dict(self) -> dict:
        return {
            "counters": list(self._counters.items()),
            "pending": list(self._pending.items()),
            "refresh_cursor": self._refresh_cursor,
        }

    def load_state_dict(self, state: dict) -> None:
        self._counters = {
            tuple(key): count for key, count in state["counters"]
        }
        self._pending = {
            tuple(key): deadline for key, deadline in state["pending"]
        }
        self._refresh_cursor = state["refresh_cursor"]


@register_mechanism("cnc-prac")
class CncPracPlugin(MechanismPlugin):
    """CnC-PRAC: counter-based RowHammer defense, coalesced mitigation."""

    def build(self, ctx: BuildContext):
        return CncPrac(
            ctx.geometry,
            ctx.timing,
            threshold=ctx.config.prac_threshold,
            blast_radius=ctx.config.prac_blast_radius,
        )

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}

    def checker_invariant(self, config, geometry, timing):
        return PracInvariant(
            geometry,
            timing,
            threshold=config.prac_threshold,
            blast_radius=config.prac_blast_radius,
        )
