"""The mechanism registry: name -> :class:`MechanismPlugin`.

Builtin plugins self-register on first lookup (lazy import, so merely
importing :mod:`repro.mech` never drags in the mechanism
implementations). Registration order is deliberate and stable: the
twelve pre-plugin mechanism names first, in their historical order, then
the related-work additions — seeded sweeps that draw from
:func:`mechanism_names` stay reproducible across releases that only
*append* mechanisms.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.errors import ConfigError
from repro.mech.plugin import MechanismPlugin

__all__ = ["register_mechanism", "get_plugin", "mechanism_names"]

_REGISTRY: dict[str, MechanismPlugin] = {}
_builtins_loaded = False

P = TypeVar("P", bound=type[MechanismPlugin])


def register_mechanism(name: str) -> Callable[[P], P]:
    """Class decorator registering a :class:`MechanismPlugin` subclass.

    ::

        @register_mechanism("crow-cache")
        class CrowCachePlugin(MechanismPlugin):
            def build(self, ctx): ...

    The decorated class is instantiated once; the instance must be
    stateless (run state belongs on the ``Mechanism`` objects it
    builds). Registering a name twice raises
    :class:`~repro.errors.ConfigError` — plugins are process-global, and
    a silent overwrite would let an import-order accident swap the
    semantics of every config naming the mechanism.
    """
    if not name:
        raise ConfigError("mechanism name must be non-empty")

    def decorate(cls: P) -> P:
        if name in _REGISTRY:
            raise ConfigError(
                f"mechanism {name!r} is already registered "
                f"(by {type(_REGISTRY[name]).__name__}); "
                f"registered mechanisms: {', '.join(sorted(_REGISTRY))}"
            )
        plugin = cls()
        plugin.name = name
        _REGISTRY[name] = plugin
        return cls

    return decorate


def _ensure_builtins() -> None:
    """Import the builtin plugin modules exactly once."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    # Historical names first (their registration order defines the
    # stable prefix of mechanism_names()), then the related-work plugins.
    import repro.mech.builtin  # noqa: F401
    import repro.mech.hira  # noqa: F401
    import repro.mech.cncprac  # noqa: F401
    import repro.mech.clrdram  # noqa: F401


def get_plugin(name: str) -> MechanismPlugin:
    """The plugin registered under ``name``.

    Raises :class:`~repro.errors.ConfigError` listing every registered
    mechanism when the name is unknown — this is the single validation
    point behind :class:`~repro.sim.config.SystemConfig`, the CLI and
    campaign specs.
    """
    _ensure_builtins()
    plugin = _REGISTRY.get(name)
    if plugin is None:
        raise ConfigError(
            f"unknown mechanism {name!r}; registered mechanisms: "
            f"{', '.join(mechanism_names())}"
        )
    return plugin


def mechanism_names() -> tuple[str, ...]:
    """All registered mechanism names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)
