"""HiRA-style hidden row activation (Yağlıkçı et al., related work).

HiRA observes that refreshing a row *is* an activation, and that a row
activation in one subarray can overlap with operations elsewhere in the
bank group. Instead of the controller's periodic all-bank ``REF`` —
which blackouts every bank for tRFC — the mechanism retires the refresh
obligation as a paced stream of ordinary row activations: one row per
``interval`` cycles, round-robin across banks first (maximizing the
chance the refresh lands in a bank the demand stream is not using), so
demand accesses keep flowing in the other banks while a row refreshes.

The controller's REF loop is disabled by the plugin
(``uses_controller_refresh`` returns ``False``); the replacement policy
is enforced by :class:`HiraRefreshInvariant` on the shadow checker: the
observed ACT stream must make pro-rata progress through the bank-major
refresh schedule.
"""

from __future__ import annotations

from repro.check.invariants import CheckerInvariant
from repro.controller.mechanism import (
    IDLE,
    ActivationPlan,
    Mechanism,
)
from repro.dram.commands import CommandKind, RowId, RowKind
from repro.dram.timing import REF_COMMANDS_PER_WINDOW, TimingParameters
from repro.mech.plugin import BuildContext, MechanismPlugin
from repro.mech.registry import register_mechanism

__all__ = ["HiddenRowActivation", "HiraRefreshInvariant", "hira_interval"]

#: Finalize slack, in schedule intervals: contention can delay refresh
#: activations (urgent plans wait for tRRD/tFAW and bank precharges), so
#: the coverage check tolerates this many intervals of lateness.
COVERAGE_SLACK_INTERVALS = 16


def hira_interval(geometry, timing: TimingParameters) -> int:
    """Cycles between row-refresh activations for full-window coverage.

    Matches the controller's REF pacing: per tREFI a conventional
    controller refreshes ``rows_per_bank / REF_COMMANDS_PER_WINDOW``
    rows in *every* bank, so HiRA must retire that many single-row
    activations per tREFI across the channel.
    """
    rows_per_ref = max(1, geometry.rows_per_bank // REF_COMMANDS_PER_WINDOW)
    acts_per_trefi = rows_per_ref * geometry.banks_per_channel
    return max(1, timing.trefi // acts_per_trefi)


class HiddenRowActivation(Mechanism):
    """Refresh-by-activation, hidden behind demand traffic."""

    name = "hira"
    telemetry_namespace = "hira"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        refresh_enabled: bool = True,
    ) -> None:
        super().__init__(geometry, timing)
        self.refresh_on = refresh_enabled
        self.interval = hira_interval(geometry, timing)
        self.total_rows = geometry.rows_per_bank * geometry.banks_per_channel
        #: Bank-major schedule position: consecutive refreshes target
        #: different banks, so a burst of catch-up activations spreads
        #: over the channel instead of hammering one bank.
        self._cursor = 0
        self._next_due = self.interval
        # Derived, never serialized: the memoized urgent plan for the
        # current cursor position (identity-compared in on_activate).
        self._plan: ActivationPlan | None = None
        self._plan_cursor = -1
        self.refresh_acts = 0
        self.refresh_rounds = 0

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def _cursor_target(self) -> tuple[int, int]:
        """The (bank, bank_row) the cursor currently points at."""
        banks = self.geometry.banks_per_channel
        return self._cursor % banks, self._cursor // banks

    def urgent_plan(self, now: int):
        """The next due refresh activation, or ``None`` when on pace."""
        if not self.refresh_on or now < self._next_due:
            return None
        if self._plan_cursor != self._cursor:
            bank, row = self._cursor_target()
            self._plan = ActivationPlan(
                kind=CommandKind.ACT,
                rows=(RowId.regular(row, self.geometry.rows_per_subarray),),
            )
            self._plan_cursor = self._cursor
        bank = self._cursor % self.geometry.banks_per_channel
        return bank, self._plan

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Advance the schedule when our refresh activation was issued."""
        if plan is not self._plan:
            return
        self._cursor += 1
        if self._cursor == self.total_rows:
            self._cursor = 0
            self.refresh_rounds += 1
        self._next_due += self.interval
        self._plan = None
        self._plan_cursor = -1
        self.refresh_acts += 1

    def next_wake(self, now: int) -> int:
        """Wake an idle controller when the next refresh comes due."""
        return self._next_due if self.refresh_on else IDLE

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "cursor": self._cursor,
            "next_due": self._next_due,
            "refresh_acts": self.refresh_acts,
            "refresh_rounds": self.refresh_rounds,
        }

    def load_state_dict(self, state: dict) -> None:
        self._cursor = state["cursor"]
        self._next_due = state["next_due"]
        self.refresh_acts = state["refresh_acts"]
        self.refresh_rounds = state["refresh_rounds"]
        self._plan = None
        self._plan_cursor = -1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        return {
            "hira_refresh_acts": float(self.refresh_acts),
            "hira_refresh_rounds": float(self.refresh_rounds),
        }

    def reset_stats(self) -> None:
        self.refresh_acts = 0
        self.refresh_rounds = 0


class HiraRefreshInvariant(CheckerInvariant):
    """Shadow mirror of the HiRA refresh schedule.

    Tracks the expected bank-major cursor independently of the
    mechanism: any observed plain activation of the expected target
    advances it (a demand ACT refreshes the row just as well). Finalize
    requires pro-rata progress — ``end_cycle / interval`` schedule
    advances, minus :data:`COVERAGE_SLACK_INTERVALS` — mirroring the
    base checker's REF coverage rule for conventional refresh.
    """

    name = "hira-refresh"

    def __init__(self, geometry, timing: TimingParameters, enabled: bool):
        self.geometry = geometry
        self.interval = hira_interval(geometry, timing)
        self.total_rows = geometry.rows_per_bank * geometry.banks_per_channel
        self.enabled = enabled
        self._cursor = 0
        self._advanced = 0

    def on_command(self, checker, now, command) -> None:
        if command.kind is not CommandKind.ACT:
            return
        row = command.rows[0]
        if row.kind is not RowKind.REGULAR:
            return
        banks = self.geometry.banks_per_channel
        expected_bank = self._cursor % banks
        expected_row = self._cursor // banks
        if (
            command.bank == expected_bank
            and row.bank_row(self.geometry.rows_per_subarray) == expected_row
        ):
            self._cursor = (self._cursor + 1) % self.total_rows
            self._advanced += 1

    def finalize(self, checker, end_cycle: int) -> None:
        if not self.enabled:
            return
        required = end_cycle // self.interval - COVERAGE_SLACK_INTERVALS
        if self._advanced < required:
            checker.violate(
                end_cycle, -1, "hira-refresh-coverage", "ACT",
                required=required, actual=self._advanced,
                message=(
                    f"only {self._advanced} refresh activations over "
                    f"{end_cycle} cycles; the hidden-row-activation "
                    f"schedule (one row per {self.interval} cycles) "
                    f"cannot cover the refresh window"
                ),
            )

    def state_dict(self) -> dict:
        return {"cursor": self._cursor, "advanced": self._advanced}

    def load_state_dict(self, state: dict) -> None:
        self._cursor = state["cursor"]
        self._advanced = state["advanced"]


@register_mechanism("hira")
class HiraPlugin(MechanismPlugin):
    """HiRA: refresh retired as hidden row activations, no REF loop."""

    def build(self, ctx: BuildContext):
        return HiddenRowActivation(
            ctx.geometry,
            ctx.timing,
            refresh_enabled=ctx.config.refresh_enabled,
        )

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}

    def uses_controller_refresh(self, config) -> bool:
        return False

    def checker_invariant(self, config, geometry, timing):
        return HiraRefreshInvariant(
            geometry, timing, enabled=config.refresh_enabled
        )
