"""Builtin plugins: the CROW family and the paper's baselines.

These port the twelve pre-plugin mechanism names onto the registry with
**byte-identical** behaviour — each ``build`` body is the corresponding
branch of the old ``sim/factory.build_mechanism`` if-chain, each
``geometry_overrides`` the matching ``SystemConfig.resolved_geometry``
branch, and the wiring hooks reproduce the name checks that used to be
spread through ``System.__init__``. The committed telemetry-digest
oracle (``tests/data/expected_digests.json``) is the proof.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import ChargeCache, IdealCrowCache, SalpMasa, TlDram
from repro.controller.mechanism import NoMechanism
from repro.core import CrowCache, CrowCacheRef, CrowRef, RowHammerMitigation
from repro.mech.plugin import BuildContext, MechanismPlugin
from repro.mech.registry import register_mechanism

__all__: list[str] = []


@register_mechanism("baseline")
class BaselinePlugin(MechanismPlugin):
    """Conventional DRAM (the paper's baseline)."""

    def build(self, ctx: BuildContext):
        return NoMechanism(ctx.geometry, ctx.timing)

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}


@register_mechanism("crow-cache")
class CrowCachePlugin(MechanismPlugin):
    """CROW in-DRAM cache (paper Section 4.1)."""

    def build(self, ctx: BuildContext):
        from repro.core.table import CrowTable

        config = ctx.config
        table = CrowTable(ctx.geometry, config.subarray_group_size)
        return CrowCache(
            ctx.geometry,
            ctx.timing,
            crow=ctx.crow_timings,
            table=table,
            allow_partial_restore=config.allow_partial_restore,
            reduced_twr=config.reduced_twr,
            act_c_early_termination=config.act_c_early_termination,
            evict_partial=config.evict_partial,
        )


@register_mechanism("crow-ref")
class CrowRefPlugin(MechanismPlugin):
    """CROW weak-row remapping for an extended refresh window (§4.2)."""

    def build(self, ctx: BuildContext):
        assert ctx.retention is not None
        return CrowRef(
            ctx.geometry,
            ctx.timing,
            ctx.retention,
            crow=ctx.crow_timings,
            channel=ctx.channel,
            base_window_ms=ctx.config.refresh_window_ms,
        )

    def needs_retention(self, config) -> bool:
        return True


@register_mechanism("crow-combined")
class CrowCombinedPlugin(MechanismPlugin):
    """CROW cache + ref on one substrate (paper Section 4.4)."""

    def build(self, ctx: BuildContext):
        assert ctx.retention is not None
        config = ctx.config
        return CrowCacheRef(
            ctx.geometry,
            ctx.timing,
            ctx.retention,
            crow=ctx.crow_timings,
            channel=ctx.channel,
            base_window_ms=config.refresh_window_ms,
            allow_partial_restore=config.allow_partial_restore,
            reduced_twr=config.reduced_twr,
            act_c_early_termination=config.act_c_early_termination,
            evict_partial=config.evict_partial,
        )

    def needs_retention(self, config) -> bool:
        return True


@register_mechanism("crow-hammer")
class CrowHammerPlugin(MechanismPlugin):
    """Victim-row remapping RowHammer defense (paper Section 4.3)."""

    def build(self, ctx: BuildContext):
        return RowHammerMitigation(
            ctx.geometry,
            ctx.timing,
            crow=ctx.crow_timings,
            hammer_threshold=ctx.config.hammer_threshold,
        )


@register_mechanism("crow-full")
class CrowFullPlugin(MechanismPlugin):
    """Cache + ref + hammer on one shared copy-row pool."""

    def build(self, ctx: BuildContext):
        from repro.core import CrowFullSubstrate

        assert ctx.retention is not None
        config = ctx.config
        return CrowFullSubstrate(
            ctx.geometry,
            ctx.timing,
            ctx.retention,
            crow=ctx.crow_timings,
            channel=ctx.channel,
            base_window_ms=config.refresh_window_ms,
            hammer_threshold=config.hammer_threshold,
            allow_partial_restore=config.allow_partial_restore,
            reduced_twr=config.reduced_twr,
            act_c_early_termination=config.act_c_early_termination,
            evict_partial=config.evict_partial,
        )

    def needs_retention(self, config) -> bool:
        return True


@register_mechanism("ideal-crow-cache")
class IdealCrowCachePlugin(MechanismPlugin):
    """100%-hit-rate CROW-cache upper bound (Figure 14)."""

    def build(self, ctx: BuildContext):
        return IdealCrowCache(
            ctx.geometry,
            ctx.timing,
            crow=ctx.crow_timings,
            allow_partial_restore=ctx.config.allow_partial_restore,
        )

    def assume_ideal_duplicates(self, config) -> bool:
        return True


@register_mechanism("ideal")
class IdealPlugin(IdealCrowCachePlugin):
    """Ideal CROW-cache + no refresh (the Figure 14 combined bound)."""

    def uses_controller_refresh(self, config) -> bool:
        return False


@register_mechanism("no-refresh")
class NoRefreshPlugin(MechanismPlugin):
    """Conventional DRAM with refresh disabled (refresh-cost bound)."""

    def build(self, ctx: BuildContext):
        return NoMechanism(ctx.geometry, ctx.timing)

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}

    def uses_controller_refresh(self, config) -> bool:
        return False


@register_mechanism("tl-dram")
class TlDramPlugin(MechanismPlugin):
    """TL-DRAM near-segment baseline (paper Section 9)."""

    def build(self, ctx: BuildContext):
        return TlDram(ctx.geometry, ctx.timing)

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": config.tldram_near_rows}


@register_mechanism("salp")
class SalpPlugin(MechanismPlugin):
    """SALP-MASA subarray-parallelism baseline (paper Section 9)."""

    def build(self, ctx: BuildContext):
        return SalpMasa(
            ctx.geometry, ctx.timing, open_page=ctx.config.salp_open_page
        )

    def geometry_overrides(self, config) -> dict:
        return {
            "rows_per_subarray": (
                config.geometry.rows_per_bank
                // config.salp_subarrays_per_bank
            ),
            "copy_rows_per_subarray": 0,
        }

    def salp_subarrays(self, config, geometry) -> int | None:
        return geometry.subarrays_per_bank

    def controller_config(self, config, controller_config):
        if config.salp_open_page:
            return replace(controller_config, row_timeout_ns=None)
        return controller_config


@register_mechanism("chargecache")
class ChargeCachePlugin(MechanismPlugin):
    """ChargeCache recently-precharged-row baseline (paper Section 9)."""

    def build(self, ctx: BuildContext):
        return ChargeCache(ctx.geometry, ctx.timing)

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}
