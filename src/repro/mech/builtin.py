"""Builtin plugins: the CROW family and the paper's baselines.

These port the twelve pre-plugin mechanism names onto the registry with
**byte-identical** behaviour — each ``build`` body is the corresponding
branch of the old ``sim/factory.build_mechanism`` if-chain, each
``geometry_overrides`` the matching ``SystemConfig.resolved_geometry``
branch, and the wiring hooks reproduce the name checks that used to be
spread through ``System.__init__``. The committed telemetry-digest
oracle (``tests/data/expected_digests.json``) is the proof.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import ChargeCache, IdealCrowCache, SalpMasa, TlDram
from repro.baselines.tldram import TLDRAM_TIMING_FACTORS
from repro.controller.mechanism import NoMechanism
from repro.core import CrowCache, CrowCacheRef, CrowRef, RowHammerMitigation
from repro.core.cache import crow_act_c_timings, crow_act_t_timings
from repro.dram.commands import ActTimings
from repro.dram.timing import CrowTimings, scale_cycles
from repro.mech.plugin import BuildContext, MechanismPlugin
from repro.mech.registry import register_mechanism

__all__: list[str] = []


def _resolved_crow(timing, crow_timings) -> CrowTimings:
    return (
        crow_timings
        if crow_timings is not None
        else CrowTimings.from_factors(timing)
    )


def _safe_copy_timings(crow: CrowTimings) -> ActTimings:
    """``ACT-c`` for remap duplication: the copy must restore fully (it
    will later be activated alone), so early termination is forbidden.
    Mirrors the inline construction in CrowRef/RowHammerMitigation."""
    return ActTimings(
        trcd=crow.trcd_act_c,
        tras_full=crow.tras_act_c_full,
        tras_early=crow.tras_act_c_full,
        twr=crow.twr_mra_full,
    )


class _CrowCacheVariants:
    """Shared ``timing_variants`` for the CROW-cache family plugins."""

    def timing_variants(self, config, timing, crow_timings) -> dict:
        crow = _resolved_crow(timing, crow_timings)
        partial = config.allow_partial_restore
        twr = config.reduced_twr
        return {
            "act-t-full": crow_act_t_timings(
                crow, partial, twr, fully_restored=True
            ),
            "act-t-partial": crow_act_t_timings(
                crow, partial, twr, fully_restored=False
            ),
            "act-t-restore": crow_act_t_timings(
                crow, partial, twr, fully_restored=False, force_full=True
            ),
            "act-c": crow_act_c_timings(
                crow, partial, twr, config.act_c_early_termination
            ),
        }


@register_mechanism("baseline")
class BaselinePlugin(MechanismPlugin):
    """Conventional DRAM (the paper's baseline)."""

    def build(self, ctx: BuildContext):
        return NoMechanism(ctx.geometry, ctx.timing)

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}


@register_mechanism("crow-cache")
class CrowCachePlugin(_CrowCacheVariants, MechanismPlugin):
    """CROW in-DRAM cache (paper Section 4.1)."""

    def build(self, ctx: BuildContext):
        from repro.core.table import CrowTable

        config = ctx.config
        table = CrowTable(ctx.geometry, config.subarray_group_size)
        return CrowCache(
            ctx.geometry,
            ctx.timing,
            crow=ctx.crow_timings,
            table=table,
            allow_partial_restore=config.allow_partial_restore,
            reduced_twr=config.reduced_twr,
            act_c_early_termination=config.act_c_early_termination,
            evict_partial=config.evict_partial,
        )


@register_mechanism("crow-ref")
class CrowRefPlugin(MechanismPlugin):
    """CROW weak-row remapping for an extended refresh window (§4.2)."""

    def build(self, ctx: BuildContext):
        assert ctx.retention is not None
        return CrowRef(
            ctx.geometry,
            ctx.timing,
            ctx.retention,
            crow=ctx.crow_timings,
            channel=ctx.channel,
            base_window_ms=ctx.config.refresh_window_ms,
        )

    def needs_retention(self, config) -> bool:
        return True

    def timing_variants(self, config, timing, crow_timings) -> dict:
        crow = _resolved_crow(timing, crow_timings)
        return {"act-c-remap": _safe_copy_timings(crow)}


@register_mechanism("crow-combined")
class CrowCombinedPlugin(_CrowCacheVariants, MechanismPlugin):
    """CROW cache + ref on one substrate (paper Section 4.4)."""

    def build(self, ctx: BuildContext):
        assert ctx.retention is not None
        config = ctx.config
        return CrowCacheRef(
            ctx.geometry,
            ctx.timing,
            ctx.retention,
            crow=ctx.crow_timings,
            channel=ctx.channel,
            base_window_ms=config.refresh_window_ms,
            allow_partial_restore=config.allow_partial_restore,
            reduced_twr=config.reduced_twr,
            act_c_early_termination=config.act_c_early_termination,
            evict_partial=config.evict_partial,
        )

    def needs_retention(self, config) -> bool:
        return True

    def timing_variants(self, config, timing, crow_timings) -> dict:
        variants = super().timing_variants(config, timing, crow_timings)
        variants["act-c-remap"] = _safe_copy_timings(
            _resolved_crow(timing, crow_timings)
        )
        return variants


@register_mechanism("crow-hammer")
class CrowHammerPlugin(MechanismPlugin):
    """Victim-row remapping RowHammer defense (paper Section 4.3)."""

    def build(self, ctx: BuildContext):
        return RowHammerMitigation(
            ctx.geometry,
            ctx.timing,
            crow=ctx.crow_timings,
            hammer_threshold=ctx.config.hammer_threshold,
        )

    def timing_variants(self, config, timing, crow_timings) -> dict:
        crow = _resolved_crow(timing, crow_timings)
        return {"act-c-remap": _safe_copy_timings(crow)}


@register_mechanism("crow-full")
class CrowFullPlugin(CrowCombinedPlugin):
    """Cache + ref + hammer on one shared copy-row pool."""

    def build(self, ctx: BuildContext):
        from repro.core import CrowFullSubstrate

        assert ctx.retention is not None
        config = ctx.config
        return CrowFullSubstrate(
            ctx.geometry,
            ctx.timing,
            ctx.retention,
            crow=ctx.crow_timings,
            channel=ctx.channel,
            base_window_ms=config.refresh_window_ms,
            hammer_threshold=config.hammer_threshold,
            allow_partial_restore=config.allow_partial_restore,
            reduced_twr=config.reduced_twr,
            act_c_early_termination=config.act_c_early_termination,
            evict_partial=config.evict_partial,
        )

    def needs_retention(self, config) -> bool:
        return True


@register_mechanism("ideal-crow-cache")
class IdealCrowCachePlugin(MechanismPlugin):
    """100%-hit-rate CROW-cache upper bound (Figure 14)."""

    def build(self, ctx: BuildContext):
        return IdealCrowCache(
            ctx.geometry,
            ctx.timing,
            crow=ctx.crow_timings,
            allow_partial_restore=ctx.config.allow_partial_restore,
        )

    def assume_ideal_duplicates(self, config) -> bool:
        return True

    def timing_variants(self, config, timing, crow_timings) -> dict:
        crow = _resolved_crow(timing, crow_timings)
        partial = config.allow_partial_restore
        return {
            "act-t-ideal": ActTimings(
                trcd=crow.trcd_act_t_full,
                tras_full=crow.tras_act_t_full,
                tras_early=(
                    crow.tras_act_t_early if partial else crow.tras_act_t_full
                ),
                twr=crow.twr_mra_early if partial else crow.twr_mra_full,
                twr_full=crow.twr_mra_full if partial else None,
            ),
        }


@register_mechanism("ideal")
class IdealPlugin(IdealCrowCachePlugin):
    """Ideal CROW-cache + no refresh (the Figure 14 combined bound)."""

    def uses_controller_refresh(self, config) -> bool:
        return False


@register_mechanism("no-refresh")
class NoRefreshPlugin(MechanismPlugin):
    """Conventional DRAM with refresh disabled (refresh-cost bound)."""

    def build(self, ctx: BuildContext):
        return NoMechanism(ctx.geometry, ctx.timing)

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}

    def uses_controller_refresh(self, config) -> bool:
        return False


@register_mechanism("tl-dram")
class TlDramPlugin(MechanismPlugin):
    """TL-DRAM near-segment baseline (paper Section 9)."""

    def build(self, ctx: BuildContext):
        return TlDram(ctx.geometry, ctx.timing)

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": config.tldram_near_rows}

    def timing_variants(self, config, timing, crow_timings) -> dict:
        f = TLDRAM_TIMING_FACTORS
        return {
            "act-near": ActTimings(
                trcd=scale_cycles(timing.trcd, f.near_trcd),
                tras_full=scale_cycles(timing.tras, f.near_tras),
                tras_early=scale_cycles(timing.tras, f.near_tras),
                twr=timing.twr,
            ),
            "act-far": ActTimings(
                trcd=scale_cycles(timing.trcd, f.far_trcd),
                tras_full=scale_cycles(timing.tras, f.far_tras),
                tras_early=scale_cycles(timing.tras, f.far_tras),
                twr=timing.twr,
            ),
            "act-c-copy": ActTimings(
                trcd=scale_cycles(timing.trcd, f.far_trcd),
                tras_full=scale_cycles(timing.tras, f.copy_tras),
                tras_early=scale_cycles(timing.tras, f.copy_tras),
                twr=timing.twr,
            ),
        }


@register_mechanism("salp")
class SalpPlugin(MechanismPlugin):
    """SALP-MASA subarray-parallelism baseline (paper Section 9)."""

    def build(self, ctx: BuildContext):
        return SalpMasa(
            ctx.geometry, ctx.timing, open_page=ctx.config.salp_open_page
        )

    def geometry_overrides(self, config) -> dict:
        return {
            "rows_per_subarray": (
                config.geometry.rows_per_bank
                // config.salp_subarrays_per_bank
            ),
            "copy_rows_per_subarray": 0,
        }

    def salp_subarrays(self, config, geometry) -> int | None:
        return geometry.subarrays_per_bank

    def controller_config(self, config, controller_config):
        if config.salp_open_page:
            return replace(controller_config, row_timeout_ns=None)
        return controller_config


@register_mechanism("chargecache")
class ChargeCachePlugin(MechanismPlugin):
    """ChargeCache recently-precharged-row baseline (paper Section 9)."""

    def build(self, ctx: BuildContext):
        return ChargeCache(ctx.geometry, ctx.timing)

    def geometry_overrides(self, config) -> dict:
        return {"copy_rows_per_subarray": 0}

    def timing_variants(self, config, timing, crow_timings) -> dict:
        # Default ChargeCache factors: tRCD -21%, tRAS -5% [26].
        return {
            "act-charged": ActTimings(
                trcd=scale_cycles(timing.trcd, 0.79),
                tras_full=scale_cycles(timing.tras, 0.95),
                tras_early=scale_cycles(timing.tras, 0.95),
                twr=timing.twr,
            ),
        }
