"""Memory request representation."""

from __future__ import annotations

import enum
from typing import Callable

from repro.dram.address import DramAddress

__all__ = ["RequestType", "MemRequest"]


class RequestType(enum.IntEnum):
    """Read or write request."""
    READ = 0
    WRITE = 1


class MemRequest:
    """One cache-line request from the processor side.

    ``callback(request, finish_cycle)`` fires when the data transfer
    completes (reads) or the write is accepted by the device. Prefetch
    requests are ordinary reads whose completion nobody blocks on.
    """

    __slots__ = (
        "type",
        "address",
        "location",
        "core_id",
        "arrival",
        "callback",
        "is_prefetch",
        "issued_at",
        "completed_at",
        "col_cmd",
    )

    def __init__(
        self,
        type: RequestType,
        address: int,
        location: DramAddress,
        core_id: int = 0,
        arrival: int = 0,
        callback: Callable[["MemRequest", int], None] | None = None,
        is_prefetch: bool = False,
    ) -> None:
        self.type = type
        self.address = address
        self.location = location
        self.core_id = core_id
        self.arrival = arrival
        self.callback = callback
        self.is_prefetch = is_prefetch
        self.issued_at: int | None = None
        self.completed_at: int | None = None
        #: Controller-owned memo: ``(subarray, Command)`` for this
        #: request's column access (the command is invariant per serving
        #: subarray, so the scheduler builds it once).
        self.col_cmd: "tuple | None" = None

    def __call__(self, finish: int) -> None:
        """Fire the completion callback (the request is its own event).

        The controller schedules the request object itself on the system
        event heap; at the finish cycle the heap calls it with that
        cycle. Keeping the event a plain object (not a closure over
        ``finish``) is what makes the event heap serializable.
        """
        self.callback(self, finish)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self, callback_tag: str | None) -> dict:
        """Request state minus live object references.

        ``location`` is rebuilt from the address by the mapper and the
        ``col_cmd`` memo is dropped (it regenerates on the next scheduler
        pass); ``callback_tag`` names the callback symbolically (the owner
        resolves it back to a bound method on load).
        """
        return {
            "type": int(self.type),
            "address": self.address,
            "core_id": self.core_id,
            "arrival": self.arrival,
            "is_prefetch": self.is_prefetch,
            "issued_at": self.issued_at,
            "completed_at": self.completed_at,
            "callback": callback_tag,
        }

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        location: DramAddress,
        callback: Callable[["MemRequest", int], None] | None,
    ) -> "MemRequest":
        request = cls(
            RequestType(state["type"]),
            state["address"],
            location,
            core_id=state["core_id"],
            arrival=state["arrival"],
            callback=callback,
            is_prefetch=state["is_prefetch"],
        )
        request.issued_at = state["issued_at"]
        request.completed_at = state["completed_at"]
        return request

    @property
    def latency(self) -> int | None:
        """Arrival-to-completion latency in memory cycles, once finished."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemRequest({self.type.name}, 0x{self.address:x}, "
            f"bank={self.location.bank}, row={self.location.row}, "
            f"core={self.core_id}, t={self.arrival})"
        )
