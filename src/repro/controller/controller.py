"""Per-channel memory controller.

Implements the paper's Table 2 controller: 64-entry read and write queues,
FR-FCFS-Cap scheduling, a 75 ns timeout row-buffer policy, write draining
with high/low watermarks, periodic all-bank refresh, and the CROW
mechanism hook for activation planning.

The controller is event-paced: :meth:`ChannelController.tick` issues at
most one DRAM command (the command bus carries one command per cycle) and
returns the next cycle at which calling it again can possibly make
progress, so the simulation loop can skip dead time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.controller.mechanism import ActivationPlan, Mechanism, NoMechanism
from repro.controller.request import MemRequest, RequestType
from repro.controller.scheduler import FrFcfsCap, Scheduler
from repro.dram.commands import Command, CommandKind, RowId
from repro.dram.device import DramChannel
from repro.dram.timing import REF_COMMANDS_PER_WINDOW
from repro.errors import ConfigError
from repro.units import ns_to_cycles

__all__ = ["ControllerConfig", "ChannelController"]

#: Sentinel wake time for "nothing to do until an external event".
IDLE = 1 << 62


@dataclass(frozen=True)
class ControllerConfig:
    """Controller structure and policy parameters (Table 2 defaults)."""

    read_queue_size: int = 64
    write_queue_size: int = 64
    write_drain_high: int = 48
    write_drain_low: int = 16
    fr_fcfs_cap: int = 4
    #: Timeout row policy: close an open row after this long without
    #: pending requests to it. ``None`` selects an open-page policy.
    row_timeout_ns: float | None = 75.0
    #: Maximum ranked candidates evaluated for readiness per tick.
    scheduler_window: int = 12
    #: Enable store-to-load forwarding from the write queue.
    write_forwarding: bool = True

    def __post_init__(self) -> None:
        if self.read_queue_size < 1 or self.write_queue_size < 1:
            raise ConfigError("queue sizes must be >= 1")
        if not 0 < self.write_drain_low <= self.write_drain_high:
            raise ConfigError("invalid write drain watermarks")
        if self.write_drain_high > self.write_queue_size:
            raise ConfigError("drain_high cannot exceed the write queue size")
        if self.scheduler_window < 1:
            raise ConfigError("scheduler_window must be >= 1")


class ChannelController:
    """Scheduler + state machine for one DRAM channel."""

    def __init__(
        self,
        channel: DramChannel,
        mechanism: Mechanism | None = None,
        scheduler: Scheduler | None = None,
        config: ControllerConfig | None = None,
        schedule_event: Callable[[int, Callable[[], None]], None] | None = None,
        refresh_enabled: bool = True,
    ) -> None:
        self.channel = channel
        self.geometry = channel.geometry
        self.timing = channel.timing
        self.config = config if config is not None else ControllerConfig()
        self.mechanism = (
            mechanism
            if mechanism is not None
            else NoMechanism(self.geometry, self.timing)
        )
        self.scheduler = (
            scheduler if scheduler is not None else FrFcfsCap(self.config.fr_fcfs_cap)
        )
        self.schedule_event = schedule_event
        self.refresh_enabled = refresh_enabled
        # Construction-time override detection: mechanisms that pace
        # their own work (HiRA) override next_wake; everyone else pays
        # one `is not None` branch per tick instead of a method call.
        self._mech_wake = (
            self.mechanism.next_wake
            if type(self.mechanism).next_wake is not Mechanism.next_wake
            else None
        )

        self.read_q: list[MemRequest] = []
        self.write_q: list[MemRequest] = []
        self.drain_mode = False
        self.next_ref = self.timing.trefi if refresh_enabled else IDLE
        self.refresh_backlog = 0
        self.hit_streak = [0] * self.geometry.banks_per_channel
        self.bank_last_use = [0] * self.geometry.banks_per_channel
        self.bank_pending = [0] * self.geometry.banks_per_channel
        if self.config.row_timeout_ns is None:
            self.row_timeout = None
        else:
            self.row_timeout = ns_to_cycles(
                self.config.row_timeout_ns, self.timing.clock_mhz
            )

        # Memoized command objects: PRE and REF are fully determined by
        # (bank, subarray), and Command is immutable, so the scheduler can
        # reuse one instance instead of re-validating a frozen dataclass
        # on every readiness evaluation (a top cost in profile runs).
        self._salp = channel.salp
        self._pre_cmds = tuple(
            Command(CommandKind.PRE, bank=b)
            for b in range(self.geometry.banks_per_channel)
        )
        self._salp_pre_cmds: dict[tuple[int, int], Command] = {}
        self._ref_cmd = Command(CommandKind.REF)
        # Activation commands are likewise immutable and fully determined
        # by (kind, bank, rows, timings); candidates are re-planned every
        # scheduling pass until they issue, so the same command is built
        # many times over.
        self._act_cmds: dict[tuple, Command] = {}

        # Statistics.
        self.stats = {
            "reads_served": 0,
            "writes_served": 0,
            "row_hits": 0,
            "row_misses": 0,
            "row_conflicts": 0,
            "forwarded_reads": 0,
            "restore_activations": 0,
            "refreshes": 0,
            "read_latency_sum": 0,
            "write_drains": 0,
        }
        #: Optional telemetry hook: a ``Histogram`` observing read
        #: latencies (set by :class:`repro.telemetry.SystemTelemetry`;
        #: ``None`` — the default — costs one branch per completion).
        self.latency_hist = None

    # ------------------------------------------------------------------
    # Request admission
    # ------------------------------------------------------------------
    def can_accept(self, type: RequestType) -> bool:
        """Whether the queue for ``type`` has a free slot."""
        if type is RequestType.READ:
            return len(self.read_q) < self.config.read_queue_size
        return len(self.write_q) < self.config.write_queue_size

    def enqueue(self, request: MemRequest, now: int) -> bool:
        """Accept a request; returns False when the queue is full."""
        if not self.can_accept(request.type):
            return False
        request.arrival = now
        if request.type is RequestType.READ:
            if self.config.write_forwarding:
                for pending in self.write_q:
                    if pending.address == request.address:
                        self.stats["forwarded_reads"] += 1
                        self._complete(request, now + self.timing.tcl)
                        return True
            self.read_q.append(request)
        else:
            self.write_q.append(request)
            if len(self.write_q) >= self.config.write_drain_high:
                if not self.drain_mode:
                    self.stats["write_drains"] += 1
                self.drain_mode = True
        self.bank_pending[request.location.bank] += 1
        return True

    @property
    def pending_requests(self) -> int:
        """Requests currently waiting in both queues."""
        return len(self.read_q) + len(self.write_q)

    # ------------------------------------------------------------------
    # Main issue loop
    # ------------------------------------------------------------------
    def tick(self, now: int) -> int:
        """Issue at most one command; return the next useful wake time."""
        if self.refresh_enabled and now >= self.next_ref:
            return self._do_refresh(now)

        urgent = self.mechanism.urgent_plan(now)
        if urgent is not None:
            wake = self._serve_urgent(urgent, now)
            if wake is not None:
                return wake

        queue = self._active_queue()
        if queue:
            issued, earliest = self._serve_queue(queue, now)
            if issued:
                return now + 1
            wake = earliest
        else:
            wake = IDLE

        timeout_wake = self._apply_row_timeout(now)
        if self._mech_wake is not None:
            wake = min(wake, self._mech_wake(now))
        return max(now + 1, min(wake, timeout_wake, self.next_ref))

    # ------------------------------------------------------------------
    # Refresh handling
    # ------------------------------------------------------------------
    def _do_refresh(self, now: int) -> int:
        """Progress toward the pending REF; return the next wake time."""
        # Precharge any open bank first (one PRE per tick).
        for bank_index, bank in enumerate(self.channel.banks):
            if not bank.is_open:
                continue
            pre = self._pre_command_for_bank(bank_index)
            earliest = self.channel.earliest_issue(pre)
            if earliest <= now:
                self._issue_pre(pre, now)
                return now + 1
            return earliest
        ref = self._ref_cmd
        earliest = self.channel.earliest_issue(ref)
        if earliest > now:
            return earliest
        cursor = self.channel.refresh_cursor
        rows_per_ref = max(1, self.geometry.rows_per_bank // REF_COMMANDS_PER_WINDOW)
        self.channel.issue(ref, now)
        self.stats["refreshes"] += 1
        self.mechanism.on_refresh(range(cursor, cursor + rows_per_ref), now)
        self.next_ref += self.timing.trefi
        return self.channel.ref_busy_until

    # ------------------------------------------------------------------
    # Mechanism-initiated (urgent) activations
    # ------------------------------------------------------------------
    def _serve_urgent(
        self, urgent: tuple[int, ActivationPlan], now: int
    ) -> int | None:
        """Issue one command toward an urgent plan; return the wake time,
        or None to fall through to normal queue service this tick."""
        bank_index, plan = urgent
        bank = self.channel.banks[bank_index]
        if bank.is_open:
            pre = self._pre_command_for_bank(bank_index)
            earliest = self.channel.earliest_issue(pre)
            if earliest <= now:
                self._issue_pre(pre, now)
                return now + 1
            return earliest
        command = Command(
            plan.kind, bank=bank_index, rows=plan.rows, timings=plan.timings
        )
        earliest = self.channel.earliest_issue(command)
        if earliest <= now:
            self.channel.issue(command, now)
            self.hit_streak[bank_index] = 0
            self.bank_last_use[bank_index] = now
            self.mechanism.on_activate(bank_index, plan, now)
            return now + 1
        return earliest

    # ------------------------------------------------------------------
    # Queue service
    # ------------------------------------------------------------------
    def _active_queue(self) -> list[MemRequest]:
        if self.drain_mode:
            if len(self.write_q) <= self.config.write_drain_low:
                self.drain_mode = False
            else:
                return self.write_q
        if self.read_q:
            return self.read_q
        return self.write_q

    def _serve_queue(
        self, queue: list[MemRequest], now: int
    ) -> tuple[bool, int]:
        """Try to issue one command for the highest-priority ready request.

        Returns ``(issued, earliest)`` where ``earliest`` is the soonest
        time any evaluated candidate could have issued (IDLE if none).
        """
        earliest_any = IDLE
        evaluated = 0
        # Bank state cannot change between ranking and candidate
        # evaluation (issuing returns immediately below), so the
        # (service row, open rows) pair the ranking probe computes is
        # still valid when the candidate is evaluated — memoize it per
        # request instead of recomputing in _next_command.
        service_row = self.mechanism.service_row
        open_rows_of = self._open_rows
        rowinfo: dict[int, tuple] = {}

        def is_hit(request: MemRequest) -> bool:
            bank = request.location.bank
            srow = service_row(bank, request.location.row)
            open_rows = open_rows_of(bank, srow)
            rowinfo[id(request)] = (srow, open_rows)
            return open_rows is not None and srow in open_rows

        for request in self.scheduler.ranked(queue, is_hit, self._streak_of):
            command, plan = self._next_command(
                request, now, rowinfo.get(id(request))
            )
            earliest = self.channel.earliest_issue(command)
            if earliest <= now:
                self._issue_for_request(request, command, plan, now)
                return True, now
            earliest_any = min(earliest_any, earliest)
            evaluated += 1
            if evaluated >= self.config.scheduler_window:
                break
        return False, earliest_any

    def _streak_of(self, request: MemRequest) -> int:
        return self.hit_streak[request.location.bank]

    def _next_command(
        self,
        request: MemRequest,
        now: int,
        rowinfo: tuple | None = None,
    ) -> tuple[Command, ActivationPlan | None]:
        """The next DRAM command needed to advance ``request``.

        ``plan_activation`` must be side-effect free: the controller may
        evaluate several candidates per tick and re-plan on later ticks;
        mechanisms mutate their state only in ``on_activate``.
        ``rowinfo`` is an optional ``(service row, open rows)`` pair
        memoized by the ranking probe within the same scheduling pass.
        """
        bank = request.location.bank
        if rowinfo is not None:
            srow, open_rows = rowinfo
        else:
            srow = self.mechanism.service_row(bank, request.location.row)
            open_rows = self._open_rows(bank, srow)
        if open_rows is not None and srow in open_rows:
            subarray = srow.subarray if self._salp else None
            cached = request.col_cmd
            if cached is not None and cached[0] == subarray:
                return cached[1], None
            command = Command(
                CommandKind.RD
                if request.type is RequestType.READ
                else CommandKind.WR,
                bank=bank,
                col=request.location.col,
                subarray=subarray,
            )
            request.col_cmd = (subarray, command)
            return command, None
        if open_rows is not None:
            return self._pre_command(bank, srow.subarray), None
        plan = self.mechanism.plan_activation(bank, request.location.row, now)
        key = (plan.kind, bank, plan.rows, plan.timings)
        command = self._act_cmds.get(key)
        if command is None:
            command = Command(
                plan.kind, bank=bank, rows=plan.rows, timings=plan.timings
            )
            self._act_cmds[key] = command
        return command, plan

    def _issue_for_request(
        self,
        request: MemRequest,
        command: Command,
        plan: ActivationPlan | None,
        now: int,
    ) -> None:
        bank = command.bank
        kind = command.kind
        if kind in (CommandKind.RD, CommandKind.WR):
            result = self.channel.issue(command, now)
            self.hit_streak[bank] += 1
            self.bank_last_use[bank] = now
            self.stats["row_hits"] += 1
            self._dequeue(request)
            if kind is CommandKind.RD:
                self.stats["reads_served"] += 1
                self._complete(request, result.data_at)
            else:
                self.stats["writes_served"] += 1
                self._complete(request, result.done_at)
        elif kind is CommandKind.PRE:
            result = self.channel.issue(command, now)
            self.hit_streak[bank] = 0
            self.stats["row_conflicts"] += 1
            assert result.precharge is not None
            self.mechanism.on_precharge(bank, result.precharge, now)
        else:  # activation
            assert plan is not None
            self.channel.issue(command, now)
            self.hit_streak[bank] = 0
            self.bank_last_use[bank] = now
            self.stats["row_misses"] += 1
            if plan.is_restore:
                self.stats["restore_activations"] += 1
            self.mechanism.on_activate(bank, plan, now)

    def _dequeue(self, request: MemRequest) -> None:
        queue = self.read_q if request.type is RequestType.READ else self.write_q
        queue.remove(request)
        self.bank_pending[request.location.bank] -= 1

    def _complete(self, request: MemRequest, finish: int) -> None:
        request.completed_at = finish
        if request.type is RequestType.READ:
            latency = finish - request.arrival
            self.stats["read_latency_sum"] += latency
            if self.latency_hist is not None:
                self.latency_hist.observe(latency)
        if request.callback is None:
            return
        if self.schedule_event is None:
            request.callback(request, finish)
        else:
            self.schedule_event(finish, request)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self, encode_request) -> dict:
        """Queues, policy state, statistics and the mechanism's state.

        ``encode_request`` maps a queued :class:`MemRequest` to its state
        dict (the owner knows how to tag callbacks). A request is never
        simultaneously queued and scheduled on the event heap — completion
        always dequeues first — so queue entries are serialized here and
        in-flight completions by the event heap, without aliasing.
        ``latency_hist`` is telemetry-owned wiring; its contents restore
        with the telemetry state.
        """
        return {
            "read_q": [encode_request(r) for r in self.read_q],
            "write_q": [encode_request(r) for r in self.write_q],
            "drain_mode": self.drain_mode,
            "next_ref": self.next_ref,
            "refresh_backlog": self.refresh_backlog,
            "hit_streak": list(self.hit_streak),
            "bank_last_use": list(self.bank_last_use),
            "bank_pending": list(self.bank_pending),
            "stats": dict(self.stats),
            "mechanism": self.mechanism.state_dict(),
        }

    def load_state_dict(self, state: dict, decode_request) -> None:
        self.read_q = [decode_request(r) for r in state["read_q"]]
        self.write_q = [decode_request(r) for r in state["write_q"]]
        self.drain_mode = state["drain_mode"]
        self.next_ref = state["next_ref"]
        self.refresh_backlog = state["refresh_backlog"]
        self.hit_streak = list(state["hit_streak"])
        self.bank_last_use = list(state["bank_last_use"])
        self.bank_pending = list(state["bank_pending"])
        self.stats = dict(state["stats"])
        self.mechanism.load_state_dict(state["mechanism"])

    # ------------------------------------------------------------------
    # Row-buffer policy
    # ------------------------------------------------------------------
    def _apply_row_timeout(self, now: int) -> int:
        """Close idle open rows after the timeout; return next expiry."""
        if self.row_timeout is None:
            return IDLE
        next_expiry = IDLE
        for bank_index, bank in enumerate(self.channel.banks):
            if not bank.is_open:
                continue
            if self._bank_has_pending(bank_index):
                continue
            expiry = self.bank_last_use[bank_index] + self.row_timeout
            if expiry > now:
                next_expiry = min(next_expiry, expiry)
                continue
            pre = self._pre_command_for_bank(bank_index)
            earliest = self.channel.earliest_issue(pre)
            if earliest <= now:
                self._issue_pre(pre, now)
                return now + 1
            next_expiry = min(next_expiry, earliest)
        return next_expiry

    def _bank_has_pending(self, bank_index: int) -> bool:
        return self.bank_pending[bank_index] > 0

    def _issue_pre(self, pre: Command, now: int) -> None:
        result = self.channel.issue(pre, now)
        self.hit_streak[pre.bank] = 0
        assert result.precharge is not None
        self.mechanism.on_precharge(pre.bank, result.precharge, now)

    # ------------------------------------------------------------------
    # SALP-aware helpers
    # ------------------------------------------------------------------
    def _open_rows(self, bank_index: int, srow: RowId):
        bank = self.channel.banks[bank_index]
        if self._salp:
            return bank.subarrays[srow.subarray].open_rows
        return bank.open_rows

    def _pre_command(self, bank_index: int, subarray: int) -> Command:
        if self._salp:
            key = (bank_index, subarray)
            command = self._salp_pre_cmds.get(key)
            if command is None:
                command = Command(
                    CommandKind.PRE, bank=bank_index, subarray=subarray
                )
                self._salp_pre_cmds[key] = command
            return command
        return self._pre_cmds[bank_index]

    def _pre_command_for_bank(self, bank_index: int) -> Command:
        """A PRE that closes (one of) the bank's open row buffers."""
        bank = self.channel.banks[bank_index]
        if self._salp:
            for subarray, slot in bank.subarrays.items():
                if slot.is_open:
                    return self._pre_command(bank_index, subarray)
            raise ConfigError("no open subarray to precharge")
        return self._pre_cmds[bank_index]

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    @property
    def average_read_latency(self) -> float:
        """Mean arrival-to-data latency of served reads.

        **Defined for the empty case**: returns ``0.0`` (never raises)
        when no reads — demand or forwarded — were served yet, e.g. on a
        freshly-built controller or a write-only phase. Telemetry exports
        the same quantity as a ``Ratio`` whose value is ``None`` when
        undefined; this property keeps the plain-float contract for
        arithmetic consumers.
        """
        served = self.stats["reads_served"] + self.stats["forwarded_reads"]
        if not served:
            return 0.0
        return self.stats["read_latency_sum"] / served

    def row_hit_rate(self) -> float:
        """Column accesses served from open rows, as a fraction.

        **Defined for the empty case**: returns ``0.0`` (never divides)
        when no activation or column command has been issued yet. The
        telemetry ``Ratio`` form distinguishes "no traffic" (``None``)
        from "all misses" (``0.0``) for consumers that care.
        """
        hits = self.stats["row_hits"]
        total = hits + self.stats["row_misses"] + self.stats["row_conflicts"]
        return hits / total if total else 0.0
