"""Request scheduling policies.

The paper's configuration (Table 2) uses FR-FCFS-Cap [81]: the classic
first-ready, first-come-first-served policy, with an upper limit on how
many column accesses an open row may service while older requests to other
rows wait — which improves fairness and, on average, performance over
plain FR-FCFS.

The scheduler ranks requests; the controller evaluates them in rank order
and issues the first whose next required DRAM command is ready. Ranking
and readiness are deliberately separated so the policy stays independent
of the timing engine.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.controller.request import MemRequest
from repro.errors import ConfigError

__all__ = ["Scheduler", "FrFcfs", "FrFcfsCap"]


class Scheduler:
    """Base scheduling policy: rank requests for issue consideration."""

    name = "fcfs"

    def ranked(
        self,
        requests: list[MemRequest],
        is_row_hit: Callable[[MemRequest], bool],
        bank_hit_streak: Callable[[MemRequest], int],
    ) -> Iterator[MemRequest]:
        """Yield requests in descending priority (FCFS by default).

        ``requests`` is maintained in arrival order by the controller.
        """
        return iter(requests)


class FrFcfs(Scheduler):
    """First-ready FCFS: row hits first (by age), then the rest (by age)."""

    name = "fr-fcfs"

    def ranked(
        self,
        requests: list[MemRequest],
        is_row_hit: Callable[[MemRequest], bool],
        bank_hit_streak: Callable[[MemRequest], int],
    ) -> Iterator[MemRequest]:
        """Yield requests in descending scheduling priority."""
        misses = []
        for request in requests:
            if is_row_hit(request):
                yield request
            else:
                misses.append(request)
        yield from misses


class FrFcfsCap(Scheduler):
    """FR-FCFS with a cap on consecutive row hits per activation [81].

    Once a bank has serviced ``cap`` column accesses from its open row
    while other requests wait, further hits to that row lose their
    priority boost, letting older requests close the row.
    """

    name = "fr-fcfs-cap"

    def __init__(self, cap: int = 4) -> None:
        if cap < 1:
            raise ConfigError(f"cap must be >= 1, got {cap}")
        self.cap = cap

    def ranked(
        self,
        requests: list[MemRequest],
        is_row_hit: Callable[[MemRequest], bool],
        bank_hit_streak: Callable[[MemRequest], int],
    ) -> Iterator[MemRequest]:
        """Yield requests in descending scheduling priority."""
        demoted = []
        for request in requests:
            if is_row_hit(request) and bank_hit_streak(request) < self.cap:
                yield request
            else:
                demoted.append(request)
        yield from demoted
