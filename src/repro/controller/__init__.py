"""Memory controller: request queues, scheduling, refresh, mechanism hooks.

One :class:`ChannelController` per DRAM channel, implementing the paper's
Table 2 configuration: 64-entry read/write queues, FR-FCFS-Cap scheduling,
a 75 ns timeout row-buffer policy, and periodic all-bank refresh.

Every CROW mechanism (and every baseline) plugs in through the
:class:`~repro.controller.mechanism.Mechanism` hook, which decides *how* a
row activation is performed (plain ``ACT``, reduced-latency ``ACT-t``,
duplicating ``ACT-c``, a redirect to a remapped copy row, ...), so that
each experiment in the paper is a configuration swap rather than a new
controller.
"""

from repro.controller.request import MemRequest, RequestType
from repro.controller.mechanism import ActivationPlan, Mechanism, NoMechanism
from repro.controller.scheduler import FrFcfs, FrFcfsCap, Scheduler
from repro.controller.controller import ChannelController, ControllerConfig

__all__ = [
    "MemRequest",
    "RequestType",
    "ActivationPlan",
    "Mechanism",
    "NoMechanism",
    "Scheduler",
    "FrFcfs",
    "FrFcfsCap",
    "ChannelController",
    "ControllerConfig",
]
