"""Mechanism hook: how a row activation is performed.

The controller consults its :class:`Mechanism` before activating a row.
The mechanism answers with an :class:`ActivationPlan` that names the DRAM
command to issue (``ACT``, ``ACT-t``, ``ACT-c``, or a redirected plain
``ACT`` to a copy row), the rows it targets, and the activation timings in
effect. This is the seam through which CROW-cache, CROW-ref, the RowHammer
mitigation, the combined mechanism and the TL-DRAM/SALP/ChargeCache
baselines all plug into one controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.bank import PrechargeResult
from repro.dram.commands import ActTimings, CommandKind, RowId
from repro.dram.timing import TimingParameters

__all__ = ["IDLE", "ActivationPlan", "Mechanism", "NoMechanism"]

#: Sentinel wake time meaning "no mechanism-scheduled work pending".
#: Mirrors the controller's idle sentinel so wake times min() cleanly.
IDLE = 1 << 62


@dataclass(frozen=True)
class ActivationPlan:
    """One activation decision.

    Attributes
    ----------
    kind:
        ``ACT``, ``ACT_T`` or ``ACT_C``.
    rows:
        Activation target(s); must satisfy the :class:`Command` shape for
        ``kind``.
    timings:
        Activation timing overrides (``None`` uses the baseline set).
    is_restore:
        True when this activation does not serve the demand request but
        fully restores a partially-restored row pair so that it can be
        safely evicted from the CROW-table (paper Section 4.1.4). The
        controller issues it, precharges after the full tRAS, and then
        re-plans the demand activation.
    """

    kind: CommandKind
    rows: tuple[RowId, ...]
    timings: ActTimings | None = None
    is_restore: bool = False


class Mechanism:
    """Base mechanism: conventional DRAM behaviour.

    Subclasses override a subset of the hooks. All hooks receive the bank
    index and the *bank-level regular row number* the demand request
    targets, plus the current cycle.
    """

    #: Human-readable name used in experiment tables.
    name = "baseline"

    #: Telemetry stat-group suffix (exported as ``mech.<namespace>``)
    #: for mechanisms whose :meth:`stats` should appear in telemetry
    #: snapshots. ``None`` keeps :meth:`stats` out of telemetry — the
    #: default, because the committed digest oracle predates per-
    #: mechanism namespaces and must stay byte-identical.
    telemetry_namespace: str | None = None

    def __init__(self, geometry, timing: TimingParameters) -> None:
        self.geometry = geometry
        self.timing = timing
        # row -> RowId memo for the identity mapping (geometry is fixed
        # per instance). The controller calls service_row several times
        # per scheduling pass; subclasses with *dynamic* redirection
        # (CROW-ref and friends) override service_row and skip this memo.
        self._service_rows: dict[int, RowId] = {}

    # ------------------------------------------------------------------
    # Activation planning
    # ------------------------------------------------------------------
    def service_row(self, bank: int, row: int) -> RowId:
        """The physical row that serves requests for regular row ``row``.

        Row-hit detection uses this: a request hits if the serving row is
        among the bank's open rows. CROW-ref redirects weak rows to their
        copy rows here.
        """
        rid = self._service_rows.get(row)
        if rid is None:
            rid = RowId.regular(row, self.geometry.rows_per_subarray)
            self._service_rows[row] = rid
        return rid

    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Decide how to activate regular row ``row`` of ``bank``."""
        return ActivationPlan(
            kind=CommandKind.ACT,
            rows=(self.service_row(bank, row),),
        )

    # ------------------------------------------------------------------
    # Event notifications
    # ------------------------------------------------------------------
    def urgent_plan(self, now: int) -> tuple[int, ActivationPlan] | None:
        """A mechanism-initiated activation, independent of any request.

        Used by the RowHammer mitigation to copy victim rows as soon as an
        attack is detected. Returns ``(bank, plan)`` or ``None``. The
        controller issues urgent plans ahead of demand requests (but after
        refresh) and re-polls until the mechanism returns ``None``.
        """
        return None

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Called after an activation command is issued."""

    def on_precharge(self, bank: int, result: PrechargeResult, now: int) -> None:
        """Called after a precharge; ``result`` reports restoration state."""

    def on_refresh(self, refreshed_rows: range, now: int) -> None:
        """Called after a REF command with the regular-row range covered."""

    def next_wake(self, now: int) -> int:
        """Earliest cycle mechanism-initiated work next comes due.

        An otherwise-idle controller sleeps until its next refresh; a
        mechanism that paces its own work (HiRA's hidden refresh
        activations) overrides this so the controller wakes for it.
        Return :data:`IDLE` when nothing is scheduled. The controller
        detects the override at construction time, so the base hook
        costs nothing per tick.
        """
        return IDLE

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Mutable mechanism state for snapshots.

        The base mechanism is stateless apart from the ``_service_rows``
        memo, which is a pure cache and is rebuilt on demand.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (base: nothing)."""

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        return {}

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary (state is kept)."""


class NoMechanism(Mechanism):
    """Explicit alias for conventional DRAM (the paper's baseline)."""

    name = "conventional"
