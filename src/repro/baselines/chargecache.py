"""ChargeCache baseline [26] (paper Section 9, related-work ablation).

ChargeCache observes that a row precharged *recently* still holds
near-full charge, so re-activating it within a short window (~1 ms) can
use reduced tRCD/tRAS. The controller keeps a small table of
recently-precharged row addresses; entries expire after the caching
window because the cells keep leaking.

Contrast with CROW-cache (Section 9): ChargeCache's benefit evaporates
1 ms after the precharge, while a CROW copy row keeps its row fast until
evicted from the CROW-table.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import ActTimings, CommandKind, RowId, RowKind
from repro.dram.timing import TimingParameters, scale_cycles
from repro.errors import ConfigError
from repro.units import ms_to_cycles

__all__ = ["ChargeCache"]


class ChargeCache(Mechanism):
    """Recently-precharged (highly-charged) row tracking."""

    name = "chargecache"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        entries: int = 1024,
        window_ms: float = 1.0,
        trcd_factor: float = 0.79,
        tras_factor: float = 0.95,
    ) -> None:
        super().__init__(geometry, timing)
        if entries < 1:
            raise ConfigError("entries must be >= 1")
        if not 0.0 < trcd_factor <= 1.0 or not 0.0 < tras_factor <= 1.0:
            raise ConfigError("timing factors must be in (0, 1]")
        self.capacity = entries
        self.window_cycles = ms_to_cycles(window_ms, timing.clock_mhz)
        self._fast_timings = ActTimings(
            trcd=scale_cycles(timing.trcd, trcd_factor),
            tras_full=scale_cycles(timing.tras, tras_factor),
            tras_early=scale_cycles(timing.tras, tras_factor),
            twr=timing.twr,
        )
        # (bank, row) -> precharge cycle; ordered for LRU eviction.
        self._table: OrderedDict[tuple[int, int], int] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Mechanism hook: choose the activation command for ``row``."""
        regular = RowId.regular(row, self.geometry.rows_per_subarray)
        stamp = self._table.get((bank, row))
        if stamp is not None and now - stamp <= self.window_cycles:
            return ActivationPlan(
                kind=CommandKind.ACT, rows=(regular,), timings=self._fast_timings
            )
        return ActivationPlan(kind=CommandKind.ACT, rows=(regular,))

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Mechanism hook: an activation command was issued."""
        if plan.timings is self._fast_timings:
            self.hits += 1
        else:
            self.misses += 1

    def on_precharge(self, bank: int, result, now: int) -> None:
        """Mechanism hook: a precharge closed ``result.rows``."""
        for row in result.rows:
            if row.kind is not RowKind.REGULAR:   # copy rows are not tracked
                continue
            key = (bank, row.subarray * self.geometry.rows_per_subarray + row.index)
            self._table[key] = now
            self._table.move_to_end(key)
            while len(self._table) > self.capacity:
                self._table.popitem(last=False)

    def hit_rate(self) -> float:
        """Fraction of demand activations served as table hits."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Table contents (order = LRU stack) plus counters."""
        return {
            "table": list(self._table.items()),
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        self._table = OrderedDict(
            (tuple(key), stamp) for key, stamp in state["table"]
        )
        self.hits = state["hits"]
        self.misses = state["misses"]

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        return {
            "chargecache_hits": self.hits,
            "chargecache_misses": self.misses,
            "chargecache_hit_rate": self.hit_rate(),
        }

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.hits = 0
        self.misses = 0
