"""Tiered-Latency DRAM (TL-DRAM) in-DRAM caching baseline [58].

TL-DRAM splits each subarray's bitlines with isolation transistors into a
short *near* segment (very low tRCD/tRAS — the paper's circuit model finds
-73% tRCD and -80% tRAS for an 8-row near segment) and a long *far*
segment whose accesses pay a small latency penalty for crossing the
isolation transistor. The near segment is managed exactly like
CROW-cache's copy rows: an MRU cache of recently-activated far rows,
filled with an in-DRAM copy operation (we reuse CROW's ``ACT-c``, as the
paper does — Section 8.1.4).

The decisive difference from CROW is cost: the per-bitline isolation
transistors cost 6.9% of chip area versus CROW's 0.48% (Figure 11b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import ActTimings, CommandKind, RowId, RowKind
from repro.dram.timing import TimingParameters, scale_cycles as _scale
from repro.core.table import CrowTable, EntryOwner

__all__ = ["TldramTimingFactors", "TLDRAM_TIMING_FACTORS", "TlDram"]


@dataclass(frozen=True)
class TldramTimingFactors:
    """Timing multipliers for near/far segment accesses."""

    near_trcd: float = 0.27     # -73% (8-row near segment, Section 8.1.4)
    near_tras: float = 0.20     # -80%
    far_trcd: float = 1.04      # isolation transistor penalty
    far_tras: float = 1.09
    copy_tras: float = 1.18     # far->near in-DRAM copy (ACT-c-like)


TLDRAM_TIMING_FACTORS = TldramTimingFactors()


class TlDram(Mechanism):
    """TL-DRAM near-segment MRU cache (one instance per channel)."""

    name = "tl-dram"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        factors: TldramTimingFactors | None = None,
        table: CrowTable | None = None,
    ) -> None:
        super().__init__(geometry, timing)
        self.factors = factors if factors is not None else TLDRAM_TIMING_FACTORS
        self.table = table if table is not None else CrowTable(geometry)
        f = self.factors
        self._near_timings = ActTimings(
            trcd=_scale(timing.trcd, f.near_trcd),
            tras_full=_scale(timing.tras, f.near_tras),
            tras_early=_scale(timing.tras, f.near_tras),
            twr=timing.twr,
        )
        self._far_timings = ActTimings(
            trcd=_scale(timing.trcd, f.far_trcd),
            tras_full=_scale(timing.tras, f.far_tras),
            tras_early=_scale(timing.tras, f.far_tras),
            twr=timing.twr,
        )
        self._copy_timings = ActTimings(
            trcd=_scale(timing.trcd, f.far_trcd),
            tras_full=_scale(timing.tras, f.copy_tras),
            tras_early=_scale(timing.tras, f.copy_tras),
            twr=timing.twr,
        )
        self.hits = 0
        self.misses = 0

    def service_row(self, bank: int, row: int) -> RowId:
        """Physical row that serves requests for ``row`` (remap-aware)."""
        subarray, index = divmod(row, self.geometry.rows_per_subarray)
        entry = self.table.lookup(bank, subarray, index)
        if entry is not None:
            return RowId.copy(subarray, entry.way)
        return RowId.regular(row, self.geometry.rows_per_subarray)

    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Mechanism hook: choose the activation command for ``row``."""
        subarray, index = divmod(row, self.geometry.rows_per_subarray)
        regular = RowId.regular(row, self.geometry.rows_per_subarray)
        entry = self.table.lookup(bank, subarray, index)
        if entry is not None:
            # Near-segment hit: activate the near row alone, very fast.
            return ActivationPlan(
                kind=CommandKind.ACT,
                rows=(RowId.copy(subarray, entry.way),),
                timings=self._near_timings,
            )
        victim = self.table.free_entry(bank, subarray)
        if victim is None:
            victim = self.table.lru_entry(bank, subarray, EntryOwner.CACHE)
        if victim is None:
            return ActivationPlan(
                kind=CommandKind.ACT, rows=(regular,), timings=self._far_timings
            )
        return ActivationPlan(
            kind=CommandKind.ACT_C,
            rows=(regular, RowId.copy(subarray, victim.way)),
            timings=self._copy_timings,
        )

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Mechanism hook: an activation command was issued."""
        if plan.kind is CommandKind.ACT_C:
            regular, copy = plan.rows
            entry = self.table.entry_for_copy_row(bank, copy.subarray, copy.index)
            self.table.allocate(
                bank, copy.subarray, regular.index, EntryOwner.CACHE, now, entry
            )
            entry.is_fully_restored = True
            self.misses += 1
            return
        if plan.rows[0].kind is RowKind.COPY:
            entry = self.table.entry_for_copy_row(
                bank, plan.rows[0].subarray, plan.rows[0].index
            )
            entry.last_use = now
            self.hits += 1
        else:
            self.misses += 1

    def hit_rate(self) -> float:
        """Fraction of demand activations served as table hits."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "table": self.table.state_dict(),
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        self.table.load_state_dict(state["table"])
        self.hits = state["hits"]
        self.misses = state["misses"]

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        return {
            "tldram_hits": self.hits,
            "tldram_misses": self.misses,
            "tldram_hit_rate": self.hit_rate(),
        }

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.hits = 0
        self.misses = 0
