"""SALP-MASA baseline [53] (paper Section 8.1.4).

SALP exposes the subarray structure of a bank so that multiple local row
buffers can hold open rows at once. The timing behaviour lives in the
device model (:class:`repro.dram.bank.SalpBankState`, enabled through
``DramChannel(salp_subarrays=...)``) and the row-buffer policy (timeout or
open-page) lives in the controller configuration; this mechanism class
carries the identity and statistics, and keeps conventional activation
timings (SALP does not change activation latency, it avoids re-activation
by keeping rows open in parallel subarrays).

The in-DRAM cache capacity of SALP equals the number of subarrays per
bank, so the Figure 11 sweep (SALP-64/128/256) is expressed by changing
``DramGeometry.rows_per_subarray`` while holding capacity constant.
"""

from __future__ import annotations

from repro.controller.mechanism import Mechanism

__all__ = ["SalpMasa"]


class SalpMasa(Mechanism):
    """Marker mechanism for SALP-MASA runs (plain activations)."""

    name = "salp-masa"

    def __init__(self, geometry, timing, open_page: bool = False) -> None:
        super().__init__(geometry, timing)
        self.open_page = open_page

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        return {"salp_open_page": float(self.open_page)}
