"""Idealized bounds used by the paper's Figures 8, 9 and 14.

*Ideal CROW-cache* assumes a 100% CROW-table hit rate: every activation is
an ``ACT-t`` on a fully-restored pair, paying the MRA energy overhead but
never the copy/eviction costs. Combined with disabled refresh it forms the
"ideal" bound of Figure 14.
"""

from __future__ import annotations

from repro.controller.mechanism import ActivationPlan, Mechanism
from repro.dram.commands import ActTimings, CommandKind, RowId
from repro.dram.timing import CrowTimings, TimingParameters

__all__ = ["IdealCrowCache"]


class IdealCrowCache(Mechanism):
    """Hypothetical CROW-cache with a 100% hit rate (timing-only model)."""

    name = "ideal-crow-cache"

    def __init__(
        self,
        geometry,
        timing: TimingParameters,
        crow: CrowTimings | None = None,
        allow_partial_restore: bool = True,
    ) -> None:
        super().__init__(geometry, timing)
        crow = crow if crow is not None else CrowTimings.from_factors(timing)
        self._timings = ActTimings(
            trcd=crow.trcd_act_t_full,
            tras_full=crow.tras_act_t_full,
            tras_early=(
                crow.tras_act_t_early
                if allow_partial_restore
                else crow.tras_act_t_full
            ),
            twr=crow.twr_mra_early if allow_partial_restore else crow.twr_mra_full,
            twr_full=crow.twr_mra_full if allow_partial_restore else None,
        )
        self.activations = 0

    def plan_activation(self, bank: int, row: int, now: int) -> ActivationPlan:
        """Mechanism hook: choose the activation command for ``row``."""
        regular = RowId.regular(row, self.geometry.rows_per_subarray)
        return ActivationPlan(
            kind=CommandKind.ACT_T,
            rows=(regular, RowId.copy(regular.subarray, 0)),
            timings=self._timings,
        )

    def on_activate(self, bank: int, plan: ActivationPlan, now: int) -> None:
        """Mechanism hook: an activation command was issued."""
        self.activations += 1

    def state_dict(self) -> dict:
        return {"activations": self.activations}

    def load_state_dict(self, state: dict) -> None:
        self.activations = state["activations"]

    def stats(self) -> dict[str, float]:
        """Mechanism-specific statistics for the metrics layer."""
        return {"ideal_activations": float(self.activations)}

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.activations = 0
