"""Baseline and comparison mechanisms (paper Section 8.1.4, Figure 11).

* :mod:`repro.baselines.tldram` — Tiered-Latency DRAM [58]: a fast near
  segment per subarray used as an MRU cache of far-segment rows.
* :mod:`repro.baselines.salp` — SALP-MASA [53]: subarray-level parallelism
  with per-subarray row buffers (timeout or open-page policies).
* :mod:`repro.baselines.chargecache` — ChargeCache [26]: reduced-latency
  re-activation of recently-precharged (highly-charged) rows.
* :mod:`repro.baselines.ideal` — the paper's *Ideal CROW-cache* (100%
  CROW-table hit rate) and no-refresh bounds used in Figures 8 and 14.
"""

from repro.baselines.tldram import TlDram, TLDRAM_TIMING_FACTORS
from repro.baselines.salp import SalpMasa
from repro.baselines.chargecache import ChargeCache
from repro.baselines.ideal import IdealCrowCache

__all__ = [
    "TlDram",
    "TLDRAM_TIMING_FACTORS",
    "SalpMasa",
    "ChargeCache",
    "IdealCrowCache",
]
