"""Parametric access-pattern generators.

Each generator yields an infinite stream of
:class:`~repro.cpu.core.TraceRecord` tuples. All randomness flows through a
``numpy.random.Generator`` seeded by the caller, so every trace is
reproducible.

Pattern vocabulary (matched to the paper's workload discussion):

* ``streaming_trace`` — sequential lines; very high row-buffer locality,
  prefetcher-friendly (paper's *streaming* microbenchmark / STREAM suite).
* ``random_trace`` — uniform random lines over a footprint; minimal
  row-buffer locality (paper's *random* microbenchmark, mcf/milc-like).
* ``strided_trace`` — fixed non-unit stride; regular but row-unfriendly.
* ``hotset_trace`` — most accesses revisit a small hot set of rows; high
  in-DRAM locality, the behaviour CROW-cache exploits (h264-like).
* ``mixed_trace`` — phase-interleaved combination of the above.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cpu.core import TraceRecord
from repro.errors import ConfigError

__all__ = [
    "streaming_trace",
    "random_trace",
    "strided_trace",
    "hotset_trace",
    "multistream_trace",
    "mixed_trace",
]

LINE = 64
_CHUNK = 1024


def _bubbles(rng: np.random.Generator, mean: float, count: int) -> np.ndarray:
    """Per-access non-memory instruction counts (>= 0, mean ``mean``)."""
    if mean <= 0:
        return np.zeros(count, dtype=np.int64)
    return rng.poisson(mean, size=count).astype(np.int64)


def _check(footprint_bytes: int, bubbles_mean: float, write_fraction: float):
    if footprint_bytes < LINE:
        raise ConfigError("footprint must hold at least one line")
    if bubbles_mean < 0:
        raise ConfigError("bubbles_mean must be non-negative")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigError("write_fraction must be a probability")


def streaming_trace(
    footprint_bytes: int,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.0,
    base_vaddr: int = 0x1000_0000,
    seed: int = 1,
) -> Iterator[TraceRecord]:
    """Sequential line-by-line sweep over the footprint, repeated forever."""
    _check(footprint_bytes, bubbles_mean, write_fraction)
    rng = np.random.default_rng(seed)
    lines = footprint_bytes // LINE
    position = 0
    pc = 0x400000
    while True:
        # Chunk decode: one .tolist() per array instead of a numpy-scalar
        # conversion per record; addresses are vectorized (RNG untouched).
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        vaddrs = (
            base_vaddr
            + (np.arange(position, position + _CHUNK) % lines) * LINE
        ).tolist()
        position += _CHUNK
        yield from map(TraceRecord, bubbles, vaddrs, writes, (pc,) * _CHUNK)


def random_trace(
    footprint_bytes: int,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.25,
    base_vaddr: int = 0x2000_0000,
    seed: int = 2,
) -> Iterator[TraceRecord]:
    """Uniform random line accesses over the footprint."""
    _check(footprint_bytes, bubbles_mean, write_fraction)
    rng = np.random.default_rng(seed)
    lines = footprint_bytes // LINE
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        targets = rng.integers(0, lines, size=_CHUNK)
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        pcs = rng.integers(0, 64, size=_CHUNK)
        vaddrs = (base_vaddr + targets * LINE).tolist()
        pc_list = (0x500000 + pcs * 4).tolist()
        yield from map(TraceRecord, bubbles, vaddrs, writes, pc_list)


def strided_trace(
    footprint_bytes: int,
    stride_bytes: int = 256,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.1,
    base_vaddr: int = 0x3000_0000,
    seed: int = 3,
) -> Iterator[TraceRecord]:
    """Constant-stride sweep (regular, detectable by the RPT prefetcher)."""
    _check(footprint_bytes, bubbles_mean, write_fraction)
    if stride_bytes < LINE or stride_bytes % LINE:
        raise ConfigError("stride must be a multiple of the line size")
    rng = np.random.default_rng(seed)
    position = 0
    pc = 0x600000
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        vaddrs = (
            base_vaddr
            + (np.arange(position, position + _CHUNK) * stride_bytes)
            % footprint_bytes
        ).tolist()
        position += _CHUNK
        yield from map(TraceRecord, bubbles, vaddrs, writes, (pc,) * _CHUNK)


def hotset_trace(
    footprint_bytes: int,
    hot_bytes: int = 256 * 1024,
    hot_fraction: float = 0.9,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.2,
    base_vaddr: int = 0x4000_0000,
    seed: int = 4,
) -> Iterator[TraceRecord]:
    """Accesses concentrate on a hot set; the remainder roam the footprint.

    The hot set is visited with spatial runs (several consecutive lines per
    touch), producing the high row reuse CROW-cache caches.
    """
    _check(footprint_bytes, bubbles_mean, write_fraction)
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigError("hot_fraction must be a probability")
    if hot_bytes < LINE or hot_bytes > footprint_bytes:
        raise ConfigError("hot_bytes must be within the footprint")
    rng = np.random.default_rng(seed)
    hot_lines = hot_bytes // LINE
    all_lines = footprint_bytes // LINE
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        hot = (rng.random(_CHUNK) < hot_fraction).tolist()
        targets = rng.integers(0, 1 << 62, size=_CHUNK).tolist()
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        run = rng.integers(2, 8, size=_CHUNK).tolist()
        i = 0
        while i < _CHUNK:
            if hot[i]:
                start = targets[i] % hot_lines
                for offset in range(run[i]):
                    line = (start + offset) % hot_lines
                    yield TraceRecord(
                        bubbles[i],
                        base_vaddr + line * LINE,
                        writes[i],
                        0x700000,
                    )
            else:
                line = targets[i] % all_lines
                yield TraceRecord(
                    bubbles[i],
                    base_vaddr + line * LINE,
                    writes[i],
                    0x700100,
                )
            i += 1


def multistream_trace(
    footprint_bytes: int,
    streams: int = 8,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.2,
    restart_period: int = 0,
    base_vaddr: int = 0x5000_0000,
    seed: int = 5,
) -> Iterator[TraceRecord]:
    """Several sequential streams interleaved at random.

    This is the access structure that gives real applications their high
    *in-DRAM* locality (the property CROW-cache exploits): each stream
    sweeps lines sequentially, but because many streams are in flight the
    bank-level access pattern keeps closing and re-opening each stream's
    current row — every re-open is a potential CROW-table hit. Video
    codecs (reference frames), graph frontiers and database scans all look
    like this. ``restart_period`` > 0 rewinds a random stream to its start
    every that-many accesses, adding longer-range row reuse.
    """
    _check(footprint_bytes, bubbles_mean, write_fraction)
    if streams < 1:
        raise ConfigError("streams must be >= 1")
    rng = np.random.default_rng(seed)
    region_lines = footprint_bytes // LINE // streams
    if region_lines < 1:
        raise ConfigError("footprint too small for the stream count")
    positions = np.zeros(streams, dtype=np.int64)
    count = 0
    index = np.arange(_CHUNK)
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK).tolist()
        picks = rng.integers(0, streams, size=_CHUNK)
        writes = (rng.random(_CHUNK) < write_fraction).tolist()
        if restart_period:
            # Rewinds interleave RNG draws with record emission, so this
            # path stays scalar to preserve the exact draw order.
            picks_list = picks.tolist()
            for i in range(_CHUNK):
                stream = picks_list[i]
                line = int(positions[stream]) % region_lines
                positions[stream] += 1
                count += 1
                if count % restart_period == 0:
                    positions[int(rng.integers(0, streams))] = 0
                vaddr = base_vaddr + (stream * region_lines + line) * LINE
                yield TraceRecord(
                    bubbles[i], vaddr, writes[i], 0x800000 + stream * 4
                )
            continue
        # Vectorized path: record i of stream s reads line
        # positions[s] + (occurrences of s earlier in the chunk), i.e. a
        # per-stream cumulative count — computed with a stable argsort.
        order = np.argsort(picks, kind="stable")
        sorted_picks = picks[order]
        boundary = np.empty(_CHUNK, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_picks[1:], sorted_picks[:-1], out=boundary[1:])
        ranks = index - np.maximum.accumulate(np.where(boundary, index, 0))
        cumcount = np.empty(_CHUNK, dtype=np.int64)
        cumcount[order] = ranks
        lines = (positions[picks] + cumcount) % region_lines
        positions += np.bincount(picks, minlength=streams)
        vaddrs = (
            base_vaddr + (picks * region_lines + lines) * LINE
        ).tolist()
        pcs = (0x800000 + picks * 4).tolist()
        yield from map(TraceRecord, bubbles, vaddrs, writes, pcs)


def mixed_trace(
    phases: list[tuple[Iterator[TraceRecord], int]],
) -> Iterator[TraceRecord]:
    """Interleave generators in round-robin phases of the given lengths."""
    if not phases:
        raise ConfigError("mixed_trace needs at least one phase")
    while True:
        for generator, length in phases:
            for _ in range(length):
                yield next(generator)
