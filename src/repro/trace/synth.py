"""Parametric access-pattern generators.

Each generator returns an infinite :class:`~repro.trace.chunks.ChunkTrace`
of :class:`~repro.cpu.core.TraceRecord` tuples. All randomness flows
through a ``numpy.random.Generator`` seeded by the caller, so every trace
is reproducible. Internally the patterns are *chunk producers*: they draw
and synthesize whole column arrays per chunk, which the batch simulation
engine consumes directly (:meth:`ChunkTrace.take_arrays`) while record
consumers decode lazily. The RNG draw sequence per chunk is part of each
pattern's contract — it must not depend on how the trace is consumed.

Pattern vocabulary (matched to the paper's workload discussion):

* ``streaming_trace`` — sequential lines; very high row-buffer locality,
  prefetcher-friendly (paper's *streaming* microbenchmark / STREAM suite).
* ``random_trace`` — uniform random lines over a footprint; minimal
  row-buffer locality (paper's *random* microbenchmark, mcf/milc-like).
* ``strided_trace`` — fixed non-unit stride; regular but row-unfriendly.
* ``hotset_trace`` — most accesses revisit a small hot set of rows; high
  in-DRAM locality, the behaviour CROW-cache exploits (h264-like).
* ``mixed_trace`` — phase-interleaved combination of the above.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cpu.core import TraceRecord
from repro.errors import ConfigError
from repro.trace.chunks import Chunk, ChunkTrace, records_to_chunk

__all__ = [
    "streaming_trace",
    "random_trace",
    "strided_trace",
    "hotset_trace",
    "multistream_trace",
    "mixed_trace",
]

LINE = 64
_CHUNK = 1024


def _bubbles(rng: np.random.Generator, mean: float, count: int) -> np.ndarray:
    """Per-access non-memory instruction counts (>= 0, mean ``mean``)."""
    if mean <= 0:
        return np.zeros(count, dtype=np.int64)
    return rng.poisson(mean, size=count).astype(np.int64)


def _check(footprint_bytes: int, bubbles_mean: float, write_fraction: float):
    if footprint_bytes < LINE:
        raise ConfigError("footprint must hold at least one line")
    if bubbles_mean < 0:
        raise ConfigError("bubbles_mean must be non-negative")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigError("write_fraction must be a probability")


def streaming_trace(
    footprint_bytes: int,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.0,
    base_vaddr: int = 0x1000_0000,
    seed: int = 1,
) -> Iterator[TraceRecord]:
    """Sequential line-by-line sweep over the footprint, repeated forever."""
    _check(footprint_bytes, bubbles_mean, write_fraction)
    return ChunkTrace(
        _streaming_chunks(
            footprint_bytes, bubbles_mean, write_fraction, base_vaddr, seed
        )
    )


def _streaming_chunks(
    footprint_bytes, bubbles_mean, write_fraction, base_vaddr, seed
) -> Iterator[Chunk]:
    rng = np.random.default_rng(seed)
    lines = footprint_bytes // LINE
    position = 0
    pcs = np.full(_CHUNK, 0x400000, dtype=np.int64)
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK)
        writes = rng.random(_CHUNK) < write_fraction
        vaddrs = (
            base_vaddr
            + (np.arange(position, position + _CHUNK) % lines) * LINE
        )
        position += _CHUNK
        yield bubbles, vaddrs, writes, pcs


def random_trace(
    footprint_bytes: int,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.25,
    base_vaddr: int = 0x2000_0000,
    seed: int = 2,
) -> Iterator[TraceRecord]:
    """Uniform random line accesses over the footprint."""
    _check(footprint_bytes, bubbles_mean, write_fraction)
    return ChunkTrace(
        _random_chunks(
            footprint_bytes, bubbles_mean, write_fraction, base_vaddr, seed
        )
    )


def _random_chunks(
    footprint_bytes, bubbles_mean, write_fraction, base_vaddr, seed
) -> Iterator[Chunk]:
    rng = np.random.default_rng(seed)
    lines = footprint_bytes // LINE
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK)
        targets = rng.integers(0, lines, size=_CHUNK)
        writes = rng.random(_CHUNK) < write_fraction
        pcs = rng.integers(0, 64, size=_CHUNK)
        yield (
            bubbles,
            base_vaddr + targets * LINE,
            writes,
            0x500000 + pcs * 4,
        )


def strided_trace(
    footprint_bytes: int,
    stride_bytes: int = 256,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.1,
    base_vaddr: int = 0x3000_0000,
    seed: int = 3,
) -> Iterator[TraceRecord]:
    """Constant-stride sweep (regular, detectable by the RPT prefetcher)."""
    _check(footprint_bytes, bubbles_mean, write_fraction)
    if stride_bytes < LINE or stride_bytes % LINE:
        raise ConfigError("stride must be a multiple of the line size")
    return ChunkTrace(
        _strided_chunks(
            footprint_bytes, stride_bytes, bubbles_mean, write_fraction,
            base_vaddr, seed,
        )
    )


def _strided_chunks(
    footprint_bytes, stride_bytes, bubbles_mean, write_fraction, base_vaddr,
    seed,
) -> Iterator[Chunk]:
    rng = np.random.default_rng(seed)
    position = 0
    pcs = np.full(_CHUNK, 0x600000, dtype=np.int64)
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK)
        writes = rng.random(_CHUNK) < write_fraction
        vaddrs = (
            base_vaddr
            + (np.arange(position, position + _CHUNK) * stride_bytes)
            % footprint_bytes
        )
        position += _CHUNK
        yield bubbles, vaddrs, writes, pcs


def hotset_trace(
    footprint_bytes: int,
    hot_bytes: int = 256 * 1024,
    hot_fraction: float = 0.9,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.2,
    base_vaddr: int = 0x4000_0000,
    seed: int = 4,
) -> Iterator[TraceRecord]:
    """Accesses concentrate on a hot set; the remainder roam the footprint.

    The hot set is visited with spatial runs (several consecutive lines per
    touch), producing the high row reuse CROW-cache caches.
    """
    _check(footprint_bytes, bubbles_mean, write_fraction)
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigError("hot_fraction must be a probability")
    if hot_bytes < LINE or hot_bytes > footprint_bytes:
        raise ConfigError("hot_bytes must be within the footprint")
    return ChunkTrace(
        _hotset_chunks(
            footprint_bytes, hot_bytes, hot_fraction, bubbles_mean,
            write_fraction, base_vaddr, seed,
        )
    )


def _hotset_chunks(
    footprint_bytes, hot_bytes, hot_fraction, bubbles_mean, write_fraction,
    base_vaddr, seed,
) -> Iterator[Chunk]:
    rng = np.random.default_rng(seed)
    hot_lines = hot_bytes // LINE
    all_lines = footprint_bytes // LINE
    base = np.arange(_CHUNK)
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK)
        hot = rng.random(_CHUNK) < hot_fraction
        targets = rng.integers(0, 1 << 62, size=_CHUNK)
        writes = rng.random(_CHUNK) < write_fraction
        run = rng.integers(2, 8, size=_CHUNK)
        # One chunk draw expands to a variable-length record chunk: hot
        # picks emit a spatial run of `run` consecutive hot lines, cold
        # picks emit a single line anywhere in the footprint.
        lengths = np.where(hot, run, 1)
        rep = np.repeat(base, lengths)
        offsets = np.arange(len(rep)) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        hot_rep = hot[rep]
        lines = np.where(
            hot_rep,
            (targets % hot_lines)[rep] + offsets,
            (targets % all_lines)[rep],
        ) % np.where(hot_rep, hot_lines, all_lines)
        yield (
            bubbles[rep],
            base_vaddr + lines * LINE,
            writes[rep],
            np.where(hot_rep, 0x700000, 0x700100),
        )


def multistream_trace(
    footprint_bytes: int,
    streams: int = 8,
    bubbles_mean: float = 24.0,
    write_fraction: float = 0.2,
    restart_period: int = 0,
    base_vaddr: int = 0x5000_0000,
    seed: int = 5,
) -> Iterator[TraceRecord]:
    """Several sequential streams interleaved at random.

    This is the access structure that gives real applications their high
    *in-DRAM* locality (the property CROW-cache exploits): each stream
    sweeps lines sequentially, but because many streams are in flight the
    bank-level access pattern keeps closing and re-opening each stream's
    current row — every re-open is a potential CROW-table hit. Video
    codecs (reference frames), graph frontiers and database scans all look
    like this. ``restart_period`` > 0 rewinds a random stream to its start
    every that-many accesses, adding longer-range row reuse.
    """
    _check(footprint_bytes, bubbles_mean, write_fraction)
    if streams < 1:
        raise ConfigError("streams must be >= 1")
    region_lines = footprint_bytes // LINE // streams
    if region_lines < 1:
        raise ConfigError("footprint too small for the stream count")
    return ChunkTrace(
        _multistream_chunks(
            streams, bubbles_mean, write_fraction, restart_period,
            base_vaddr, seed, region_lines,
        )
    )


def _multistream_chunks(
    streams, bubbles_mean, write_fraction, restart_period, base_vaddr, seed,
    region_lines,
) -> Iterator[Chunk]:
    rng = np.random.default_rng(seed)
    positions = np.zeros(streams, dtype=np.int64)
    count = 0
    index = np.arange(_CHUNK)
    while True:
        bubbles = _bubbles(rng, bubbles_mean, _CHUNK)
        picks = rng.integers(0, streams, size=_CHUNK)
        writes = rng.random(_CHUNK) < write_fraction
        if restart_period:
            # Rewinds interleave RNG draws with record synthesis, so this
            # path stays scalar to preserve the exact draw order; the
            # per-chunk columns are packed from the scalar results.
            picks_list = picks.tolist()
            vaddr_list = []
            pc_list = []
            for i in range(_CHUNK):
                stream = picks_list[i]
                line = int(positions[stream]) % region_lines
                positions[stream] += 1
                count += 1
                if count % restart_period == 0:
                    positions[int(rng.integers(0, streams))] = 0
                vaddr_list.append(
                    base_vaddr + (stream * region_lines + line) * LINE
                )
                pc_list.append(0x800000 + stream * 4)
            yield (
                bubbles,
                np.asarray(vaddr_list, dtype=np.int64),
                writes,
                np.asarray(pc_list, dtype=np.int64),
            )
            continue
        # Vectorized path: record i of stream s reads line
        # positions[s] + (occurrences of s earlier in the chunk), i.e. a
        # per-stream cumulative count — computed with a stable argsort.
        order = np.argsort(picks, kind="stable")
        sorted_picks = picks[order]
        boundary = np.empty(_CHUNK, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_picks[1:], sorted_picks[:-1], out=boundary[1:])
        ranks = index - np.maximum.accumulate(np.where(boundary, index, 0))
        cumcount = np.empty(_CHUNK, dtype=np.int64)
        cumcount[order] = ranks
        lines = (positions[picks] + cumcount) % region_lines
        positions += np.bincount(picks, minlength=streams)
        yield (
            bubbles,
            base_vaddr + (picks * region_lines + lines) * LINE,
            writes,
            0x800000 + picks * 4,
        )


def mixed_trace(
    phases: "list[tuple[Iterator[TraceRecord], int]]",
) -> Iterator[TraceRecord]:
    """Interleave generators in round-robin phases of the given lengths."""
    if not phases:
        raise ConfigError("mixed_trace needs at least one phase")
    return ChunkTrace(_mixed_chunks(list(phases)))


def _mixed_chunks(phases) -> Iterator[Chunk]:
    # Phase segments accumulate until a full chunk is ready, keeping the
    # per-chunk overhead bounded even for single-record phase lengths.
    parts: list[Chunk] = []
    size = 0
    while True:
        for source, length in phases:
            if isinstance(source, ChunkTrace):
                segment = source.take_columns(length)
            else:
                # Arbitrary record iterators still compose; they pay a
                # per-record pack here, exactly like the old scalar path.
                records = []
                for _ in range(length):
                    record = next(source, None)
                    if record is None:
                        break
                    records.append(record)
                segment = records_to_chunk(records)
            got = len(segment[1])
            if got:
                parts.append(segment)
                size += got
            if got < length:
                # A (finite) child ran dry: flush what exists and stop.
                if parts:
                    yield _concat(parts)
                return
            if size >= _CHUNK:
                yield _concat(parts)
                parts = []
                size = 0


def _concat(parts: "list[Chunk]") -> Chunk:
    if len(parts) == 1:
        return parts[0]
    return tuple(
        np.concatenate([part[i] for part in parts]) for i in range(4)
    )
