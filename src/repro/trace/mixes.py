"""Multiprogrammed workload mixes for the four-core experiments.

The paper builds eight groups of four-core mixes, each group defined by
the memory-intensity classes of its members (e.g. ``LLHH`` = two
low-intensity plus two high-intensity applications, chosen at random), with
20 mixes per group — 160 four-core workloads in total (Section 7).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.trace.workloads import Workload, workloads_by_class

__all__ = ["MIX_GROUPS", "build_mix", "build_mix_group"]

#: The eight class signatures used in Figure 9, lowest to highest pressure.
MIX_GROUPS = (
    "LLLL",
    "LLLH",
    "LLHH",
    "LMMH",
    "MMMM",
    "MMHH",
    "LHHH",
    "HHHH",
)


def build_mix(signature: str, seed: int = 0) -> list[Workload]:
    """One four-core mix: a random member of each class in ``signature``."""
    if len(signature) != 4 or any(c not in "LMH" for c in signature):
        raise ConfigError(f"invalid mix signature {signature!r}")
    rng = np.random.default_rng((seed, 0xA11))
    mix = []
    for cls in signature:
        pool = workloads_by_class(cls)
        mix.append(pool[int(rng.integers(len(pool)))])
    return mix


def build_mix_group(
    signature: str, mixes: int = 20, seed: int = 0
) -> list[list[Workload]]:
    """A full group of ``mixes`` four-core mixes with one signature."""
    if mixes < 1:
        raise ConfigError("mixes must be >= 1")
    return [build_mix(signature, seed=seed * 1000 + i) for i in range(mixes)]
