"""Resumable trace streams with provenance.

:class:`TraceStream` wraps a workload's trace iterator with the three
facts a snapshot needs to rebuild it — the workload name, the seed, and
how many records have been consumed. Restoring replays the (cheap,
deterministic) synthetic generator and fast-forwards past the consumed
prefix at C speed, so the snapshot itself never stores trace records.

``System`` still accepts plain iterators; only snapshotting requires the
provenance this wrapper carries (``save_snapshot`` raises a structured
error otherwise). ``run_workload``/``run_mix`` and the check scenarios
construct :class:`TraceStream` objects so every supported entry point is
snapshot-ready by default.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterator

from repro.cpu.core import TraceRecord
from repro.errors import ConfigError

__all__ = ["TraceStream"]


class TraceStream:
    """A workload trace iterator that knows how to rebuild itself.

    Iteration protocol matches the raw generator (``next()`` yields
    :class:`~repro.cpu.core.TraceRecord`); :meth:`take` exists so bulk
    consumers (``System.prewarm``) keep their C-level ``islice`` speed
    while the consumed count stays exact.
    """

    __slots__ = ("workload_name", "seed", "consumed", "_it")

    def __init__(
        self,
        workload_name: str,
        seed: int,
        _iterator: Iterator[TraceRecord] | None = None,
    ) -> None:
        self.workload_name = workload_name
        self.seed = seed
        self.consumed = 0
        if _iterator is None:
            from repro.trace.workloads import workload

            _iterator = workload(workload_name).trace(seed)
        self._it = _iterator

    def __iter__(self) -> "TraceStream":
        return self

    def __next__(self) -> TraceRecord:
        record = next(self._it)
        self.consumed += 1
        return record

    def take(self, n: int) -> list[TraceRecord]:
        """Up to ``n`` records as a list (bulk-path for prewarm)."""
        take = getattr(self._it, "take", None)
        if take is not None:
            batch = take(n)
        else:
            batch = list(islice(self._it, n))
        self.consumed += len(batch)
        return batch

    @property
    def supports_arrays(self) -> bool:
        """True when the wrapped trace exposes array-chunk views."""
        return hasattr(self._it, "take_arrays")

    def take_arrays(self, n):
        """The (vaddrs, writes) columns of the next ``n`` records.

        Returns ``None`` when the wrapped iterator has no array view
        (callers fall back to the record path). The consumed count stays
        exact either way.
        """
        take_arrays = getattr(self._it, "take_arrays", None)
        if take_arrays is None:
            return None
        vaddrs, writes = take_arrays(n)
        self.consumed += len(vaddrs)
        return vaddrs, writes

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "workload": self.workload_name,
            "seed": self.seed,
            "consumed": self.consumed,
        }

    def load_state_dict(self, state: dict) -> None:
        """Rebuild the generator and fast-forward past the consumed prefix."""
        if state["workload"] != self.workload_name or state["seed"] != self.seed:
            raise ConfigError(
                f"trace stream mismatch: snapshot holds "
                f"{state['workload']!r} seed {state['seed']}, stream is "
                f"{self.workload_name!r} seed {self.seed}"
            )
        from repro.trace.workloads import workload

        self._it = workload(self.workload_name).trace(self.seed)
        consumed = state["consumed"]
        if consumed:
            skip = getattr(self._it, "skip", None)
            if skip is not None:
                # Chunk-level fast-forward: no record decode at all.
                skip(consumed)
            else:
                # Exhaust-into-a-zero-length deque: C-speed fast-forward.
                deque(islice(self._it, consumed), maxlen=0)
        self.consumed = consumed

    @classmethod
    def from_state_dict(cls, state: dict) -> "TraceStream":
        stream = cls(state["workload"], state["seed"])
        stream.load_state_dict(state)
        return stream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceStream({self.workload_name!r}, seed={self.seed}, "
            f"consumed={self.consumed})"
        )
