"""Synthetic workload traces.

The paper drives Ramulator with Pin-collected traces of SPEC CPU2006, TPC,
STREAM and MediaBench applications. Those binaries and traces are not
available here, so this package provides *parametric generators* that
reproduce the memory behaviours the CROW results depend on — memory
intensity (MPKI class), row-buffer locality, working-set size, read/write
mix and stride regularity — plus a named workload suite
(:mod:`repro.trace.workloads`) whose members mimic the applications named
in Figure 8, and multiprogrammed mix construction for the four-core
experiments (:mod:`repro.trace.mixes`).
"""

from repro.trace.synth import (
    hotset_trace,
    mixed_trace,
    random_trace,
    streaming_trace,
    strided_trace,
)
from repro.trace.workloads import (
    Workload,
    WORKLOADS,
    workload,
    workloads_by_class,
)
from repro.trace.mixes import MIX_GROUPS, build_mix, build_mix_group
from repro.trace.stream import TraceStream

__all__ = [
    "TraceStream",
    "streaming_trace",
    "random_trace",
    "strided_trace",
    "hotset_trace",
    "mixed_trace",
    "Workload",
    "WORKLOADS",
    "workload",
    "workloads_by_class",
    "MIX_GROUPS",
    "build_mix",
    "build_mix_group",
]
