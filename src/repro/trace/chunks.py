"""Array-chunk trace production.

The synthetic generators in :mod:`repro.trace.synth` draw their
randomness in whole-chunk numpy arrays. :class:`ChunkTrace` keeps those
arrays visible to bulk consumers instead of flattening them into Python
records eagerly:

* record iteration (``next()`` / :meth:`take`) materializes records
  lazily, one chunk at a time, exactly as the old per-record generators
  did;
* :meth:`take_arrays` hands the (vaddr, is_write) columns of the next
  ``n`` records to vectorized consumers — the batch engine's functional
  prewarm — without ever constructing :class:`TraceRecord` objects;
* :meth:`skip` fast-forwards past a consumed prefix (snapshot restore)
  at chunk granularity, skipping both record construction and the
  per-chunk ``tolist`` decode.

All three views consume the *same* underlying chunk stream, so the RNG
draw sequence — and therefore the trace content — is identical no matter
how a trace is consumed. That equivalence is what lets the batch and
event simulation engines produce byte-identical telemetry digests.

A chunk is a ``(bubbles, vaddrs, writes, pcs)`` tuple of equal-length
1-D arrays (``int64``, ``int64``, ``bool``, ``int64``). Chunks may have
any positive length and the stream may be finite.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.cpu.core import TraceRecord

__all__ = ["ChunkTrace", "Chunk", "records_to_chunk"]

#: One decoded trace chunk: (bubbles, vaddrs, writes, pcs) column arrays.
Chunk = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def records_to_chunk(records: "list[TraceRecord]") -> Chunk:
    """Pack scalar records into one chunk (fallback for plain iterators)."""
    return (
        np.asarray([r[0] for r in records], dtype=np.int64),
        np.asarray([r[1] for r in records], dtype=np.int64),
        np.asarray([r[2] for r in records], dtype=bool),
        np.asarray([r[3] for r in records], dtype=np.int64),
    )


class ChunkTrace:
    """Iterator of :class:`TraceRecord` over an array-chunk producer.

    ``chunks`` is an iterator of :data:`Chunk` tuples. Decoded Python
    lists are cached per chunk, and only built when a record-level view
    actually needs them — the array views never pay for the decode.
    """

    __slots__ = ("_chunks", "_arrays", "_lists", "_pos")

    def __init__(self, chunks: Iterator[Chunk]) -> None:
        self._chunks = chunks
        self._arrays: Chunk | None = None
        self._lists: tuple | None = None
        self._pos = 0

    # ------------------------------------------------------------------
    # Record-level view
    # ------------------------------------------------------------------
    def __iter__(self) -> "ChunkTrace":
        return self

    def _advance(self) -> bool:
        """Pull the next chunk; False when the producer is exhausted."""
        try:
            self._arrays = next(self._chunks)
        except StopIteration:
            self._arrays = None
            self._lists = None
            self._pos = 0
            return False
        self._lists = None
        self._pos = 0
        return True

    def __next__(self) -> TraceRecord:
        arrays = self._arrays
        if arrays is None or self._pos >= len(arrays[1]):
            if not self._advance():
                raise StopIteration
            arrays = self._arrays
        lists = self._lists
        if lists is None:
            # One tolist per column per chunk: numpy scalars become plain
            # Python ints/bools here, so records never leak numpy types
            # into simulator state (snapshots must stay byte-stable).
            lists = self._lists = tuple(column.tolist() for column in arrays)
        pos = self._pos
        self._pos = pos + 1
        return TraceRecord(
            lists[0][pos], lists[1][pos], lists[2][pos], lists[3][pos]
        )

    def take(self, n: int) -> "list[TraceRecord]":
        """Up to ``n`` records as a list (bulk record-level path)."""
        out: list[TraceRecord] = []
        while n > 0:
            arrays = self._arrays
            if arrays is None or self._pos >= len(arrays[1]):
                if not self._advance():
                    break
                arrays = self._arrays
            lists = self._lists
            if lists is None:
                lists = self._lists = tuple(c.tolist() for c in arrays)
            pos = self._pos
            stop = min(pos + n, len(lists[1]))
            out.extend(
                map(
                    TraceRecord,
                    lists[0][pos:stop],
                    lists[1][pos:stop],
                    lists[2][pos:stop],
                    lists[3][pos:stop],
                )
            )
            n -= stop - pos
            self._pos = stop
        return out

    # ------------------------------------------------------------------
    # Array-level views
    # ------------------------------------------------------------------
    def take_arrays(self, n: int) -> "tuple[np.ndarray, np.ndarray]":
        """The (vaddrs, writes) columns of the next ``n`` records.

        Returns shorter arrays only when the chunk stream runs dry.
        Consumes exactly the records it returns — interleaving with the
        record-level view is well-defined.
        """
        vaddr_parts: list[np.ndarray] = []
        write_parts: list[np.ndarray] = []
        got = 0
        while got < n:
            arrays = self._arrays
            if arrays is None or self._pos >= len(arrays[1]):
                if not self._advance():
                    break
                arrays = self._arrays
            pos = self._pos
            stop = min(pos + (n - got), len(arrays[1]))
            vaddr_parts.append(arrays[1][pos:stop])
            write_parts.append(arrays[2][pos:stop])
            got += stop - pos
            self._pos = stop
        if not vaddr_parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
            )
        if len(vaddr_parts) == 1:
            return vaddr_parts[0], write_parts[0]
        return np.concatenate(vaddr_parts), np.concatenate(write_parts)

    def take_columns(self, n: int) -> Chunk:
        """All four columns of the next ``n`` records (mixed-trace glue)."""
        parts: list[Chunk] = []
        got = 0
        while got < n:
            arrays = self._arrays
            if arrays is None or self._pos >= len(arrays[1]):
                if not self._advance():
                    break
                arrays = self._arrays
            pos = self._pos
            stop = min(pos + (n - got), len(arrays[1]))
            parts.append(tuple(column[pos:stop] for column in arrays))
            got += stop - pos
            self._pos = stop
        if not parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
                np.empty(0, dtype=np.int64),
            )
        if len(parts) == 1:
            return parts[0]
        return tuple(
            np.concatenate([part[i] for part in parts]) for i in range(4)
        )

    def skip(self, n: int) -> int:
        """Drop the next ``n`` records without decoding them.

        Returns the number actually skipped (< ``n`` only for finite
        streams). The producer's RNG advances exactly as if the records
        had been read.
        """
        skipped = 0
        while skipped < n:
            arrays = self._arrays
            if arrays is None or self._pos >= len(arrays[1]):
                if not self._advance():
                    break
                arrays = self._arrays
            pos = self._pos
            stop = min(pos + (n - skipped), len(arrays[1]))
            skipped += stop - pos
            self._pos = stop
        return skipped
