"""Trace file input/output in the Ramulator CPU-trace format.

The paper's simulator (Ramulator [55]) consumes text traces with one
memory access per line::

    <num-cpu-instructions> <read-address> [<writeback-address>]

where ``num-cpu-instructions`` is the bubble count preceding the access.
This module reads and writes that format, so users can

* run *real* Ramulator traces (e.g. collected with a Pintool) through this
  simulator, and
* export this package's synthetic workloads for a cross-check against the
  original C++ infrastructure.

The in-memory record type (:class:`~repro.cpu.core.TraceRecord`) carries a
write flag and a PC that the Ramulator format lacks. The mapping between
records and lines is exactly inverse on ``(bubbles, vaddr, is_write)``
triples (only the PC is lost — reloaded records carry the line number as
a synthetic PC):

* a read record becomes a two-column line ``<bubbles> <addr>``;
* a zero-bubble write *immediately following* a read (the common
  load-modify-store shape) with a **different** address rides as that
  read line's third (writeback) column;
* every other write becomes a standalone line whose writeback column
  *repeats* the address: ``<bubbles> <addr> <addr>``.

On import the cases are distinguished unambiguously: two columns is a
read, a third column equal to the address is a standalone write, and a
third column differing from the address is a read followed by a
zero-bubble write. Malformed lines raise
:class:`~repro.errors.TraceFormatError` carrying the file path and the
1-based line number as structured attributes.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Iterable, Iterator

from repro.cpu.core import TraceRecord
from repro.errors import ConfigError, TraceFormatError

__all__ = ["write_ramulator_trace", "read_ramulator_trace", "take"]


def take(trace: Iterator[TraceRecord], count: int) -> list[TraceRecord]:
    """Materialize the first ``count`` records of a trace."""
    if count < 0:
        raise ConfigError("count must be non-negative")
    return list(itertools.islice(trace, count))


def _read_line(record: TraceRecord) -> str:
    return f"{record.bubbles} 0x{record.vaddr:x}\n"


def write_ramulator_trace(
    path: "str | Path",
    trace: Iterable[TraceRecord],
    max_records: int | None = None,
) -> int:
    """Write records to ``path`` in Ramulator CPU-trace format.

    See the module docstring for the line mapping; it is chosen so that
    :func:`read_ramulator_trace` recovers the exact ``(bubbles, vaddr,
    is_write)`` sequence written. Returns the number of lines written.
    """
    path = Path(path)
    lines = 0
    pending: TraceRecord | None = None
    with path.open("w") as handle:
        iterator: Iterator[TraceRecord] = iter(trace)
        if max_records is not None:
            iterator = itertools.islice(iterator, max_records)
        for record in iterator:
            if record.is_write:
                # A write can ride as the pending read's writeback column
                # only when the merge is losslessly reversible: no bubble
                # count to preserve, and an address distinct from the
                # read's (an equal address would read back as the
                # standalone-write form).
                if (
                    pending is not None
                    and record.bubbles == 0
                    and record.vaddr != pending.vaddr
                ):
                    handle.write(
                        f"{pending.bubbles} 0x{pending.vaddr:x} "
                        f"0x{record.vaddr:x}\n"
                    )
                    pending = None
                else:
                    if pending is not None:
                        handle.write(_read_line(pending))
                        lines += 1
                        pending = None
                    handle.write(
                        f"{record.bubbles} 0x{record.vaddr:x} "
                        f"0x{record.vaddr:x}\n"
                    )
                lines += 1
                continue
            if pending is not None:
                handle.write(_read_line(pending))
                lines += 1
            pending = record
        if pending is not None:
            handle.write(_read_line(pending))
            lines += 1
    return lines


def read_ramulator_trace(
    path: "str | Path", loop: bool = False
) -> Iterator[TraceRecord]:
    """Yield records from a Ramulator CPU-trace file.

    Inverse of :func:`write_ramulator_trace` (module docstring has the
    exact mapping): two columns yield a read; a writeback column equal to
    the address yields a standalone write; a differing writeback column
    yields the read plus a zero-bubble write. With ``loop`` the trace
    repeats forever (the simulator's runner expects effectively-infinite
    traces for fixed-instruction-count runs). Malformed lines raise
    :class:`~repro.errors.TraceFormatError` with ``path`` and ``line``
    attributes.
    """
    path = Path(path)
    if not path.is_file():
        raise ConfigError(f"trace file not found: {path}")

    def parse_lines() -> Iterator[TraceRecord]:
        with path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                parts = text.split()
                if len(parts) not in (2, 3):
                    raise TraceFormatError(
                        path, line_number,
                        f"expected 2 or 3 columns, got {len(parts)}",
                    )
                try:
                    bubbles = int(parts[0])
                    address = int(parts[1], 0)
                    writeback = int(parts[2], 0) if len(parts) == 3 else None
                except ValueError as error:
                    raise TraceFormatError(
                        path, line_number, str(error)
                    ) from None
                if bubbles < 0 or address < 0:
                    raise TraceFormatError(
                        path, line_number, "negative field"
                    )
                if writeback is not None and writeback < 0:
                    raise TraceFormatError(
                        path, line_number, "negative writeback address"
                    )
                if writeback == address:
                    # Standalone write (the writer repeats the address).
                    yield TraceRecord(bubbles, address, True, pc=line_number)
                    continue
                yield TraceRecord(bubbles, address, False, pc=line_number)
                if writeback is not None:
                    yield TraceRecord(0, writeback, True, pc=line_number)

    if not loop:
        yield from parse_lines()
        return
    while True:
        yield from parse_lines()
