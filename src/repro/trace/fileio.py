"""Trace file input/output in the Ramulator CPU-trace format.

The paper's simulator (Ramulator [55]) consumes text traces with one
memory access per line::

    <num-cpu-instructions> <read-address> [<writeback-address>]

where ``num-cpu-instructions`` is the bubble count preceding the access.
This module reads and writes that format, so users can

* run *real* Ramulator traces (e.g. collected with a Pintool) through this
  simulator, and
* export this package's synthetic workloads for a cross-check against the
  original C++ infrastructure.

The in-memory record type (:class:`~repro.cpu.core.TraceRecord`) carries a
write flag and a PC that the Ramulator format lacks; on export, writeback
addresses are emitted for write records, and on import, a line's optional
writeback address is materialized as a separate write record (the closest
faithful mapping).
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Iterable, Iterator

from repro.cpu.core import TraceRecord
from repro.errors import ConfigError

__all__ = ["write_ramulator_trace", "read_ramulator_trace", "take"]


def take(trace: Iterator[TraceRecord], count: int) -> list[TraceRecord]:
    """Materialize the first ``count`` records of a trace."""
    if count < 0:
        raise ConfigError("count must be non-negative")
    return list(itertools.islice(trace, count))


def write_ramulator_trace(
    path: "str | Path",
    trace: Iterable[TraceRecord],
    max_records: int | None = None,
) -> int:
    """Write records to ``path`` in Ramulator CPU-trace format.

    Write records become the optional third (writeback) column attached to
    the preceding read line, or standalone ``0 <addr> <addr>`` lines when
    no read precedes them. Returns the number of lines written.
    """
    path = Path(path)
    lines = 0
    pending: TraceRecord | None = None
    with path.open("w") as handle:
        iterator: Iterator[TraceRecord] = iter(trace)
        if max_records is not None:
            iterator = itertools.islice(iterator, max_records)
        for record in iterator:
            if record.is_write:
                if pending is not None:
                    handle.write(
                        f"{pending.bubbles} 0x{pending.vaddr:x} "
                        f"0x{record.vaddr:x}\n"
                    )
                    pending = None
                else:
                    handle.write(
                        f"{record.bubbles} 0x{record.vaddr:x} "
                        f"0x{record.vaddr:x}\n"
                    )
                lines += 1
                continue
            if pending is not None:
                handle.write(f"{pending.bubbles} 0x{pending.vaddr:x}\n")
                lines += 1
            pending = record
        if pending is not None:
            handle.write(f"{pending.bubbles} 0x{pending.vaddr:x}\n")
            lines += 1
    return lines


def read_ramulator_trace(
    path: "str | Path", loop: bool = False
) -> Iterator[TraceRecord]:
    """Yield records from a Ramulator CPU-trace file.

    Each line produces a read record; a third column additionally produces
    a write record for the writeback address. With ``loop`` the trace
    repeats forever (the simulator's runner expects effectively-infinite
    traces for fixed-instruction-count runs).
    """
    path = Path(path)
    if not path.is_file():
        raise ConfigError(f"trace file not found: {path}")

    def parse_lines() -> Iterator[TraceRecord]:
        with path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                parts = text.split()
                if len(parts) not in (2, 3):
                    raise ConfigError(
                        f"{path}:{line_number}: expected 2 or 3 columns, "
                        f"got {len(parts)}"
                    )
                try:
                    bubbles = int(parts[0])
                    address = int(parts[1], 0)
                    writeback = int(parts[2], 0) if len(parts) == 3 else None
                except ValueError as error:
                    raise ConfigError(
                        f"{path}:{line_number}: {error}"
                    ) from None
                if bubbles < 0 or address < 0:
                    raise ConfigError(
                        f"{path}:{line_number}: negative field"
                    )
                yield TraceRecord(bubbles, address, False, pc=line_number)
                if writeback is not None:
                    yield TraceRecord(0, writeback, True, pc=line_number)

    if not loop:
        yield from parse_lines()
        return
    while True:
        yield from parse_lines()
