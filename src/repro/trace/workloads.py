"""Named single-core workloads mimicking the paper's benchmark suite.

The paper evaluates 44 applications from SPEC CPU2006, TPC, STREAM and
MediaBench plus two microbenchmarks (*random*, *streaming*). Each entry
here is a synthetic stand-in for one of the applications named in
Figure 8, parameterised to land in the same memory-intensity class
(L: MPKI < 1, M: 1 <= MPKI < 10, H: MPKI >= 10 — Section 7) and to show
the qualitative access structure the paper attributes to it (e.g.
*libquantum* streams with very high row-buffer locality; *mcf* chases
pointers over a huge footprint; *h264-dec* re-touches a medium hot set,
which is what makes CROW-cache shine on it).

MPKI class membership is *measured*, not asserted: the Figure 8 benchmark
prints each workload's simulated MPKI next to its speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.cpu.core import TraceRecord
from repro.errors import ConfigError
from repro.trace.synth import (
    hotset_trace,
    mixed_trace,
    multistream_trace,
    random_trace,
    streaming_trace,
    strided_trace,
)
from repro.units import GIB, KIB, MIB

__all__ = ["Workload", "WORKLOADS", "workload", "workloads_by_class"]


@dataclass(frozen=True)
class Workload:
    """One named synthetic workload."""

    name: str
    expected_class: str      # 'L', 'M' or 'H' (verified by measurement)
    suite: str               # which paper suite it stands in for
    description: str
    factory: Callable[[int], Iterator[TraceRecord]]

    def trace(self, seed: int = 0) -> Iterator[TraceRecord]:
        """A fresh trace iterator (deterministic in ``seed``)."""
        return self.factory(seed)


def _w(name, cls, suite, description, factory) -> Workload:
    return Workload(name, cls, suite, description, factory)


def _seed(name: str, seed: int) -> int:
    # zlib.crc32 is stable across processes (unlike the salted hash()).
    import zlib

    return (zlib.crc32(name.encode()) & 0xFFFF) * 31 + seed


WORKLOADS: dict[str, Workload] = {}


def _register(workload: Workload) -> None:
    WORKLOADS[workload.name] = workload


# ----------------------------------------------------------------------
# High memory intensity (MPKI >= 10)
# ----------------------------------------------------------------------
_register(_w(
    "mcf", "H", "SPEC CPU2006",
    "pointer chasing over a huge working set; low row locality",
    lambda seed: random_trace(768 * MIB, bubbles_mean=12.0,
                              write_fraction=0.2, seed=_seed("mcf", seed)),
))
_register(_w(
    "lbm", "H", "SPEC CPU2006",
    "fluid-dynamics stencil: parallel grid sweeps with heavy writes",
    lambda seed: multistream_trace(400 * MIB, streams=4, bubbles_mean=18.0,
                                   write_fraction=0.5, seed=_seed("lbm", seed)),
))
_register(_w(
    "milc", "H", "SPEC CPU2006",
    "lattice QCD: many structured lattice sweeps in flight",
    lambda seed: multistream_trace(512 * MIB, streams=24, bubbles_mean=22.0,
                                   write_fraction=0.15, seed=_seed("milc", seed)),
))
_register(_w(
    "libq", "H", "SPEC CPU2006",
    "libquantum: streaming with very high row-buffer locality",
    lambda seed: streaming_trace(32 * MIB, bubbles_mean=20.0,
                                 write_fraction=0.0, seed=_seed("libq", seed)),
))
_register(_w(
    "gems", "H", "SPEC CPU2006",
    "GemsFDTD: large strided sweeps",
    lambda seed: strided_trace(256 * MIB, stride_bytes=512, bubbles_mean=22.0,
                               write_fraction=0.1, seed=_seed("gems", seed)),
))
_register(_w(
    "soplex", "H", "SPEC CPU2006",
    "LP solver: many interleaved column scans over the constraint matrix",
    lambda seed: multistream_trace(192 * MIB, streams=12, bubbles_mean=25.0,
                                   write_fraction=0.2,
                                   seed=_seed("soplex", seed)),
))
_register(_w(
    "leslie3d", "H", "SPEC CPU2006",
    "multigrid stencil with medium strides and writebacks",
    lambda seed: strided_trace(192 * MIB, stride_bytes=128, bubbles_mean=25.0,
                               write_fraction=0.3, seed=_seed("leslie3d", seed)),
))
_register(_w(
    "sphinx3", "H", "SPEC CPU2006",
    "speech recognition: interleaved sweeps over the acoustic model",
    lambda seed: multistream_trace(48 * MIB, streams=16, bubbles_mean=25.0,
                                   write_fraction=0.1,
                                   seed=_seed("sphinx3", seed)),
))
_register(_w(
    "stream-triad", "H", "STREAM",
    "STREAM triad: three concurrent sequential streams",
    lambda seed: mixed_trace([
        (streaming_trace(96 * MIB, bubbles_mean=16.0, write_fraction=0.0,
                         base_vaddr=0x10_0000_0000,
                         seed=_seed("triad-a", seed)), 2),
        (streaming_trace(96 * MIB, bubbles_mean=16.0, write_fraction=0.0,
                         base_vaddr=0x20_0000_0000,
                         seed=_seed("triad-b", seed)), 1),
        (streaming_trace(96 * MIB, bubbles_mean=16.0, write_fraction=1.0,
                         base_vaddr=0x30_0000_0000,
                         seed=_seed("triad-c", seed)), 1),
    ]),
))
_register(_w(
    "random", "H", "microbenchmark",
    "the paper's synthetic GUPS-like random-access microbenchmark",
    lambda seed: random_trace(1 * GIB, bubbles_mean=6.0, write_fraction=0.5,
                              seed=_seed("random", seed)),
))
_register(_w(
    "streaming", "H", "microbenchmark",
    "the paper's synthetic streaming microbenchmark",
    lambda seed: streaming_trace(1 * GIB, bubbles_mean=6.0,
                                 write_fraction=0.0,
                                 seed=_seed("streaming", seed)),
))

# ----------------------------------------------------------------------
# Medium memory intensity (1 <= MPKI < 10)
# ----------------------------------------------------------------------
_register(_w(
    "omnetpp", "M", "SPEC CPU2006",
    "discrete event simulation: many event queues advanced in parallel",
    lambda seed: multistream_trace(64 * MIB, streams=24, bubbles_mean=150.0,
                                   write_fraction=0.3,
                                   seed=_seed("omnetpp", seed)),
))
_register(_w(
    "astar", "M", "SPEC CPU2006",
    "path finding: frontier expansion re-touches recent map tiles",
    lambda seed: multistream_trace(32 * MIB, streams=12, bubbles_mean=170.0,
                                   write_fraction=0.2,
                                   seed=_seed("astar", seed)),
))
_register(_w(
    "gcc", "M", "SPEC CPU2006",
    "compiler: mixed pointer structures and sequential scans",
    lambda seed: mixed_trace([
        (multistream_trace(24 * MIB, streams=8, bubbles_mean=180.0,
                           write_fraction=0.3, seed=_seed("gcc-a", seed)), 512),
        (streaming_trace(8 * MIB, bubbles_mean=180.0, write_fraction=0.1,
                         seed=_seed("gcc-b", seed)), 256),
    ]),
))
_register(_w(
    "h264-dec", "M", "MediaBench",
    "video decode: reference frames re-touched; high in-DRAM locality",
    lambda seed: multistream_trace(24 * MIB, streams=16, bubbles_mean=120.0,
                                   write_fraction=0.25,
                                   seed=_seed("h264-dec", seed)),
))
_register(_w(
    "jp2-encode", "M", "MediaBench",
    "JPEG2000 encode: streaming tiles with heavy writes",
    lambda seed: streaming_trace(20 * MIB, bubbles_mean=130.0,
                                 write_fraction=0.4,
                                 seed=_seed("jp2-encode", seed)),
))
_register(_w(
    "jp2-decode", "M", "MediaBench",
    "JPEG2000 decode: streaming tiles, writes dominate",
    lambda seed: streaming_trace(24 * MIB, bubbles_mean=140.0,
                                 write_fraction=0.5,
                                 seed=_seed("jp2-decode", seed)),
))
_register(_w(
    "tpcc64", "M", "TPC",
    "OLTP: random record accesses with moderate intensity",
    lambda seed: random_trace(128 * MIB, bubbles_mean=150.0,
                              write_fraction=0.35, seed=_seed("tpcc64", seed)),
))
_register(_w(
    "tpch2", "M", "TPC",
    "decision support Q2: parallel table scans plus index probes",
    lambda seed: mixed_trace([
        (multistream_trace(96 * MIB, streams=6, bubbles_mean=140.0,
                           write_fraction=0.05,
                           seed=_seed("tpch2-a", seed)), 768),
        (random_trace(32 * MIB, bubbles_mean=140.0, write_fraction=0.1,
                      seed=_seed("tpch2-b", seed)), 256),
    ]),
))
_register(_w(
    "tpch6", "M", "TPC",
    "decision support Q6: pure scan at moderate rate",
    lambda seed: streaming_trace(128 * MIB, bubbles_mean=160.0,
                                 write_fraction=0.05,
                                 seed=_seed("tpch6", seed)),
))
_register(_w(
    "cactus", "M", "SPEC CPU2006",
    "cactusADM: strided grid updates",
    lambda seed: strided_trace(96 * MIB, stride_bytes=320, bubbles_mean=150.0,
                               write_fraction=0.3, seed=_seed("cactus", seed)),
))

# ----------------------------------------------------------------------
# Low memory intensity (MPKI < 1)
# ----------------------------------------------------------------------
_register(_w(
    "bzip2", "L", "SPEC CPU2006",
    "compression over buffers that mostly fit in the LLC",
    lambda seed: hotset_trace(6 * MIB, hot_bytes=2 * MIB, hot_fraction=0.95,
                              bubbles_mean=40.0, write_fraction=0.3,
                              seed=_seed("bzip2", seed)),
))
_register(_w(
    "gobmk", "L", "SPEC CPU2006",
    "game tree search in a small resident set",
    lambda seed: hotset_trace(3 * MIB, hot_bytes=1 * MIB, hot_fraction=0.97,
                              bubbles_mean=60.0, write_fraction=0.2,
                              seed=_seed("gobmk", seed)),
))
_register(_w(
    "hmmer", "L", "SPEC CPU2006",
    "profile HMM search: tiny streaming buffers",
    lambda seed: streaming_trace(2 * MIB, bubbles_mean=50.0,
                                 write_fraction=0.2, seed=_seed("hmmer", seed)),
))
_register(_w(
    "namd", "L", "SPEC CPU2006",
    "molecular dynamics: cache-resident particle lists",
    lambda seed: hotset_trace(4 * MIB, hot_bytes=2 * MIB, hot_fraction=0.96,
                              bubbles_mean=80.0, write_fraction=0.25,
                              seed=_seed("namd", seed)),
))
_register(_w(
    "povray", "L", "SPEC CPU2006",
    "ray tracing: compute bound, tiny memory traffic",
    lambda seed: hotset_trace(1 * MIB, hot_bytes=512 * KIB, hot_fraction=0.98,
                              bubbles_mean=100.0, write_fraction=0.1,
                              seed=_seed("povray", seed)),
))
_register(_w(
    "calculix", "L", "SPEC CPU2006",
    "FEM solver: small strided kernels",
    lambda seed: strided_trace(2 * MIB, stride_bytes=128, bubbles_mean=90.0,
                               write_fraction=0.2, seed=_seed("calculix", seed)),
))
_register(_w(
    "h264-enc", "L", "MediaBench",
    "video encode: motion search in a cache-resident window",
    lambda seed: hotset_trace(5 * MIB, hot_bytes=2 * MIB, hot_fraction=0.96,
                              bubbles_mean=70.0, write_fraction=0.3,
                              seed=_seed("h264-enc", seed)),
))


# ----------------------------------------------------------------------
# Additional suite members (rounding out the paper's 44 applications)
# ----------------------------------------------------------------------
_register(_w(
    "bwaves", "H", "SPEC CPU2006",
    "blast-wave solver: long strided sweeps over a huge grid",
    lambda seed: strided_trace(320 * MIB, stride_bytes=256, bubbles_mean=20.0,
                               write_fraction=0.25, seed=_seed("bwaves", seed)),
))
_register(_w(
    "zeusmp", "H", "SPEC CPU2006",
    "magnetohydrodynamics: several grid sweeps in flight",
    lambda seed: multistream_trace(128 * MIB, streams=8, bubbles_mean=24.0,
                                   write_fraction=0.3,
                                   seed=_seed("zeusmp", seed)),
))
_register(_w(
    "stream-copy", "H", "STREAM",
    "STREAM copy: one read stream feeding one write stream",
    lambda seed: multistream_trace(128 * MIB, streams=2, bubbles_mean=14.0,
                                   write_fraction=0.5,
                                   seed=_seed("stream-copy", seed)),
))
_register(_w(
    "stream-add", "H", "STREAM",
    "STREAM add: two read streams and one write stream",
    lambda seed: multistream_trace(144 * MIB, streams=3, bubbles_mean=15.0,
                                   write_fraction=0.33,
                                   seed=_seed("stream-add", seed)),
))
_register(_w(
    "wrf", "M", "SPEC CPU2006",
    "weather model: alternating stencil and physics phases",
    lambda seed: mixed_trace([
        (multistream_trace(64 * MIB, streams=6, bubbles_mean=120.0,
                           write_fraction=0.3, seed=_seed("wrf-a", seed)), 512),
        (strided_trace(32 * MIB, stride_bytes=192, bubbles_mean=120.0,
                       write_fraction=0.2, seed=_seed("wrf-b", seed)), 256),
    ]),
))
_register(_w(
    "xalancbmk", "M", "SPEC CPU2006",
    "XML transformation: many DOM regions walked in parallel",
    lambda seed: multistream_trace(48 * MIB, streams=20, bubbles_mean=140.0,
                                   write_fraction=0.25,
                                   seed=_seed("xalancbmk", seed)),
))
_register(_w(
    "mpeg2-enc", "M", "MediaBench",
    "MPEG-2 encode: streaming macroblocks with heavy writes",
    lambda seed: streaming_trace(16 * MIB, bubbles_mean=150.0,
                                 write_fraction=0.45,
                                 seed=_seed("mpeg2-enc", seed)),
))
_register(_w(
    "tpch17", "M", "TPC",
    "decision support Q17: scan joined with correlated subquery probes",
    lambda seed: mixed_trace([
        (multistream_trace(64 * MIB, streams=4, bubbles_mean=150.0,
                           write_fraction=0.05,
                           seed=_seed("tpch17-a", seed)), 512),
        (random_trace(48 * MIB, bubbles_mean=150.0, write_fraction=0.1,
                      seed=_seed("tpch17-b", seed)), 256),
    ]),
))
_register(_w(
    "sjeng", "L", "SPEC CPU2006",
    "chess search: transposition table mostly cache-resident",
    lambda seed: hotset_trace(2 * MIB, hot_bytes=1 * MIB, hot_fraction=0.97,
                              bubbles_mean=70.0, write_fraction=0.3,
                              seed=_seed("sjeng", seed)),
))
_register(_w(
    "perlbench", "L", "SPEC CPU2006",
    "interpreter: small heap with strong temporal reuse",
    lambda seed: hotset_trace(4 * MIB, hot_bytes=2 * MIB, hot_fraction=0.96,
                              bubbles_mean=65.0, write_fraction=0.35,
                              seed=_seed("perlbench", seed)),
))
_register(_w(
    "gromacs", "L", "SPEC CPU2006",
    "molecular dynamics: small strided neighbour lists",
    lambda seed: strided_trace(3 * MIB, stride_bytes=128, bubbles_mean=85.0,
                               write_fraction=0.2, seed=_seed("gromacs", seed)),
))
_register(_w(
    "dealII", "L", "SPEC CPU2006",
    "finite elements: cache-resident sparse structures",
    lambda seed: hotset_trace(5 * MIB, hot_bytes=2 * MIB, hot_fraction=0.95,
                              bubbles_mean=75.0, write_fraction=0.25,
                              seed=_seed("dealII", seed)),
))
_register(_w(
    "tonto", "L", "SPEC CPU2006",
    "quantum chemistry: tiny working set, compute bound",
    lambda seed: hotset_trace(1536 * KIB, hot_bytes=512 * KIB,
                              hot_fraction=0.97, bubbles_mean=90.0,
                              write_fraction=0.2, seed=_seed("tonto", seed)),
))
_register(_w(
    "gamess", "L", "SPEC CPU2006",
    "quantum chemistry: integrals in cache-resident buffers",
    lambda seed: hotset_trace(1 * MIB, hot_bytes=512 * KIB, hot_fraction=0.98,
                              bubbles_mean=110.0, write_fraction=0.15,
                              seed=_seed("gamess", seed)),
))
_register(_w(
    "mpeg2-dec", "L", "MediaBench",
    "MPEG-2 decode: small frames stream through the LLC",
    lambda seed: streaming_trace(3 * MIB, bubbles_mean=80.0,
                                 write_fraction=0.4,
                                 seed=_seed("mpeg2-dec", seed)),
))
_register(_w(
    "jpeg-dec", "L", "MediaBench",
    "JPEG decode: tiny tiles, compute dominated",
    lambda seed: streaming_trace(1 * MIB, bubbles_mean=120.0,
                                 write_fraction=0.3,
                                 seed=_seed("jpeg-dec", seed)),
))


def workload(name: str) -> Workload:
    """Look up a workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def workloads_by_class(cls: str) -> list[Workload]:
    """All workloads whose *expected* class is ``cls`` ('L', 'M' or 'H')."""
    if cls not in ("L", "M", "H"):
        raise ConfigError("class must be 'L', 'M' or 'H'")
    return [w for w in WORKLOADS.values() if w.expected_class == cls]
