"""Reference-prediction-table (RPT) stride prefetcher [31].

Used for the Figure 12 experiment (CROW-cache composed with prefetching).
Each table entry tracks the last address and stride observed for one
program counter; after the stride is confirmed twice the entry enters the
steady state and prefetches ``degree`` lines ahead.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError

__all__ = ["RptPrefetcher"]

_INIT, _TRANSIENT, _STEADY = 0, 1, 2


class RptPrefetcher:
    """Stride prefetcher keyed by program counter."""

    def __init__(
        self,
        entries: int = 64,
        degree: int = 2,
        line_bytes: int = 64,
    ) -> None:
        if entries < 1 or degree < 1:
            raise ConfigError("entries and degree must be >= 1")
        self.entries = entries
        self.degree = degree
        self.line_bytes = line_bytes
        # pc -> [last_addr, stride, state]; ordered for LRU replacement.
        self._table: OrderedDict[int, list] = OrderedDict()
        self.issued = 0
        self.useful = 0

    def observe(self, pc: int, address: int) -> list[int]:
        """Record a demand access; return line addresses to prefetch."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.entries:
                self._table.popitem(last=False)
            self._table[pc] = [address, 0, _INIT]
            return []
        self._table.move_to_end(pc)
        last_addr, stride, state = entry
        new_stride = address - last_addr
        if state == _INIT:
            entry[:] = [address, new_stride, _TRANSIENT]
            return []
        if new_stride == stride and stride != 0:
            entry[:] = [address, stride, _STEADY]
            prefetches = [
                (address + stride * (i + 1)) & ~(self.line_bytes - 1)
                for i in range(self.degree)
            ]
            unique = []
            for target in prefetches:
                if target >= 0 and target not in unique:
                    unique.append(target)
            self.issued += len(unique)
            return unique
        entry[:] = [address, new_stride, _TRANSIENT]
        return []

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Table contents (order = LRU stack) plus counters."""
        return {
            "table": [(pc, list(entry)) for pc, entry in self._table.items()],
            "issued": self.issued,
            "useful": self.useful,
        }

    def load_state_dict(self, state: dict) -> None:
        self._table = OrderedDict(
            (pc, list(entry)) for pc, entry in state["table"]
        )
        self.issued = state["issued"]
        self.useful = state["useful"]

    def accuracy(self) -> float:
        """Useful prefetches over issued prefetches."""
        return self.useful / self.issued if self.issued else 0.0

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.issued = 0
        self.useful = 0
