"""Trace-driven core model.

Table 2 configuration: 4 GHz, 4-wide issue, 128-entry instruction window,
8 MSHRs per core. The simulator ticks at the DRAM bus clock (1600 MHz), so
each tick gives the core ``4 * 4000/1600 = 10`` issue/retire slots.

The window is modelled Ramulator-style: non-memory instructions ("bubbles")
flow through at the issue width; loads occupy a window slot until their
data returns; stores retire immediately (write-allocate fills happen in
the background but do consume MSHRs). The core stalls when the window is
full, when MSHRs run out, or when the memory controller queue rejects a
request. Long all-bubble stretches are fast-forwarded arithmetically,
which is exact because no memory activity is in flight.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterator, NamedTuple

from repro.errors import ConfigError

__all__ = ["TraceRecord", "CoreConfig", "Core", "IDLE"]

IDLE = 1 << 62


class TraceRecord(NamedTuple):
    """One trace event: ``bubbles`` non-memory instructions followed by a
    memory access (the access itself counts as one instruction)."""

    bubbles: int
    vaddr: int
    is_write: bool
    pc: int


class CoreConfig:
    """Core microarchitecture parameters (Table 2 defaults)."""

    def __init__(
        self,
        issue_width: int = 4,
        window_size: int = 128,
        mshrs: int = 8,
        cpu_clock_mhz: float = 4000.0,
        mem_clock_mhz: float = 1600.0,
    ) -> None:
        if issue_width < 1 or window_size < 1 or mshrs < 1:
            raise ConfigError("core parameters must be >= 1")
        if cpu_clock_mhz < mem_clock_mhz:
            raise ConfigError("CPU clock must be >= memory clock")
        self.issue_width = issue_width
        self.window_size = window_size
        self.mshrs = mshrs
        self.cpu_clock_mhz = cpu_clock_mhz
        self.mem_clock_mhz = mem_clock_mhz

    @property
    def clock_ratio(self) -> float:
        """CPU clock cycles per memory clock cycle."""
        return self.cpu_clock_mhz / self.mem_clock_mhz

    @property
    def slots_per_tick(self) -> int:
        """Issue/retire slots per memory-clock tick."""
        return max(1, round(self.issue_width * self.clock_ratio))


class _MemOp:
    """One in-flight memory instruction and its completion callback.

    The op itself is the ``on_complete`` callable handed to the memory
    port — call it with the finish cycle and it retires/wakes its core.
    Being a plain object with value state (rather than a closure) is what
    lets :mod:`repro.snapshot` serialize in-flight accesses.
    """

    __slots__ = ("core", "is_store", "counts_mshr", "done")

    def __init__(self, core: "Core", is_store: bool = False) -> None:
        self.core = core
        self.is_store = is_store
        self.counts_mshr = False
        self.done = False

    def __call__(self, finish: int) -> None:
        self.done = True
        core = self.core
        if self.counts_mshr:
            core.outstanding -= 1
        core.notify(finish)

    def state_dict(self) -> dict:
        """Serializable value state (the owning core is contextual)."""
        return {
            "is_store": self.is_store,
            "counts_mshr": self.counts_mshr,
            "done": self.done,
        }

    def load_state_dict(self, state: dict) -> None:
        self.is_store = state["is_store"]
        self.counts_mshr = state["counts_mshr"]
        self.done = state["done"]


class Core:
    """One trace-driven core; ``port`` is the system's memory port."""

    __slots__ = (
        "core_id",
        "trace",
        "port",
        "config",
        "_slots",
        "_window",
        "_occupancy",
        "_bubbles_left",
        "_pending",
        "_trace_done",
        "outstanding",
        "retired",
        "next_wake",
        "mshr_stalls",
        "measure_start_cycle",
        "measure_start_retired",
        "target_instructions",
        "finish_cycle",
    )

    def __init__(
        self,
        core_id: int,
        trace: Iterator[TraceRecord],
        port,
        config: CoreConfig | None = None,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.port = port
        self.config = config if config is not None else CoreConfig()
        self._slots = self.config.slots_per_tick

        self._window: deque = deque()    # _MemOp | [bubble_count] entries
        self._occupancy = 0
        self._bubbles_left = 0
        self._pending: TraceRecord | None = None
        self._trace_done = False
        self.outstanding = 0

        self.retired = 0
        self.next_wake = 0
        #: Issue attempts rejected because every MSHR was in flight
        #: (telemetry: memory-level-parallelism pressure).
        self.mshr_stalls = 0
        # Measurement bookkeeping (warm-up support).
        self.measure_start_cycle: int | None = None
        self.measure_start_retired = 0
        self.target_instructions: int | None = None
        self.finish_cycle: int | None = None

    # ------------------------------------------------------------------
    # Measurement control
    # ------------------------------------------------------------------
    def begin_measurement(self, now: int, target_instructions: int) -> None:
        """End warm-up: measure IPC over the next ``target_instructions``."""
        self.measure_start_cycle = now
        self.measure_start_retired = self.retired
        self.target_instructions = target_instructions
        self.finish_cycle = None
        self.mshr_stalls = 0

    @property
    def measured_instructions(self) -> int:
        """Instructions retired since measurement began."""
        return self.retired - self.measure_start_retired

    @property
    def done(self) -> bool:
        """Whether this core finished its measured quota (or its trace)."""
        if self.target_instructions is not None:
            return self.finish_cycle is not None
        return self._trace_done and not self._window and self.outstanding == 0

    def ipc(self, now: int | None = None) -> float:
        """Instructions per *CPU* cycle over the measurement region."""
        if self.measure_start_cycle is None:
            return 0.0
        end = self.finish_cycle if self.finish_cycle is not None else now
        if end is None or end <= self.measure_start_cycle:
            return 0.0
        cpu_cycles = (end - self.measure_start_cycle) * self.config.clock_ratio
        return self.measured_instructions / cpu_cycles

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def notify(self, now: int) -> None:
        """Wake the core (a memory completion callback fired)."""
        self.next_wake = min(self.next_wake, now)

    def tick(self, now: int) -> int:
        """Advance one memory cycle; returns the next useful wake time."""
        slots = self._slots
        progress = 0

        # Fast-forward: window empty, nothing in flight, long bubble run.
        if (
            not self._window
            and self.outstanding == 0
            and self._bubbles_left > slots * 4
        ):
            jump = self._bubbles_left - slots
            self._bubbles_left = slots
            self.retired += jump
            self._check_finish(now)
            return now + max(1, math.ceil(jump / slots))

        # Retire from the window head.
        budget = slots
        window = self._window
        while budget and window:
            head = window[0]
            if isinstance(head, _MemOp):
                if not head.done:
                    break
                window.popleft()
                self._occupancy -= 1
                budget -= 1
                self.retired += 1
            else:
                take = min(budget, head[0])
                head[0] -= take
                budget -= take
                self._occupancy -= take
                self.retired += take
                if head[0] == 0:
                    window.popleft()
        progress += slots - budget

        # Issue into the window.
        budget = slots
        stalled_on_port = False
        while budget and not self._trace_done:
            space = self.config.window_size - self._occupancy
            if space <= 0:
                break
            if self._bubbles_left:
                take = min(budget, self._bubbles_left, space)
                if window and not isinstance(window[-1], _MemOp):
                    window[-1][0] += take
                else:
                    window.append([take])
                self._occupancy += take
                self._bubbles_left -= take
                budget -= take
                progress += take
                continue
            if self._pending is not None:
                outcome = self._issue_access(self._pending, now)
                if outcome == "stall":
                    stalled_on_port = True
                    break
                self._pending = None
                budget -= 1
                progress += 1
                continue
            record = next(self.trace, None)
            if record is None:
                self._trace_done = True
                break
            self._bubbles_left = record.bubbles
            self._pending = record

        self._check_finish(now)
        if progress:
            return now + 1
        if stalled_on_port:
            return now + 8
        if self.outstanding:
            return IDLE        # a completion callback will notify()
        if self._trace_done and not self._window:
            return IDLE
        return now + 1

    def _issue_access(self, record: TraceRecord, now: int) -> str:
        """Issue one memory instruction through the port.

        Port contract: ``access`` returns 'hit', 'miss' or 'stall'; unless
        it stalls, it invokes ``on_complete(finish_cycle)`` exactly once,
        asynchronously (hits after the LLC latency, misses at fill time).
        Only misses occupy an MSHR.
        """
        if self.outstanding >= self.config.mshrs:
            self.mshr_stalls += 1
            return "stall"
        if record.is_write:
            op = _MemOp(self, is_store=True)
            outcome = self.port.access(
                self.core_id, record.vaddr, True, record.pc, now, op
            )
            if outcome == "stall":
                return "stall"
            if outcome == "miss":
                op.counts_mshr = True
                self.outstanding += 1
            self.retired += 1   # stores retire without blocking the window
            return outcome

        op = _MemOp(self)
        outcome = self.port.access(
            self.core_id, record.vaddr, False, record.pc, now, op
        )
        if outcome == "stall":
            return "stall"
        if outcome == "miss":
            op.counts_mshr = True
            self.outstanding += 1
        self._window.append(op)
        self._occupancy += 1
        return outcome

    def _check_finish(self, now: int) -> None:
        if (
            self.target_instructions is not None
            and self.finish_cycle is None
            and self.measure_start_cycle is not None
            and self.measured_instructions >= self.target_instructions
        ):
            self.finish_cycle = now

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def window_op(self, index: int) -> _MemOp:
        """The in-flight load at window position ``index`` (snapshot ref
        target: the event heap stores ``("win", core, index)`` for loads
        that live both in the window and on the heap/waiter lists)."""
        entry = self._window[index]
        if not isinstance(entry, _MemOp):
            raise TypeError(f"window[{index}] is a bubble run, not a _MemOp")
        return entry

    def state_dict(self) -> dict:
        """Window contents, trace position, and retire/measure state.

        Requires the trace to be a :class:`repro.trace.TraceStream` (the
        snapshot layer checks and raises a structured error first).
        """
        window: list = []
        for entry in self._window:
            if isinstance(entry, _MemOp):
                window.append(("op", entry.state_dict()))
            else:
                window.append(("bub", entry[0]))
        return {
            "trace": self.trace.state_dict(),
            "window": window,
            "occupancy": self._occupancy,
            "bubbles_left": self._bubbles_left,
            "pending": tuple(self._pending) if self._pending is not None else None,
            "trace_done": self._trace_done,
            "outstanding": self.outstanding,
            "retired": self.retired,
            "next_wake": self.next_wake,
            "mshr_stalls": self.mshr_stalls,
            "measure_start_cycle": self.measure_start_cycle,
            "measure_start_retired": self.measure_start_retired,
            "target_instructions": self.target_instructions,
            "finish_cycle": self.finish_cycle,
        }

    def load_state_dict(self, state: dict) -> None:
        self.trace.load_state_dict(state["trace"])
        window: deque = deque()
        for tag, payload in state["window"]:
            if tag == "op":
                op = _MemOp(self)
                op.load_state_dict(payload)
                window.append(op)
            else:
                window.append([payload])
        self._window = window
        self._occupancy = state["occupancy"]
        self._bubbles_left = state["bubbles_left"]
        pending = state["pending"]
        self._pending = TraceRecord(*pending) if pending is not None else None
        self._trace_done = state["trace_done"]
        self.outstanding = state["outstanding"]
        self.retired = state["retired"]
        self.next_wake = state["next_wake"]
        self.mshr_stalls = state["mshr_stalls"]
        self.measure_start_cycle = state["measure_start_cycle"]
        self.measure_start_retired = state["measure_start_retired"]
        self.target_instructions = state["target_instructions"]
        self.finish_cycle = state["finish_cycle"]
