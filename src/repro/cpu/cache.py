"""Shared last-level cache model.

Table 2 configuration: 8 MiB, 8-way set associative, 64 B lines, LRU,
write-back / write-allocate. The model is allocate-on-access (the line is
installed when the miss is issued; data arrives later through the core's
MSHR bookkeeping), the standard simplification for trace-driven DRAM
studies — miss *counts* and writeback traffic are exact, and those are
what drive the memory system.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.units import MIB

__all__ = ["CacheConfig", "Llc"]


class CacheConfig:
    """LLC geometry and latency."""

    def __init__(
        self,
        size_bytes: int = 8 * MIB,
        ways: int = 8,
        line_bytes: int = 64,
        hit_latency: int = 8,
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigError("cache parameters must be positive")
        if size_bytes % (ways * line_bytes):
            raise ConfigError("cache size must divide into whole sets")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.sets = size_bytes // (ways * line_bytes)
        if self.sets & (self.sets - 1):
            raise ConfigError("set count must be a power of two")


class Llc:
    """Set-associative write-back LLC shared by all cores."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config if config is not None else CacheConfig()
        # Per set: list of [tag, dirty, prefetched] with MRU at index 0.
        self._sets: list[list[list]] = [[] for _ in range(self.config.sets)]
        self._offset_bits = self.config.line_bytes.bit_length() - 1
        self._index_mask = self.config.sets - 1
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0

    def _locate(self, address: int) -> tuple[list[list], int]:
        line = address >> self._offset_bits
        return self._sets[line & self._index_mask], line >> (
            self._index_mask.bit_length()
        )

    def access(
        self, address: int, is_write: bool
    ) -> tuple[bool, int | None, bool]:
        """Access one line; returns (hit, writeback_address, was_prefetched).

        On a miss the line is allocated immediately (write-allocate); a
        dirty eviction returns the physical address to write back.
        ``was_prefetched`` reports whether a hit consumed a prefetched
        line for the first time (prefetcher usefulness accounting).
        """
        entries, tag = self._locate(address)
        for position, entry in enumerate(entries):
            if entry[0] == tag:
                if position:
                    entries.insert(0, entries.pop(position))
                if is_write:
                    entries[0][1] = True
                was_prefetched = entries[0][2]
                entries[0][2] = False
                self.hits += 1
                return True, None, was_prefetched
        self.misses += 1
        return False, self._fill(address, dirty=is_write), False

    def fill_prefetch(self, address: int) -> int | None:
        """Install a prefetched line (clean); returns any writeback."""
        entries, tag = self._locate(address)
        for entry in entries:
            if entry[0] == tag:
                return None
        self.prefetch_fills += 1
        return self._fill(address, dirty=False, prefetched=True)

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident."""
        entries, tag = self._locate(address)
        return any(entry[0] == tag for entry in entries)

    def _fill(
        self, address: int, dirty: bool, prefetched: bool = False
    ) -> int | None:
        entries, tag = self._locate(address)
        writeback = None
        if len(entries) >= self.config.ways:
            victim_tag, victim_dirty, _ = entries.pop()
            if victim_dirty:
                self.writebacks += 1
                set_index = (address >> self._offset_bits) & self._index_mask
                victim_line = (
                    victim_tag << self._index_mask.bit_length()
                ) | set_index
                writeback = victim_line << self._offset_bits
        entries.insert(0, [tag, dirty, prefetched])
        return writeback

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        """Total demand accesses (hits + misses)."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Demand misses over demand accesses."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0
