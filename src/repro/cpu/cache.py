"""Shared last-level cache model.

Table 2 configuration: 8 MiB, 8-way set associative, 64 B lines, LRU,
write-back / write-allocate. The model is allocate-on-access (the line is
installed when the miss is issued; data arrives later through the core's
MSHR bookkeeping), the standard simplification for trace-driven DRAM
studies — miss *counts* and writeback traffic are exact, and those are
what drive the memory system.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.units import MIB

__all__ = ["CacheConfig", "Llc"]


class CacheConfig:
    """LLC geometry and latency."""

    def __init__(
        self,
        size_bytes: int = 8 * MIB,
        ways: int = 8,
        line_bytes: int = 64,
        hit_latency: int = 8,
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigError("cache parameters must be positive")
        if size_bytes % (ways * line_bytes):
            raise ConfigError("cache size must divide into whole sets")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.sets = size_bytes // (ways * line_bytes)
        if self.sets & (self.sets - 1):
            raise ConfigError("set count must be a power of two")


class Llc:
    """Set-associative write-back LLC shared by all cores.

    Each set is a dict mapping tag -> [dirty, prefetched], exploiting
    insertion order for LRU: the most recently used tag sits at the end,
    the victim is the first key. Every hot operation (probe, LRU bump,
    victim pick) is a C-level dict operation instead of a Python list
    scan, with the exact same hit/miss/eviction sequence as an MRU list.
    """

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config if config is not None else CacheConfig()
        # Per set: {tag: [dirty, prefetched]}, LRU first / MRU last.
        self._sets: list[dict[int, list]] = [
            {} for _ in range(self.config.sets)
        ]
        self._offset_bits = self.config.line_bytes.bit_length() - 1
        self._index_mask = self.config.sets - 1
        self._index_bits = self._index_mask.bit_length()
        self._ways = self.config.ways
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0

    def _locate(self, address: int) -> tuple[dict[int, list], int]:
        line = address >> self._offset_bits
        return self._sets[line & self._index_mask], line >> self._index_bits

    def access(
        self, address: int, is_write: bool
    ) -> tuple[bool, int | None, bool]:
        """Access one line; returns (hit, writeback_address, was_prefetched).

        On a miss the line is allocated immediately (write-allocate); a
        dirty eviction returns the physical address to write back.
        ``was_prefetched`` reports whether a hit consumed a prefetched
        line for the first time (prefetcher usefulness accounting).
        """
        line = address >> self._offset_bits
        entries = self._sets[line & self._index_mask]
        tag = line >> self._index_bits
        entry = entries.get(tag)
        if entry is not None:
            # Bump to MRU (dict end); insertion order is the LRU stack.
            del entries[tag]
            entries[tag] = entry
            if is_write:
                entry[0] = True
            was_prefetched = entry[1]
            entry[1] = False
            self.hits += 1
            return True, None, was_prefetched
        self.misses += 1
        # Miss fill, inlined (the second set/tag decode _fill would redo
        # is the hottest redundant work in warm-up-heavy runs).
        writeback = None
        if len(entries) >= self._ways:
            victim_tag = next(iter(entries))
            if entries.pop(victim_tag)[0]:
                self.writebacks += 1
                victim_line = (victim_tag << self._index_bits) | (
                    line & self._index_mask
                )
                writeback = victim_line << self._offset_bits
        entries[tag] = [is_write, False]
        return False, writeback, False

    def warm(self, address: int, is_write: bool) -> None:
        """Functional-warming access: identical state transitions to
        :meth:`access`, minus statistics and writeback reporting (warm-up
        callers reset statistics afterwards and drop the writeback).
        """
        line = address >> self._offset_bits
        entries = self._sets[line & self._index_mask]
        tag = line >> self._index_bits
        entry = entries.get(tag)
        if entry is not None:
            del entries[tag]
            entries[tag] = entry
            if is_write:
                entry[0] = True
            entry[1] = False
            return
        if len(entries) >= self._ways:
            del entries[next(iter(entries))]
        entries[tag] = [is_write, False]

    def fill_prefetch(self, address: int) -> int | None:
        """Install a prefetched line (clean); returns any writeback."""
        entries, tag = self._locate(address)
        if tag in entries:
            return None
        self.prefetch_fills += 1
        return self._fill(address, dirty=False, prefetched=True)

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident."""
        entries, tag = self._locate(address)
        return tag in entries

    def _fill(
        self, address: int, dirty: bool, prefetched: bool = False
    ) -> int | None:
        entries, tag = self._locate(address)
        writeback = None
        if len(entries) >= self._ways:
            victim_tag = next(iter(entries))
            victim_dirty = entries.pop(victim_tag)[0]
            if victim_dirty:
                self.writebacks += 1
                set_index = (address >> self._offset_bits) & self._index_mask
                victim_line = (victim_tag << self._index_bits) | set_index
                writeback = victim_line << self._offset_bits
        entries[tag] = [dirty, prefetched]
        return writeback

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Contents + stats. Sets serialize as ordered (tag, dirty,
        prefetched) triples: dict insertion order *is* the LRU stack, so
        order must survive the round trip exactly."""
        return {
            "sets": [
                [(tag, e[0], e[1]) for tag, e in entries.items()]
                for entries in self._sets
            ],
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "prefetch_fills": self.prefetch_fills,
        }

    def load_state_dict(self, state: dict) -> None:
        self._sets = [
            {tag: [dirty, prefetched] for tag, dirty, prefetched in entries}
            for entries in state["sets"]
        ]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.writebacks = state["writebacks"]
        self.prefetch_fills = state["prefetch_fills"]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        """Total demand accesses (hits + misses)."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Demand misses over demand accesses."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        """Zero statistics at the warm-up boundary."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0
