"""Virtual-to-physical translation with random frame allocation.

The paper (Section 7) translates trace virtual addresses by randomly
allocating a 4 KiB physical frame on first touch of each virtual page,
emulating the fragmented allocation of a steady-state system [85]. Random
placement matters: it spreads each application's pages over banks and
subarrays, which determines how many CROW copy rows are contended.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError, ConfigError

__all__ = ["VirtualMemory", "PAGE_BYTES", "PAGE_SHIFT", "ASID_SHIFT"]

PAGE_BYTES = 4096
PAGE_SHIFT = 12
PAGE_MASK = PAGE_BYTES - 1
#: Address-space id field offset in the integer page-table key; virtual
#: page numbers stay below this for any realistic trace footprint.
#: Public so bulk consumers (System.prewarm) can probe the page table
#: inline instead of paying a call per record.
ASID_SHIFT = 52
_PAGE_SHIFT = PAGE_SHIFT
_PAGE_MASK = PAGE_MASK
_ASID_SHIFT = ASID_SHIFT


class VirtualMemory:
    """Per-system page table with random first-touch frame allocation."""

    def __init__(self, capacity_bytes: int, seed: int = 1) -> None:
        if capacity_bytes < PAGE_BYTES:
            raise ConfigError("capacity must hold at least one page")
        self.total_frames = capacity_bytes // PAGE_BYTES
        # Keyed by (asid << _ASID_SHIFT) | vpage: a flat int key keeps the
        # hot translate() path free of per-call tuple allocation.
        self._page_table: dict[int, int] = {}
        self._used_frames: set[int] = set()
        self._rng = np.random.default_rng(seed)

    def translate(self, asid: int, vaddr: int) -> int:
        """Translate a virtual address in address space ``asid``."""
        key = (asid << _ASID_SHIFT) | (vaddr >> _PAGE_SHIFT)
        frame = self._page_table.get(key)
        if frame is None:
            frame = self._allocate_frame()
            self._page_table[key] = frame
        return (frame << _PAGE_SHIFT) | (vaddr & _PAGE_MASK)

    def bulk_map(self, keys: "list[int]") -> "list[int]":
        """Frames for page-table keys, allocating the missing ones.

        ``keys`` are ``(asid << ASID_SHIFT) | vpage`` integers in
        *first-touch order*: missing pages allocate one frame each, in
        list order, drawing from the allocator RNG exactly as the same
        sequence of :meth:`translate` calls would. Bulk consumers (the
        batch engine's pre-warm) rely on that draw-for-draw equivalence
        to keep snapshots byte-identical across engines.

        Allocation draws are batched: one ``integers(n, size=k)`` call
        consumes the bit stream word-for-word like ``k`` scalar calls,
        so the batch holds every allocation's *first* draw; collision
        retries pop the next queued value (the value the scalar loop's
        retry would draw), and only draws beyond the batch fall back to
        scalar — total consumption matches the scalar loop exactly.
        """
        table = self._page_table
        frames = [table.get(key) for key in keys]
        missing = [i for i, frame in enumerate(frames) if frame is None]
        if not missing:
            return frames
        used = self._used_frames
        total = self.total_frames
        if (
            len(used) + len(missing) > total
            or len({keys[i] for i in missing}) != len(missing)
        ):
            # Mid-way capacity exhaustion or duplicate first-touches:
            # both need the scalar loop's interleaved allocate/lookup
            # semantics, and neither can size an exact batch up front.
            for i in missing:
                key = keys[i]
                frame = table.get(key)
                if frame is None:
                    frame = self._allocate_frame()
                    table[key] = frame
                frames[i] = frame
            return frames
        draws = iter(self._rng.integers(total, size=len(missing)).tolist())
        add = used.add
        for i in missing:
            while True:
                frame = next(draws, None)
                if frame is None:
                    # Collisions pushed consumption past the batch; the
                    # remaining draws continue scalar, in stream order.
                    frame = self._allocate_frame()
                    break
                if frame not in used:
                    add(frame)
                    break
            table[keys[i]] = frame
            frames[i] = frame
        return frames

    def _allocate_frame(self) -> int:
        if len(self._used_frames) >= self.total_frames:
            raise CapacityError("physical memory exhausted")
        while True:
            frame = int(self._rng.integers(self.total_frames))
            if frame not in self._used_frames:
                self._used_frames.add(frame)
                return frame

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Page table plus the allocator RNG position.

        ``_used_frames`` is derivable (the page table's value set), so it
        is rebuilt on load rather than stored.
        """
        return {
            "page_table": dict(self._page_table),
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        self._page_table = dict(state["page_table"])
        self._used_frames = set(self._page_table.values())
        self._rng.bit_generator.state = state["rng_state"]

    @property
    def page_table(self) -> dict[int, int]:
        """The live ``(asid << ASID_SHIFT) | vpage -> frame`` mapping.

        Read-only view for bulk translation fast paths; mappings are
        created exclusively through :meth:`translate`.
        """
        return self._page_table

    @property
    def mapped_pages(self) -> int:
        """Virtual pages translated so far."""
        return len(self._page_table)
